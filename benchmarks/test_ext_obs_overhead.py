"""EXT-G — the flight recorder must not tax the un-instrumented hot path.

The observability layer's cost contract: with no tracer installed (the
default), every ``span()`` call site in the analysis hot paths reduces to
one module-global read returning a shared no-op object.  This bench holds
that contract against the committed cold-median baseline:

* tracing is **off** in a fresh process (nobody may leave a tracer
  installed at import time),
* the timing harness over the ratchet population — running through every
  instrumented layer (parse, passes, solver visits, cache flushes) —
  stays within the ratchet tolerance of the committed
  ``BENCH_analysis.json`` cold medians, i.e. instrumenting the code paths
  did not slow them down, and
* for scale, one traced run of the same population shows the recorder
  actually captured the span taxonomy (so the zero-cost path and the
  recording path are both exercised by this one module).
"""

import json
from pathlib import Path

from conftest import banner

from repro.obs.trace import Tracer, install_tracer, tracing_enabled, uninstall_tracer
from repro.workloads import WORKLOADS, source
from repro.workloads.timing import (
    DEFAULT_RATCHET_TOLERANCE,
    check_cold_medians,
    format_ratchet,
    time_items,
)

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_analysis.json"


def population():
    """Every named workload — the stable core of the ratchet population."""
    return [(name, source(name, depth=4)) for name in WORKLOADS]


def test_ext_disabled_tracer_keeps_cold_medians():
    assert not tracing_enabled(), "a tracer leaked into the bench process"

    items = population()
    # Untimed warm-up pass: the committed baseline (and the CLI ratchet
    # job) measure in a process whose global interning tables are already
    # populated; first-touch interning must not masquerade as span cost.
    from repro.workloads.suite import ShardedSuiteRunner

    assert not ShardedSuiteRunner(items, shards=1).run().failures
    timing = time_items(items, reps=5)
    assert not timing["failures"]

    baseline = json.loads(BASELINE.read_text())
    verdict = check_cold_medians(
        timing, baseline["timing"], tolerance=DEFAULT_RATCHET_TOLERANCE
    )
    banner("EXT-G — cold medians with tracing disabled vs committed baseline")
    print(format_ratchet(verdict))
    assert verdict["workloads_compared"] == len(items)
    assert not verdict["regressed"], (
        "instrumented hot paths regressed the cold-median ratchet: "
        f"total ratio {verdict['total_ratio']}"
    )


def test_ext_traced_run_records_the_span_taxonomy():
    from repro.workloads.suite import ShardedSuiteRunner

    tracer = install_tracer(Tracer())
    try:
        report = ShardedSuiteRunner(population(), shards=1).run()
    finally:
        uninstall_tracer()
    assert not report.failures

    names = {event["name"] for event in tracer.events()}
    expected = {"sil.parse", "analysis.typecheck", "analysis.solve",
                "solve.visit", "cache.flush", "suite.run", "suite.workload"}
    banner("EXT-G' — recorded span taxonomy (traced single-process run)")
    print(f"{len(tracer)} events, {len(names)} distinct span names:")
    for name in sorted(names):
        count = sum(1 for event in tracer.events() if event["name"] == name)
        print(f"  {name:24s} {count:6d}")
    assert expected <= names
    # The trace and the report agree on scale: at least one workload span
    # per analyzed workload.
    workload_spans = [e for e in tracer.events() if e["name"] == "suite.workload"]
    assert len(workload_spans) == len(report.results)
