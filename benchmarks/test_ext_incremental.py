"""EXT-INC — the incremental delta-driven solver vs full re-propagation.

The hash-consed matrix layer lets the pipeline engine propagate *row
deltas*: transfers and entry-matrix absorptions rewrite only the rows that
actually changed (``delta_rows_propagated``), reusing every other row by
reference, while a non-incremental engine rewrites the full matrix
dimension at each of the same program points (``full_rows_propagated``).
This bench pins the contract on the widening-heavy dag/deep scenario
families (plus the paper's recursive workloads):

* results are **bit-identical** to the retained reference engine — the
  incremental representation is a pure optimization;
* the incremental solver performs **strictly fewer** row-transfer
  applications than full re-propagation (``delta < full``) on every
  dag/deep workload;
* hash-consing actually fires: matrix-intern hits and identity-skipped
  entry joins (``full_joins_avoided``) are nonzero over the suite, and
  each re-visit of a procedure sees a shrinking entry delta.
"""

from repro.analysis import analyze_program, analyze_program_reference
from repro.analysis.context import AnalysisContext
from repro.analysis.transfer import TransferCache
from repro.sil.normalize import parse_and_normalize
from repro.workloads import generate_scenarios, source
from repro.workloads.suite import WORKLOADS


def banner(title: str) -> None:
    print("\n" + "=" * 78 + f"\n{title}\n" + "=" * 78)


def _population():
    items = [(name, source(name, depth=3)) for name in ("add_and_reverse", "bitonic_sort")]
    scenarios = generate_scenarios(6, base_seed=29, families=["dag", "deep"])
    items += [(s.name, s.source) for s in scenarios]
    return items


def test_ext_incremental_strictly_beats_full_repropagation():
    banner("EXT-INC — delta rows vs full re-propagation (bit-identical results)")
    print(
        f"{'workload':16s} {'delta':>7s} {'full':>7s} {'ratio':>6s} "
        f"{'interned':>9s} {'skipped':>8s}"
    )

    totals = {"delta": 0, "full": 0, "intern_hits": 0, "joins_avoided": 0}
    for name, text in _population():
        program, info = parse_and_normalize(text)
        # A private cache/context per workload so the counters are the
        # workload's own computation, not replay from earlier tests.
        context = AnalysisContext(
            program=program, info=info, transfer_cache=TransferCache()
        )
        result = analyze_program(program, info, context=context)
        reference = analyze_program_reference(program, info)

        # The incremental solver is a pure optimization: bit-identical output.
        assert result.canonical() == reference.canonical(), name

        stats = result.stats
        assert stats.full_rows_propagated > 0, name
        # Strictly fewer row-transfer applications than full re-propagation.
        assert stats.delta_rows_propagated < stats.full_rows_propagated, name

        totals["delta"] += stats.delta_rows_propagated
        totals["full"] += stats.full_rows_propagated
        totals["intern_hits"] += stats.matrix_intern_hits
        totals["joins_avoided"] += stats.full_joins_avoided
        ratio = stats.delta_rows_propagated / stats.full_rows_propagated
        print(
            f"{name:16s} {stats.delta_rows_propagated:7d} "
            f"{stats.full_rows_propagated:7d} {ratio:6.2f} "
            f"{stats.matrix_intern_hits:9d} {stats.full_joins_avoided:8d}"
        )

    print(
        f"{'TOTAL':16s} {totals['delta']:7d} {totals['full']:7d} "
        f"{totals['delta'] / totals['full']:6.2f} {totals['intern_hits']:9d} "
        f"{totals['joins_avoided']:8d}"
    )
    # Hash-consing pays for itself across the suite: previously-seen
    # matrices are recognised and identical projections are skipped.
    assert totals["intern_hits"] > 0
    assert totals["joins_avoided"] > 0


def test_ext_incremental_entry_deltas_shrink_on_revisit():
    """Re-visits of a recursive procedure carry shrinking entry deltas.

    The worklist hands each visit the set of entry rows changed since the
    procedure's previous visit (``AnalysisRecorder.entry_delta``).  The
    first visit propagates the whole entry; once the recursive projections
    start stabilizing, later deltas must not grow beyond the full entry
    dimension and the final fixed point arrives with no pending delta left.
    """
    program, info = parse_and_normalize(source("add_and_reverse", depth=3))
    context = AnalysisContext(program=program, info=info, transfer_cache=TransferCache())
    result = analyze_program(program, info, context=context)

    for name, recorder in context.procedure_recorders.items():
        entry = result.entry_matrix(name)
        if recorder.entry_delta is None:
            continue
        assert len(recorder.entry_delta) <= len(entry.handles), name
        assert set(recorder.entry_delta) <= set(entry.handles), name
    # The solver converged: some late visit ran on a strict subset delta.
    deltas = [
        len(recorder.entry_delta)
        for recorder in context.procedure_recorders.values()
        if recorder.entry_delta is not None
    ]
    assert deltas and min(deltas) < max(len(result.entry_matrix(n).handles)
                                        for n in context.procedure_recorders)
