"""FIG6 — Figure 6: the three examples of interfering statements.

Regenerates, for the tree and path matrix of Figure 6, the read sets, write
sets and interference sets of the paper's three statement pairs and checks
them against the exact sets printed in the figure.
"""

from repro.analysis.matrix import PathMatrix
from repro.analysis.pathset import PathSet
from repro.interference import field_location, interference_set, read_set, var_location, write_set
from repro.sil import ast
from repro.sil.ast import Field
from repro.sil.printer import format_stmt


def banner(title: str) -> None:
    print("\n" + "=" * 78 + f"\n{title}\n" + "=" * 78)


def figure6_matrix() -> PathMatrix:
    matrix = PathMatrix(["a", "b", "c", "d"])
    matrix.set("a", "b", PathSet.same())
    matrix.set("b", "a", PathSet.same())
    matrix.set("a", "c", PathSet.parse("D+"))
    matrix.set("b", "c", PathSet.parse("D+"))
    matrix.set("c", "d", PathSet.parse("S?, R+?"))
    matrix.set("d", "c", PathSet.parse("S?"))
    return matrix


EXAMPLES = [
    (
        "Example 1 (variable interference)",
        ast.LoadField(target="x", source="a", field_name=Field.LEFT),
        ast.CopyHandle(target="y", source="x"),
    ),
    (
        "Example 2 (field interference through a definite alias)",
        ast.LoadField(target="x", source="a", field_name=Field.LEFT),
        ast.StoreField(target="b", field_name=Field.LEFT, source=None),
    ),
    (
        "Example 3 (conservative interference through a possible alias)",
        ast.LoadValue(target="n", source="d"),
        ast.StoreValue(target="c", expr=ast.IntLit(0)),
    ),
]


def reproduce_figure6():
    matrix = figure6_matrix()
    results = []
    for title, s1, s2 in EXAMPLES:
        results.append(
            (
                title,
                s1,
                s2,
                read_set(s1, matrix),
                write_set(s1, matrix),
                read_set(s2, matrix),
                write_set(s2, matrix),
                interference_set(s1, s2, matrix),
            )
        )
    return matrix, results


def fmt(locations):
    return "{" + ", ".join(sorted(str(l) for l in locations)) + "}"


def test_fig6_interference_examples(benchmark):
    matrix, results = benchmark(reproduce_figure6)

    banner("Figure 6 — examples of interfering statements")
    print("tree / path matrix (a,b same node; c below; d at or right-below c):")
    print(matrix.format())
    for title, s1, s2, r1, w1, r2, w2, conflict in results:
        print(f"\n{title}")
        print(f"  s1: {format_stmt(s1):20s} R={fmt(r1)}  W={fmt(w1)}")
        print(f"  s2: {format_stmt(s2):20s} R={fmt(r2)}  W={fmt(w2)}")
        print(f"  I(s1,s2,p) = {fmt(conflict)}")

    by_title = {title: conflict for title, *_, conflict in results}
    assert by_title["Example 1 (variable interference)"] == {var_location("x")}
    assert by_title["Example 2 (field interference through a definite alias)"] == {
        field_location("a", Field.LEFT),
        field_location("b", Field.LEFT),
    }
    assert by_title["Example 3 (conservative interference through a possible alias)"] == {
        field_location("c", Field.VALUE),
        field_location("d", Field.VALUE),
    }
