"""EXT-A — the adaptive-bitonic-sort claim of the conclusions (Section 6).

The paper reports that analyzing the adaptive bitonic sort of [BN86] results
in "significant parallelism detection".  This bench runs the pipeline on the
bitonic-sort workload (bitonic sort over the leaves of a perfect binary
tree): the analysis parallelizes the recursive ``bisort``/``bimerge``/
``cmpswap`` calls, the transformed program still sorts, and the exposed
parallelism grows with the input size.
"""

import pytest

from repro.parallel import build_report, parallelize_program
from repro.runtime import run_program
from repro.sil import check_program
from repro.workloads import load, perfect_tree_values


def banner(title: str) -> None:
    print("\n" + "=" * 78 + f"\n{title}\n" + "=" * 78)


def leaves_in_order(heap, root):
    values = []

    def walk(ref):
        node = heap.node(ref)
        if node.left is None:
            values.append(node.value)
        else:
            walk(node.left)
            walk(node.right)

    walk(root)
    return values


def run_bitonic(depth: int):
    program, info = load("bitonic_sort", depth=depth)
    sequential = run_program(program, info)
    result = parallelize_program(program, info)
    parallel_info = check_program(result.program)
    parallel = run_program(result.program, parallel_info)
    return result, sequential, parallel


def test_ext_bitonic_sort(benchmark):
    result, sequential, parallel = benchmark(run_bitonic, 5)

    banner("EXT-A — bitonic sort over a perfect binary tree (Section 6 claim)")
    rows = []
    for depth in (4, 5, 6, 7):
        r, seq, par = run_bitonic(depth)
        leaves = 2 ** (depth - 1)
        rows.append((leaves, seq.work, par.span, seq.work / par.span, r.stats.call_groups))
    print(f"{'leaves':>7s} {'work':>9s} {'span_par':>9s} {'parallelism':>12s} {'call groups':>12s}")
    for leaves, work, span, parallelism, groups in rows:
        print(f"{leaves:7d} {work:9d} {span:9d} {parallelism:12.2f} {groups:12d}")

    # The recursive call pairs are parallelized in every kernel procedure.
    assert result.stats.call_groups >= 4
    # The parallel version still sorts and is race-free.
    assert parallel.race_free
    sorted_leaves = leaves_in_order(parallel.heap, parallel.main_locals["root"])
    assert sorted_leaves == sorted(perfect_tree_values(5))
    # Parallelism grows with the number of leaves (who-wins shape check).
    parallelisms = [row[3] for row in rows]
    assert all(b > a for a, b in zip(parallelisms, parallelisms[1:]))
    assert parallelisms[-1] > 4.0
