"""FIG7 — Figure 7: the add_and_reverse program and its path matrices pA, pB, pC.

Runs the whole-program analysis on the paper's running example and prints
the matrices at program points A (in ``main``, before the calls to
``add_n``), B (in ``add_n``, before the recursive calls) and C (in
``reverse``).  The assertions check the facts the paper derives from them:
``lside``/``rside`` are unrelated at A, and ``l``/``r`` are unrelated at B
and C, so all three call pairs may execute in parallel; the symbolic
handles ``h*`` and ``h**`` summarize the calling context.
"""

from repro.analysis import analyze_program
from repro.workloads import load


def banner(title: str) -> None:
    print("\n" + "=" * 78 + f"\n{title}\n" + "=" * 78)


def reproduce_figure7():
    program, info = load("add_and_reverse", depth=4)
    analysis = analyze_program(program, info)
    point_a = analysis.point_before_call("main", "add_n", 0)
    point_b = analysis.point_before_call("add_n", "add_n", 0)
    point_c = analysis.point_before_call("reverse", "reverse", 0)
    return analysis, point_a, point_b, point_c


def test_fig7_program_points(benchmark):
    analysis, point_a, point_b, point_c = benchmark(reproduce_figure7)

    banner("Figure 7 — add_and_reverse: path matrices at program points A, B, C")
    print("pA (paper: root->lside = L1, root->rside = R1, lside/rside unrelated):")
    print(point_a.format(["root", "lside", "rside"]))
    print("\npB (paper: h*->h = D+, h->l = L1, h->r = R1, l and r unrelated):")
    print(point_b.format(["h*", "h**", "h", "l", "r"]))
    print("\npC (same shape inside reverse):")
    print(point_c.format(["h*", "h**", "h", "l", "r"]))
    print("\nprocedure summaries (Section 5.2 refinement):")
    for name in ("add_n", "reverse", "build"):
        summary = analysis.summary(name)
        print(
            f"  {name:8s} update={sorted(summary.update_params)} "
            f"readonly={summary.readonly_params()} modifies_links={summary.modifies_links}"
        )

    # pA — Figure 7.
    assert point_a.get("root", "lside").format() == "L1"
    assert point_a.get("root", "rside").format() == "R1"
    assert point_a.unrelated("lside", "rside")

    # pB — Figure 7 (current handle and its two children; symbolic context).
    assert point_b.get("h", "l").format() == "L1"
    assert point_b.get("h", "r").format() == "R1"
    assert point_b.unrelated("l", "r")
    assert not point_b.get("h*", "h").is_empty      # h lies under the original argument
    assert point_b.get("h**", "h").has_proper_path  # strictly under every stacked argument
    assert point_b.get("h", "h**").is_empty
    assert not point_b.get("h*", "l").is_empty and not point_b.get("h*", "r").is_empty

    # pC — same disjointness inside reverse.
    assert point_c.unrelated("l", "r")
    assert point_c.get("h", "l").format() == "L1"
    assert point_c.get("h", "r").format() == "R1"

    # Summaries: add_n only updates values; reverse restructures; build is fresh.
    assert not analysis.summary("add_n").modifies_links
    assert analysis.summary("reverse").modifies_links
    assert analysis.summary("build").result_may_be_fresh
