"""FIG5 — Figure 5: read and write sets of every basic handle statement.

Regenerates the table of Figure 5 for a representative path matrix and
checks each row against the paper's definition.
"""

from repro.analysis.matrix import PathMatrix
from repro.analysis.pathset import PathSet
from repro.interference import field_location, read_set, var_location, write_set
from repro.sil import ast
from repro.sil.ast import Field
from repro.sil.printer import format_stmt


def banner(title: str) -> None:
    print("\n" + "=" * 78 + f"\n{title}\n" + "=" * 78)


def build_matrix() -> PathMatrix:
    matrix = PathMatrix(["a", "b", "x"])
    matrix.set("a", "x", PathSet.parse("S?"))
    matrix.set("x", "a", PathSet.parse("S?"))
    return matrix


STATEMENTS = [
    ast.AssignNil(target="a"),
    ast.AssignNew(target="a"),
    ast.CopyHandle(target="a", source="b"),
    ast.LoadField(target="a", source="b", field_name=Field.LEFT),
    ast.StoreField(target="a", field_name=Field.LEFT, source="b"),
    ast.LoadValue(target="n", source="a"),
    ast.StoreValue(target="a", expr=ast.Name("n")),
]


def reproduce_figure5():
    matrix = build_matrix()
    rows = []
    for stmt in STATEMENTS:
        rows.append((format_stmt(stmt), read_set(stmt, matrix), write_set(stmt, matrix)))
    return matrix, rows


def fmt(locations):
    return "{" + ", ".join(sorted(str(l) for l in locations)) + "}"


def test_fig5_read_write_sets(benchmark):
    matrix, rows = benchmark(reproduce_figure5)

    banner("Figure 5 — read/write sets of basic handle statements")
    print("path matrix used (x may alias a):")
    print(matrix.format())
    print()
    print(f"{'statement':22s} {'R(s,p)':45s} W(s,p)")
    for text, reads, writes in rows:
        print(f"{text:22s} {fmt(reads):45s} {fmt(writes)}")

    table = {text: (reads, writes) for text, reads, writes in rows}

    # Row by row, as in the paper.
    assert table["a := nil"] == (set(), {var_location("a")})
    assert table["a := new()"] == (set(), {var_location("a")})
    assert table["a := b"] == ({var_location("b")}, {var_location("a")})

    reads, writes = table["a := b.left"]
    assert reads == {var_location("b"), field_location("b", Field.LEFT)}
    assert writes == {var_location("a")}

    reads, writes = table["a.left := b"]
    assert reads == {var_location("a"), var_location("b")}
    # W = A(a, left, p): a itself plus its possible alias x.
    assert writes == {field_location("a", Field.LEFT), field_location("x", Field.LEFT)}

    reads, writes = table["n := a.value"]
    assert field_location("a", Field.VALUE) in reads and field_location("x", Field.VALUE) in reads
    assert writes == {var_location("n")}

    reads, writes = table["a.value := n"]
    assert var_location("n") in reads
    assert writes == {field_location("a", Field.VALUE), field_location("x", Field.VALUE)}
