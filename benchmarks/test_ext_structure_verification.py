"""EXT-E — structure verification / parallel-debugging use case.

Sections 1 and 4: the same path-matrix machinery verifies that a program
preserves the declared TREE/DAG shape, and can be used to flag statements
that (possibly) create sharing or cycles — the debugging scenario.  This
bench runs the static structure verification over the suite and compares it
with the runtime ground truth of the concrete heap.
"""

import pytest

from repro.analysis import analyze_program
from repro.runtime import classify_structure, run_program
from repro.workloads import load


def banner(title: str) -> None:
    print("\n" + "=" * 78 + f"\n{title}\n" + "=" * 78)


CASES = {
    # workload -> (expected static cycle warning, expected static sharing warning,
    #              runtime kind of the final structure)
    "tree_add": (False, False, "tree"),
    "tree_copy": (False, False, "tree"),
    "add_and_reverse": (False, True, "tree"),   # reverse passes through a DAG state
    "tree_mirror": (False, True, "tree"),
    "dag_sharing": (False, True, "dag"),
    "cycle_bug": (True, False, "cyclic"),
}


def evaluate(name: str):
    depth = 12 if name == "bst_build" else 3
    program, info = load(name, depth=depth)
    analysis = analyze_program(program, info)
    execution = run_program(program, info)
    roots = [v for v in execution.main_locals.values() if v is None or hasattr(v, "node_id")]
    runtime = classify_structure(execution.heap, [r for r in roots if r is not None])
    cycles = [d for d in analysis.diagnostics if d.is_cycle]
    sharing = [d for d in analysis.diagnostics if d.is_sharing]
    return cycles, sharing, runtime


def test_ext_structure_verification(benchmark):
    results = benchmark(lambda: {name: evaluate(name) for name in CASES})

    banner("EXT-E — static structure verification vs. runtime ground truth")
    print(f"{'workload':16s} {'static cycle?':>14s} {'static sharing?':>16s} {'runtime shape':>14s}")
    for name, (cycles, sharing, runtime) in results.items():
        print(
            f"{name:16s} {str(bool(cycles)):>14s} {str(bool(sharing)):>16s} "
            f"{runtime.kind.value:>14s}"
        )
    print("\nexample diagnostics:")
    for name in ("cycle_bug", "dag_sharing", "add_and_reverse"):
        for diagnostic in results[name][0] + results[name][1]:
            print(f"  [{name}] {diagnostic}")
            break

    for name, (expect_cycle, expect_sharing, expect_runtime) in CASES.items():
        cycles, sharing, runtime = results[name]
        assert bool(cycles) == expect_cycle, name
        assert bool(sharing) == expect_sharing, name
        assert runtime.kind.value == expect_runtime, name
        # Soundness: a runtime violation is always predicted statically.
        if runtime.is_cyclic:
            assert cycles, name
        if runtime.is_dag:
            assert sharing, name
