"""FIG8 — Figure 8: the parallel version of the example program.

Runs the parallelizing transformation on ``add_and_reverse`` and prints the
transformed procedures next to the paper's Figure 8.  The assertions check
that every parallel statement of the figure is reproduced, that the
transformed program still type checks, and that executing it is race-free
and computes the same tree as the sequential original.
"""

from repro.parallel import parallelize_program
from repro.runtime import run_program
from repro.sil import check_program, format_procedure
from repro.workloads import load


def banner(title: str) -> None:
    print("\n" + "=" * 78 + f"\n{title}\n" + "=" * 78)


def reproduce_figure8():
    program, info = load("add_and_reverse", depth=4)
    result = parallelize_program(program, info)
    parallel_info = check_program(result.program)
    sequential_run = run_program(program, info)
    parallel_run = run_program(result.program, parallel_info)
    return result, sequential_run, parallel_run


def test_fig8_parallelization(benchmark):
    result, sequential_run, parallel_run = benchmark(reproduce_figure8)

    banner("Figure 8 — parallel version of add_and_reverse")
    for name in ("main", "add_n", "reverse"):
        print(format_procedure(result.program.callable(name)))
        print()
    stats = result.stats
    print(
        f"parallel groups: {stats.groups} (call groups: {stats.call_groups}, "
        f"largest group: {stats.largest_group})"
    )
    print(f"dynamic check: races={len(parallel_run.races)}  "
          f"span {sequential_run.span} -> {parallel_run.span}")

    main_text = format_procedure(result.program.callable("main"))
    add_n_text = format_procedure(result.program.callable("add_n"))
    reverse_text = format_procedure(result.program.callable("reverse"))

    # The exact parallel statements of Figure 8.
    assert "lside := root.left || rside := root.right" in main_text
    assert "add_n(lside, 1) || add_n(rside, -1)" in main_text
    assert "h.value := h.value + n || l := h.left || r := h.right" in add_n_text
    assert "add_n(l, n) || add_n(r, n)" in add_n_text
    assert "l := h.left || r := h.right" in reverse_text
    assert "reverse(l) || reverse(r)" in reverse_text
    assert "h.left := r || h.right := l" in reverse_text
    # reverse(root) stays after (not parallel with) the add_n calls.
    assert "|| reverse(root)" not in main_text

    # The transformation is semantics-preserving and race-free.
    assert parallel_run.race_free
    seq_tree = sequential_run.heap.extract(sequential_run.main_locals["root"])
    par_tree = parallel_run.heap.extract(parallel_run.main_locals["root"])
    assert seq_tree == par_tree
    assert parallel_run.span < sequential_run.span
