"""FIG3 — Figure 3: iterative approximation for a simple while loop.

Reproduces the ``l := h; while l.left <> nil do l := l.left`` example: the
analysis starts from ``p0`` (zero iterations, ``p[h,l] = S``), folds in the
matrices after 1, 2, ... iterations and stabilizes at ``p+`` where ``l`` is
``h`` itself or some number of left links below it (the paper's ``L+``).
"""

from repro.analysis import analyze_program
from repro.sil import ast
from repro.workloads import load


def banner(title: str) -> None:
    print("\n" + "=" * 78 + f"\n{title}\n" + "=" * 78)


def reproduce_figure3():
    program, info = load("list_walk", depth=8)
    analysis = analyze_program(program, info)
    loop = next(s for s in ast.walk_stmt(program.main.body) if isinstance(s, ast.WhileStmt))
    history = analysis.loop_history(loop)
    exit_matrix = analysis.matrix_after(loop)
    body_matrix = analysis.matrix_after(loop.body)
    return history, exit_matrix, body_matrix


def test_fig3_while_fixpoint(benchmark):
    history, exit_matrix, body_matrix = benchmark(reproduce_figure3)

    banner("Figure 3 — iterative approximation for `while l.left <> nil do l := l.left`")
    print(f"fixed point reached after {len(history) - 1} folding steps")
    for index, matrix in enumerate(history[:4]):
        label = "p0 (zero iterations)" if index == 0 else f"p{index}"
        print(f"\n{label}:  p[l (head), current l] = {{{matrix.get('l', 'head').format() or ''}}}"
              f"   p[head, l] = {{{matrix.get('head', 'l').format()}}}")
    print("\nfixed point (p+), restricted to head and l:")
    print(exit_matrix.format(["head", "l"]))
    print("\nmatrix after the loop body (inside the loop, paper's L+):")
    print(body_matrix.format(["head", "l"]))

    # The iteration terminates.
    assert history[-1] == history[-2]
    # p0: l and head name the same node.
    assert history[0].get("head", "l").has_definite_same
    # p+: l is the head or a chain of left links below it, never above it.
    entry = exit_matrix.get("head", "l")
    assert entry.has_same
    proper = [p for p in entry if not p.is_same]
    assert proper and all(
        all(seg.direction.value == "L" for seg in p.segments) for p in proper
    )
    assert exit_matrix.get("l", "head").format() in ("", "S?")
    # Inside the loop (after `l := l.left`) the relationship is the paper's L+:
    inside = body_matrix.get("head", "l")
    assert all(
        all(seg.direction.value == "L" for seg in p.segments) for p in inside if not p.is_same
    )
    assert any(not p.is_same for p in inside)
