"""Shared setup for the benchmark harness (one module per paper figure/table)."""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

sys.setrecursionlimit(200_000)


def banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
