"""FIG2 — Figure 2: path matrices after handle assignments.

Reproduces Figure 2(a)-(c): starting from the initial matrix with handles
a, b, c (``p[a,b] = L1 L+ L1``, ``p[a,c] = R1 D+``), apply ``d := a.right``
and then ``e := d.left`` and print the resulting matrices.  The assertions
check the exact entries the paper shows, including the possible paths
``{S?, D+?}`` between ``e`` and ``c``.
"""

from repro.analysis.matrix import PathMatrix
from repro.analysis.pathset import PathSet
from repro.analysis.transfer import apply_load_field
from repro.sil.ast import Field

def banner(title: str) -> None:
    print("\n" + "=" * 78 + f"\n{title}\n" + "=" * 78)


def figure2_initial() -> PathMatrix:
    matrix = PathMatrix(["a", "b", "c"])
    matrix.set("a", "b", PathSet.parse("L1L+L1"))
    matrix.set("a", "c", PathSet.parse("R1D+"))
    return matrix


def reproduce_figure2():
    initial = figure2_initial()
    after_d = apply_load_field(initial, "d", "a", Field.RIGHT)
    after_e = apply_load_field(after_d, "e", "d", Field.LEFT)
    return initial, after_d, after_e


def test_fig2_handle_assignments(benchmark):
    initial, after_d, after_e = benchmark(reproduce_figure2)

    banner("Figure 2 — path matrices for handle assignments")
    print("(a) initial matrix (paper: p[a,b] = L^1L+L^1, p[a,c] = R^1D+):")
    print(initial.format())
    print()
    print("(b) after `d := a.right` (paper: p[a,d] = R^1, p[d,c] = D+):")
    print(after_d.format())
    print()
    print("(c) after `e := d.left` (paper: p[a,e] = R^1L^1, p[d,e] = L^1, p[e,c] = {S?, D+?}):")
    print(after_e.format())

    # Figure 2(a): canonical form of L^1 L+ L^1 is "at least three left edges".
    assert initial.get("a", "b").format() == "L3+"
    assert initial.get("a", "c").format() == "R1D+"

    # Figure 2(b).
    assert after_d.get("a", "d").format() == "R1"
    assert after_d.get("d", "c").format() == "D+"
    assert after_d.get("d", "b").is_empty

    # Figure 2(c).
    assert after_e.get("a", "e").format() == "R1L1"
    assert after_e.get("d", "e").format() == "L1"
    assert after_e.get("e", "c").format() == "S?, D+?"
    assert after_e.get("e", "b").is_empty
