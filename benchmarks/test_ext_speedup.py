"""EXT-B — exposed parallelism / simulated speedup of the transformed programs.

For every recursive tree workload: run the sequential program and the
path-matrix-parallelized program on the same input, and report the
simulated execution time on P = 1, 2, 4, 8, 16, 32 and unbounded processors
(greedy/Brent model, see repro.parallel.schedule).  The shape expected from
the paper: the parallel version's critical path shrinks to O(depth), so the
unbounded-processor speedup grows roughly linearly in the number of tree
nodes / processors until it saturates at the ideal parallelism.
"""

import pytest

from repro.parallel import build_report, parallelize_program
from repro.runtime import run_program
from repro.sil import check_program
from repro.workloads import load


def banner(title: str) -> None:
    print("\n" + "=" * 78 + f"\n{title}\n" + "=" * 78)


WORKLOADS = ("add_and_reverse", "tree_add", "tree_mirror", "tree_copy", "bitonic_sort")


def measure(name: str, depth: int):
    program, info = load(name, depth=depth)
    sequential = run_program(program, info)
    transformed = parallelize_program(program, info)
    parallel = run_program(transformed.program, check_program(transformed.program))
    return build_report(f"{name} (depth {depth})", sequential, parallel)


def test_ext_speedup_tables(benchmark):
    report = benchmark(measure, "add_and_reverse", 6)

    banner("EXT-B — simulated speedup of parallelized workloads (greedy P-processor model)")
    reports = [report] + [measure(name, 6) for name in WORKLOADS if name != "add_and_reverse"]
    for item in reports:
        print()
        print(item.format_table())

    for item in reports:
        # No dynamic races anywhere.
        assert item.race_free
        # Work is essentially unchanged by the transformation.
        assert item.parallel.work == pytest.approx(item.sequential.work, rel=0.02)
        # Meaningful parallelism is exposed, and speedup saturates at it.
        assert item.max_speedup > 3.0
        assert item.row(1).speedup == pytest.approx(1.0, rel=0.05)
        speedups = [row.speedup for row in item.rows]
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))


def test_ext_speedup_scaling_with_depth(benchmark):
    """Unbounded-processor speedup of add_and_reverse grows with tree depth."""
    depths = (4, 6, 8)
    reports = benchmark(lambda: [measure("add_and_reverse", d) for d in depths])

    banner("EXT-B — speedup scaling with tree depth (add_and_reverse)")
    print(f"{'depth':>6s} {'nodes':>7s} {'work':>9s} {'span_par':>9s} {'max speedup':>12s}")
    for depth, report in zip(depths, reports):
        nodes = 2 ** depth - 1
        print(
            f"{depth:6d} {nodes:7d} {report.parallel.work:9d} "
            f"{report.parallel.span:9d} {report.max_speedup:12.2f}"
        )

    speedups = [report.max_speedup for report in reports]
    assert all(b > 1.5 * a for a, b in zip(speedups, speedups[1:])), speedups
    # Critical path grows roughly linearly with depth while work grows
    # exponentially: span should stay within a small multiple of depth * constant.
    spans = [report.parallel.span for report in reports]
    assert spans[-1] < spans[0] * 6
