"""EXT-F — warm-vs-cold persistent transfer-cache micro-benchmark.

The ROADMAP's next scaling rung after sharding: a persistent (cross-run)
transfer-cache backend so shards — and whole reruns — stop re-missing
shared transfers.  This bench runs the same population twice against one
disk store and asserts the contract that makes the warm path worth having:

* the **cold** run computes every unique transfer once and writes exactly
  its unique-key count (``persistent_cache_writes``) into the store;
* the **warm** run (a fresh ``BatchAnalyzer``, fresh in-memory cache —
  the in-process stand-in for a fresh process, which
  ``tests/test_cache_determinism.py`` covers with real subprocesses)
  performs **no more transfer computations than the cold run's
  unique-key count** — in fact zero, since the population is identical —
  while producing bit-identical canonical results and replaying the cold
  run's widening telemetry exactly.

Timings are printed for eyeballing, not asserted: decode-from-store versus
recompute is environment-dependent, but the *work counters* are exact.
"""

import time

from conftest import banner

from repro.analysis.engine import BatchAnalyzer
from repro.cache import CacheConfig
from repro.sil.normalize import parse_and_normalize
from repro.workloads import WORKLOADS, generate_scenarios
from repro.workloads.suite import source


def _population():
    sources = [source(name, depth=3) for name in WORKLOADS]
    sources += [s.source for s in generate_scenarios(6, base_seed=17)]
    return sources


def _run(config: CacheConfig):
    batch = BatchAnalyzer(cache=config)
    started = time.perf_counter()
    canonicals = []
    for text in _population():
        program, info = parse_and_normalize(text)
        canonicals.append(batch.analyze(program, info).canonical())
    batch.close()
    return batch.stats, canonicals, time.perf_counter() - started


def test_ext_warm_run_never_recomputes_cold_unique_keys(tmp_path):
    config = CacheConfig(backend="disk", directory=str(tmp_path))

    cold_stats, cold_results, cold_seconds = _run(config)
    warm_stats, warm_results, warm_seconds = _run(config)

    banner("EXT-F — persistent transfer cache: cold vs warm run")
    print(f"{'':14s}{'computed':>9s} {'p-hits':>7s} {'p-miss':>7s} {'writes':>7s} {'seconds':>8s}")
    for label, stats, seconds in (
        ("cold", cold_stats, cold_seconds),
        ("warm", warm_stats, warm_seconds),
    ):
        print(
            f"{label:14s}{stats.transfer_cache_misses:9d} "
            f"{stats.persistent_cache_hits:7d} {stats.persistent_cache_misses:7d} "
            f"{stats.persistent_cache_writes:7d} {seconds:8.3f}"
        )
    print(f"\nwarm persistent hit rate: {warm_stats.persistent_cache_hit_rate:.4f}")

    # The cold run's unique-key count is exactly what it wrote to the store.
    unique_keys = cold_stats.persistent_cache_writes
    assert unique_keys > 0
    assert cold_stats.transfer_cache_misses >= unique_keys

    # The warm-run contract: no more computations than the cold run's
    # unique keys — and for an identical population, none at all.
    assert warm_stats.transfer_cache_misses <= unique_keys
    assert warm_stats.transfer_cache_misses == 0
    assert warm_stats.persistent_cache_hits > 0
    assert warm_stats.persistent_cache_writes == 0  # nothing new to flush

    # Same results, same replayed widening telemetry.
    assert warm_results == cold_results
    assert warm_stats.widening_counters() == cold_stats.widening_counters()
