"""EXT-C — precision comparison against prior-work baselines.

The paper's motivation (Sections 1-2): existing disambiguation techniques
and region/effect systems are too coarse for recursive data structures.
This bench parallelizes every workload with three oracles —

* ``conservative`` (no pointer information),
* ``region-effects`` (Lucassen-Gifford precision: disjoint structures only),
* ``path-matrix`` (the paper's analysis) —

and reports, per workload, the number of parallel groups, the number of
groups containing two calls, and the resulting unbounded-processor speedup.
Expected shape: conservative <= region <= path-matrix, with only the
path-matrix oracle parallelizing the recursive calls on the two sub-trees
(speedups well above 1 on every tree workload).
"""

import pytest

from repro.baselines import ConservativeOracle, RegionOracle
from repro.parallel import PathMatrixOracle, build_report, parallelize_program
from repro.runtime import run_program
from repro.sil import check_program
from repro.workloads import load


def banner(title: str) -> None:
    print("\n" + "=" * 78 + f"\n{title}\n" + "=" * 78)


WORKLOADS = ("add_and_reverse", "tree_add", "tree_mirror", "tree_copy", "bitonic_sort")
ORACLES = (
    ("conservative", ConservativeOracle),
    ("region-effects", RegionOracle),
    ("path-matrix", PathMatrixOracle),
)


def measure_all(depth: int = 5):
    table = {}
    for name in WORKLOADS:
        program, info = load(name, depth=depth)
        sequential = run_program(program, info)
        row = {}
        for oracle_name, factory in ORACLES:
            result = parallelize_program(program, info, oracle=factory())
            parallel = run_program(result.program, check_program(result.program))
            report = build_report(name, sequential, parallel)
            row[oracle_name] = {
                "groups": result.stats.groups,
                "call_groups": result.stats.call_groups,
                "speedup": report.max_speedup,
                "races": len(parallel.races),
            }
        table[name] = row
    return table


def test_ext_baseline_comparison(benchmark):
    table = benchmark(measure_all, 5)

    banner("EXT-C — parallelism detected by each analysis (depth-5 trees)")
    header = f"{'workload':16s}" + "".join(f"{name:>22s}" for name, _ in ORACLES)
    print(header + "    (groups / call-groups / speedup@inf)")
    for workload, row in table.items():
        cells = []
        for oracle_name, _ in ORACLES:
            cell = row[oracle_name]
            cells.append(f"{cell['groups']:3d} / {cell['call_groups']:2d} / {cell['speedup']:6.2f}")
        print(f"{workload:16s}" + "".join(f"{cell:>22s}" for cell in cells))

    for workload, row in table.items():
        conservative = row["conservative"]
        region = row["region-effects"]
        paper = row["path-matrix"]
        # All three oracles are sound (no dynamic races).
        assert conservative["races"] == region["races"] == paper["races"] == 0
        # Monotone precision ordering.
        assert conservative["groups"] <= region["groups"] <= paper["groups"]
        assert conservative["speedup"] <= region["speedup"] + 1e-9
        assert region["speedup"] <= paper["speedup"] + 1e-9
        # The path-matrix analysis always exposes the divide-and-conquer
        # parallelism of the recursive calls.
        assert paper["speedup"] > 3.0, workload
        assert paper["call_groups"] >= region["call_groups"], workload
        # For workloads that *update* the structure, the effect-system
        # baseline collapses both sub-trees into one written region and the
        # gap is large; for read-only traversals (tree_add) read effects
        # commute and the region baseline is competitive, as expected.
        if workload in ("add_and_reverse", "tree_mirror", "bitonic_sort"):
            assert paper["speedup"] > 2.0 * region["speedup"], workload
            assert paper["call_groups"] > region["call_groups"], workload
        else:
            assert paper["speedup"] >= region["speedup"] - 1e-9, workload
