"""EXT-E — the sharded batch-analysis frontend at population scale.

The ROADMAP's scaling direction: serve whole workload populations — every
named workload plus a seeded random scenario population — through
:class:`~repro.workloads.suite.ShardedSuiteRunner`, and show that

* sharding is *transparent*: the merged results are bit-identical to a
  single-process run over the same population (per-point path matrices,
  entry matrices and diagnostics, compared via the canonical encoding),
* the merged :class:`~repro.analysis.context.AnalysisStats` is exactly the
  sum of the per-shard breakdowns, and
* the per-shard wall-clock spread is visible, so the round-robin
  assignment can be judged.

Kept deliberately small for tier-1 (a handful of scenarios, 2 shards); the
CLI (``python -m repro bench``) runs the full 50+-scenario population.
"""

from conftest import banner

from repro.analysis.context import AnalysisStats
from repro.workloads import (
    WORKLOADS,
    GeneratorConfig,
    ShardedSuiteRunner,
    generate_scenarios,
    source,
)


def test_ext_sharded_population_bit_identity():
    scenarios = generate_scenarios(
        12, base_seed=2024, config=GeneratorConfig(depth=3, procedures=2)
    )
    items = [(name, source(name, depth=3)) for name in WORKLOADS]
    items += [(s.name, s.source) for s in scenarios]
    runner = ShardedSuiteRunner(items, shards=2)

    sharded = runner.run()
    single = runner.run_single_process()

    banner("EXT-E — sharded batch analysis (named workloads + generated population)")
    print(f"population: {len(WORKLOADS)} named + {len(scenarios)} generated scenarios")
    print(f"{'shard':>5s} {'n':>4s} {'pops':>6s} {'visited':>8s} {'seconds':>8s}")
    for shard in sharded.shards:
        print(
            f"{shard.shard:5d} {len(shard.workloads):4d} {shard.stats.worklist_pops:6d} "
            f"{shard.stats.statements_visited:8d} {shard.seconds:8.3f}"
        )
    print(
        f"\nsharded {sharded.seconds:.3f}s vs single-process {single.seconds:.3f}s; "
        f"bit-identical: {sharded.matches(single)}"
    )
    print("\nmerged AnalysisStats:")
    print(sharded.stats.format())

    assert sharded.ok and single.ok
    assert sharded.matches(single)
    assert sharded.results == single.results
    assert sharded.stats.programs_analyzed == len(items)
    for name in AnalysisStats.COUNTER_FIELDS:
        assert getattr(sharded.stats, name) == sum(
            getattr(shard.stats, name) for shard in sharded.shards
        )
