"""EXT-D — cost of the analysis and ablation of the domain limits.

The paper stresses that restricting the method to regular recursive
structures keeps the analysis efficient.  This bench measures

* how whole-program analysis time scales with program size (number of
  statements) and with the number of live handles (the path-matrix
  dimension), using generated programs with known shape,
* an ablation over the :class:`AnalysisLimits` bounds showing that tighter
  widening keeps the key disjointness facts while reducing work, and
* the engine-architecture counters: worklist pops stay strictly below the
  seed's rounds x procedures product, the memoized transfer cache answers
  re-analyses, and the :class:`AnalysisStats` snapshot is written to
  ``BENCH_analysis.json`` for CI to pick up.
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis import analyze_many, analyze_program, analyze_program_reference
from repro.analysis.limits import AnalysisLimits
from repro.sil import ast
from repro.workloads import (
    WORKLOADS,
    load,
    make_handle_web_program,
    make_independent_loads_program,
    source,
    time_items,
)
from repro.workloads.generators import GeneratorConfig, generate_scenarios

#: Stats artifact consumed by the CI bench-smoke job (repo root).  The
#: committed copy doubles as the cold-median ratchet baseline, so the
#: timing population below must stay identical to the CI ratchet job's
#: ``bench --time --seeds 12 --family dag,deep,mixed`` invocation.
STATS_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_analysis.json"

#: The ratchet population: every named workload plus the widening-heavy
#: generated families, with the bench CLI's default generator knobs.
RATCHET_FAMILIES = ("dag", "deep", "mixed")
RATCHET_SEEDS = 12


def ratchet_population():
    """The exact ``(name, source)`` items the CI cold-median ratchet times."""
    config = GeneratorConfig(procedures=2, depth=4, aliasing=0.3).clamped()
    scenarios = generate_scenarios(
        RATCHET_SEEDS, base_seed=0, config=config, families=RATCHET_FAMILIES
    )
    items = [(name, source(name, depth=4)) for name in WORKLOADS]
    items += [(scenario.name, scenario.source) for scenario in scenarios]
    return items


def banner(title: str) -> None:
    print("\n" + "=" * 78 + f"\n{title}\n" + "=" * 78)


def timed_analysis(program, info, limits=None):
    start = time.perf_counter()
    analysis = analyze_program(program, info, limits=limits or AnalysisLimits())
    elapsed = time.perf_counter() - start
    return analysis, elapsed


def test_ext_analysis_cost_scaling(benchmark):
    program, info = load("add_and_reverse", depth=4)
    benchmark(lambda: analyze_program(program, info))

    banner("EXT-D — analysis cost scaling")
    print("scaling with program size (independent load pairs):")
    print(f"{'pairs':>7s} {'stmts':>7s} {'seconds':>9s}")
    size_rows = []
    for pairs in (4, 8, 16, 32):
        generated, generated_info = make_independent_loads_program(pairs)
        _, elapsed = timed_analysis(generated, generated_info)
        stmts = ast.count_statements(generated)
        size_rows.append((pairs, stmts, elapsed))
        print(f"{pairs:7d} {stmts:7d} {elapsed:9.4f}")

    print("\nscaling with live-handle count (path-matrix dimension):")
    print(f"{'handles':>8s} {'seconds':>9s}")
    handle_rows = []
    for handles in (4, 8, 16):
        generated, generated_info = make_handle_web_program(handles)
        _, elapsed = timed_analysis(generated, generated_info)
        handle_rows.append((handles, elapsed))
        print(f"{handles:8d} {elapsed:9.4f}")

    # Sanity: everything analyzes in well under a second at these sizes, and
    # cost grows with size (no pathological blow-up, no constant-time fluke).
    assert all(elapsed < 5.0 for _, _, elapsed in size_rows)
    assert size_rows[-1][1] > size_rows[0][1]
    assert all(elapsed < 5.0 for _, elapsed in handle_rows)


def test_ext_analysis_limit_ablation(benchmark):
    program, info = load("add_and_reverse", depth=4)

    configurations = {
        "default (k=8, segs=4)": AnalysisLimits(),
        "tight (k=2, segs=2)": AnalysisLimits(
            max_exact_count=2, max_open_count=2, max_segments=2, max_paths_per_entry=3
        ),
        "wide (k=16, segs=6)": AnalysisLimits(
            max_exact_count=16, max_open_count=16, max_segments=6, max_paths_per_entry=16
        ),
    }

    def run_all():
        results = {}
        for label, limits in configurations.items():
            analysis, elapsed = timed_analysis(program, info, limits)
            point_b = analysis.point_before_call("add_n", "add_n", 0)
            results[label] = {
                "seconds": elapsed,
                "iterations": analysis.iterations,
                "disjoint": point_b.unrelated("l", "r"),
                "pB_h_star_h": point_b.get("h*", "h").format(),
            }
        return results

    results = benchmark(run_all)

    banner("EXT-D — ablation of the widening limits (add_and_reverse)")
    print(f"{'configuration':24s} {'seconds':>9s} {'iters':>6s} {'l⊥r?':>6s}  p[h*,h]")
    for label, row in results.items():
        print(
            f"{label:24s} {row['seconds']:9.4f} {row['iterations']:6d} "
            f"{str(row['disjoint']):>6s}  {row['pB_h_star_h']}"
        )

    # The key disjointness fact (and hence Figure 8) survives every setting.
    assert all(row["disjoint"] for row in results.values())


def test_ext_analysis_worklist_and_cache_stats():
    """EXT-D' — engine-architecture counters (worklist + memoized transfers).

    Asserts the two structural speedups of the pipeline engine:

    * the worklist solver performs strictly fewer procedure analyses than
      the seed's rounds x procedures bound (measured per workload against
      the retained reference engine), and
    * a re-analysis of the same program is fully served by the memoized
      transfer cache (nonzero hit rate; in fact 100%).

    Writes the aggregate :class:`AnalysisStats` snapshot to
    ``BENCH_analysis.json``.
    """
    banner("EXT-D' — worklist + transfer-cache statistics")
    print(
        f"{'workload':16s} {'pops':>5s} {'rounds':>7s} {'procs':>6s} "
        f"{'bound':>6s} {'rerun-hit%':>10s}"
    )

    per_workload = {}
    names = sorted(name for name in WORKLOADS)
    for name in names:
        program, info = load(name, depth=3)
        reference = analyze_program_reference(program, info)
        first = analyze_program(program, info)
        rerun = analyze_program(program, info)

        procedures = len(reference.entry_matrices)
        bound = reference.iterations * procedures
        pops = first.stats.worklist_pops
        hit_rate = rerun.stats.transfer_cache_hit_rate

        per_workload[name] = {
            "worklist_pops": pops,
            "reference_rounds": reference.iterations,
            "procedures": procedures,
            "rounds_times_procedures": bound,
            "rerun_hit_rate": round(hit_rate, 4),
            # Per-workload widening telemetry (fresh stats per run, so the
            # counters are this workload's own — and the safety net never
            # fires at default limits).
            "widening": first.stats.widening_counters(),
        }
        assert first.stats.iteration_guard_trips == 0
        print(
            f"{name:16s} {pops:5d} {reference.iterations:7d} {procedures:6d} "
            f"{bound:6d} {hit_rate:10.1%}"
        )

        # The worklist never exceeds the seed's rounds x procedures work.
        assert pops <= bound
        # Identical results, served from the cache on the second run.
        assert rerun.entry_matrices == first.entry_matrices
        assert rerun.stats.transfer_cache_hits > 0
        assert hit_rate > 0.0

    # Multi-procedure workloads must genuinely beat the old bound.
    multi = {k: v for k, v in per_workload.items() if v["procedures"] > 1}
    assert multi and all(
        row["worklist_pops"] < row["rounds_times_procedures"] for row in multi.values()
    )

    # Batch analysis over the whole suite shares one context; its aggregate
    # stats are the artifact CI uploads.
    suite_results = analyze_many([load(name, depth=3) for name in names])
    suite_stats = suite_results[0].stats
    print("\naggregate AnalysisStats over the batched suite:")
    print(suite_stats.format())
    assert suite_stats.programs_analyzed == len(names)

    # Wall-clock axis over the ratchet population (the same harness
    # `python -m repro bench --time` drives): cold + warm medians per
    # workload, peak interning tables, and the calibration loop the
    # cold-median CI ratchet normalizes with.
    items = ratchet_population()
    timing = time_items(items, reps=5)
    print("\nper-workload cold/warm median wall time (5 reps each):")
    for name, row in timing["workloads"].items():
        print(
            f"  {name:16s} cold {row['median_seconds']:.6f}s "
            f"warm {row['warm_median_seconds']:.6f}s"
        )
    assert not timing["failures"]
    assert len(timing["workloads"]) == len(items)
    assert all(row["median_seconds"] > 0 for row in timing["workloads"].values())
    # Warm (memoized replay) must beat cold computation across the
    # population — asserted on the totals, which are noise-stable.
    cold_total = sum(row["median_seconds"] for row in timing["workloads"].values())
    warm_total = sum(row["warm_median_seconds"] for row in timing["workloads"].values())
    assert warm_total < cold_total, (warm_total, cold_total)
    assert timing["calibration_seconds"] > 0
    assert timing["intern_tables_peak"].get("matrix_rows_interned", 0) > 0
    assert timing["intern_tables_peak"].get("symbols_interned", 0) > 0

    # Tail-latency accounting over the same population: one suite run whose
    # per-workload latency histograms yield the p50/p90/p99 rows (plus the
    # exact bucket-merged ``_overall``) CI surfaces from the artifact.
    from repro.workloads.suite import ShardedSuiteRunner

    suite_report = ShardedSuiteRunner(items, shards=1).run()
    assert not suite_report.failures
    tails = suite_report.tails()
    print("\nworkload latency tails (from merged histogram buckets):")
    for name, row in tails.items():
        print(
            f"  {name:24s} n={row['count']} p50={row['p50_seconds']:.6f} "
            f"p90={row['p90_seconds']:.6f} p99={row['p99_seconds']:.6f}"
        )
    assert set(tails) >= set(WORKLOADS) | {"_overall"}

    artifact = {
        "suite": suite_stats.as_dict(),
        "per_workload": per_workload,
        "timing": timing,
        "tails": tails,
    }
    STATS_ARTIFACT.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {STATS_ARTIFACT}")
