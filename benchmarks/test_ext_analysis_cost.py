"""EXT-D — cost of the analysis and ablation of the domain limits.

The paper stresses that restricting the method to regular recursive
structures keeps the analysis efficient.  This bench measures

* how whole-program analysis time scales with program size (number of
  statements) and with the number of live handles (the path-matrix
  dimension), using generated programs with known shape, and
* an ablation over the :class:`AnalysisLimits` bounds showing that tighter
  widening keeps the key disjointness facts while reducing work.
"""

import time

import pytest

from repro.analysis import analyze_program
from repro.analysis.limits import AnalysisLimits
from repro.sil import ast
from repro.workloads import (
    load,
    make_handle_web_program,
    make_independent_loads_program,
)


def banner(title: str) -> None:
    print("\n" + "=" * 78 + f"\n{title}\n" + "=" * 78)


def timed_analysis(program, info, limits=None):
    start = time.perf_counter()
    analysis = analyze_program(program, info, limits=limits or AnalysisLimits())
    elapsed = time.perf_counter() - start
    return analysis, elapsed


def test_ext_analysis_cost_scaling(benchmark):
    program, info = load("add_and_reverse", depth=4)
    benchmark(lambda: analyze_program(program, info))

    banner("EXT-D — analysis cost scaling")
    print("scaling with program size (independent load pairs):")
    print(f"{'pairs':>7s} {'stmts':>7s} {'seconds':>9s}")
    size_rows = []
    for pairs in (4, 8, 16, 32):
        generated, generated_info = make_independent_loads_program(pairs)
        _, elapsed = timed_analysis(generated, generated_info)
        stmts = ast.count_statements(generated)
        size_rows.append((pairs, stmts, elapsed))
        print(f"{pairs:7d} {stmts:7d} {elapsed:9.4f}")

    print("\nscaling with live-handle count (path-matrix dimension):")
    print(f"{'handles':>8s} {'seconds':>9s}")
    handle_rows = []
    for handles in (4, 8, 16):
        generated, generated_info = make_handle_web_program(handles)
        _, elapsed = timed_analysis(generated, generated_info)
        handle_rows.append((handles, elapsed))
        print(f"{handles:8d} {elapsed:9.4f}")

    # Sanity: everything analyzes in well under a second at these sizes, and
    # cost grows with size (no pathological blow-up, no constant-time fluke).
    assert all(elapsed < 5.0 for _, _, elapsed in size_rows)
    assert size_rows[-1][1] > size_rows[0][1]
    assert all(elapsed < 5.0 for _, elapsed in handle_rows)


def test_ext_analysis_limit_ablation(benchmark):
    program, info = load("add_and_reverse", depth=4)

    configurations = {
        "default (k=8, segs=4)": AnalysisLimits(),
        "tight (k=2, segs=2)": AnalysisLimits(
            max_exact_count=2, max_open_count=2, max_segments=2, max_paths_per_entry=3
        ),
        "wide (k=16, segs=6)": AnalysisLimits(
            max_exact_count=16, max_open_count=16, max_segments=6, max_paths_per_entry=16
        ),
    }

    def run_all():
        results = {}
        for label, limits in configurations.items():
            analysis, elapsed = timed_analysis(program, info, limits)
            point_b = analysis.point_before_call("add_n", "add_n", 0)
            results[label] = {
                "seconds": elapsed,
                "iterations": analysis.iterations,
                "disjoint": point_b.unrelated("l", "r"),
                "pB_h_star_h": point_b.get("h*", "h").format(),
            }
        return results

    results = benchmark(run_all)

    banner("EXT-D — ablation of the widening limits (add_and_reverse)")
    print(f"{'configuration':24s} {'seconds':>9s} {'iters':>6s} {'l⊥r?':>6s}  p[h*,h]")
    for label, row in results.items():
        print(
            f"{label:24s} {row['seconds']:9.4f} {row['iterations']:6d} "
            f"{str(row['disjoint']):>6s}  {row['pB_h_star_h']}"
        )

    # The key disjointness fact (and hence Figure 8) survives every setting.
    assert all(row["disjoint"] for row in results.values())
