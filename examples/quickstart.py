"""Quickstart: parse a SIL program, analyze it, parallelize it, run both versions.

Run with:  python examples/quickstart.py
"""

from repro import parse_and_normalize, analyze_program, parallelize_program, format_program
from repro.parallel import build_report
from repro.runtime import run_program
from repro.sil import check_program

SOURCE = """
program quickstart

procedure main()
  root, l, r: handle
begin
  root := build(5);
  l := root.left;
  r := root.right;
  scale(l, 2);
  scale(r, 3)
end

{ Multiply every value in the subtree by k. }
procedure scale(h: handle; k: int)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value * k;
    l := h.left;
    r := h.right;
    scale(l, k);
    scale(r, k)
  end
end

function build(d: int): handle
  t, cl, cr: handle
begin
  t := nil;
  if d > 0 then
  begin
    t := new();
    t.value := d;
    cl := build(d - 1);
    cr := build(d - 1);
    t.left := cl;
    t.right := cr
  end
end
return (t)
"""


def main() -> None:
    # 1. Front end: parse, type check, lower to basic handle statements.
    program, info = parse_and_normalize(SOURCE)

    # 2. Path-matrix analysis: matrices at every program point.
    analysis = analyze_program(program, info)
    point = analysis.point_before_call("main", "scale", 0)
    print("Path matrix before the first call to scale (cf. Figure 7's pA):")
    print(point.format(["root", "l", "r"]))
    print()
    print("scale's summary:", sorted(analysis.summary("scale").update_params), "are update arguments")
    print()

    # 3. Parallelize (Figure 8 transformation) and show the result.
    result = parallelize_program(program, info)
    print("Parallelized program:")
    print(format_program(result.program))

    # 4. Execute both versions and compare.
    sequential = run_program(program, info)
    parallel = run_program(result.program, check_program(result.program))
    assert parallel.race_free
    report = build_report("quickstart (depth 5)", sequential, parallel)
    print(report.format_table())


if __name__ == "__main__":
    main()
