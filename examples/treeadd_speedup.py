"""Compare the three dependence oracles on the tree-update workloads.

For each workload and oracle (conservative / region-effects / path-matrix),
parallelize, execute on the simulated machine, and print groups found and
speedup with unbounded processors — the motivation table of the paper in
miniature.

Run with:  python examples/treeadd_speedup.py [depth]
"""

import sys

from repro import parallelize_program
from repro.baselines import ConservativeOracle, RegionOracle
from repro.parallel import PathMatrixOracle, build_report
from repro.runtime import run_program
from repro.sil import check_program
from repro.workloads import load

WORKLOADS = ("tree_add", "add_and_reverse", "tree_mirror", "tree_copy", "bitonic_sort")
ORACLES = (ConservativeOracle, RegionOracle, PathMatrixOracle)


def main(depth: int = 6) -> None:
    print(f"{'workload':16s} {'oracle':16s} {'groups':>7s} {'call-groups':>12s} {'speedup@inf':>12s}")
    for name in WORKLOADS:
        program, info = load(name, depth=depth)
        sequential = run_program(program, info)
        for factory in ORACLES:
            oracle = factory()
            result = parallelize_program(program, info, oracle=oracle)
            parallel = run_program(result.program, check_program(result.program))
            assert parallel.race_free
            report = build_report(name, sequential, parallel)
            print(
                f"{name:16s} {oracle.name:16s} {result.stats.groups:7d} "
                f"{result.stats.call_groups:12d} {report.max_speedup:12.2f}"
            )
        print()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
