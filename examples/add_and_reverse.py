"""The paper's running example (Figures 7 and 8), end to end.

Reproduces program points A/B/C, the Figure 8 parallel program, and the
simulated speedup of the parallel version.

Run with:  python examples/add_and_reverse.py [depth]
"""

import sys

from repro import analyze_program, parallelize_program
from repro.parallel import build_report
from repro.runtime import run_program
from repro.sil import check_program, format_procedure
from repro.workloads import load


def main(depth: int = 6) -> None:
    program, info = load("add_and_reverse", depth=depth)
    analysis = analyze_program(program, info)

    print("=== Figure 7: path matrices ===")
    print("\npA (point A in main):")
    print(analysis.point_before_call("main", "add_n", 0).format(["root", "lside", "rside"]))
    print("\npB (point B in add_n, with symbolic handles h* and h**):")
    print(analysis.point_before_call("add_n", "add_n", 0).format(["h*", "h**", "h", "l", "r"]))
    print("\npC (point C in reverse):")
    print(analysis.point_before_call("reverse", "reverse", 0).format(["h*", "h**", "h", "l", "r"]))

    print("\n=== Figure 8: parallel version ===\n")
    result = parallelize_program(program, info)
    for name in ("main", "add_n", "reverse"):
        print(format_procedure(result.program.callable(name)))
        print()

    print("=== Execution on the simulated parallel machine ===\n")
    sequential = run_program(program, info)
    parallel = run_program(result.program, check_program(result.program))
    assert parallel.race_free, "the parallelized program raced!"
    report = build_report(f"add_and_reverse (depth {depth})", sequential, parallel)
    print(report.format_table())

    print("\nStructure diagnostics raised by the analysis (reverse's temporary DAG):")
    for diagnostic in analysis.diagnostics:
        print(" ", diagnostic)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
