"""Bitonic sort over the leaves of a perfect binary tree (the Section 6 claim).

Parallelizes the recursive bisort/bimerge/cmpswap kernels, verifies the
output is sorted, and prints the speedup table for growing inputs.

Run with:  python examples/bitonic_sort.py [max_depth]
"""

import sys

from repro import parallelize_program
from repro.parallel import build_report
from repro.runtime import run_program
from repro.sil import check_program, format_procedure
from repro.workloads import load, perfect_tree_values


def leaves_in_order(heap, root):
    values = []

    def walk(ref):
        node = heap.node(ref)
        if node.left is None:
            values.append(node.value)
        else:
            walk(node.left)
            walk(node.right)

    walk(root)
    return values


def main(max_depth: int = 7) -> None:
    program, info = load("bitonic_sort", depth=5)
    result = parallelize_program(program, info)
    print("Parallelized bitonic kernels:\n")
    for name in ("bisort", "bimerge", "cmpswap"):
        print(format_procedure(result.program.callable(name)))
        print()

    print("Scaling (leaves vs. exposed parallelism):")
    print(f"{'leaves':>8s} {'work':>10s} {'span_par':>10s} {'parallelism':>12s}")
    for depth in range(4, max_depth + 1):
        program, info = load("bitonic_sort", depth=depth)
        sequential = run_program(program, info)
        transformed = parallelize_program(program, info)
        parallel = run_program(transformed.program, check_program(transformed.program))
        assert parallel.race_free
        sorted_leaves = leaves_in_order(parallel.heap, parallel.main_locals["root"])
        assert sorted_leaves == sorted(perfect_tree_values(depth)), "not sorted!"
        print(
            f"{2 ** (depth - 1):8d} {parallel.work:10d} {parallel.span:10d} "
            f"{parallel.work / parallel.span:12.2f}"
        )
    print("\nAll outputs verified sorted and race-free.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
