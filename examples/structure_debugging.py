"""Using the analysis as a structure-verification / debugging tool (Sections 1 & 4).

Three small programs: one that keeps the structure a TREE, one that silently
builds a DAG, and one with a pointer bug that closes a cycle.  The static
diagnostics are shown next to the runtime ground truth.

Run with:  python examples/structure_debugging.py
"""

from repro import analyze_program, parse_and_normalize
from repro.runtime import classify_structure, run_program

PROGRAMS = {
    "tree_builder (clean)": """
        program tree_builder
        procedure main()
          root, l, r: handle
        begin
          root := new();
          l := new();
          r := new();
          root.left := l;
          root.right := r
        end
    """,
    "dag_builder (shares a node)": """
        program dag_builder
        procedure main()
          x, y, shared: handle
        begin
          x := new();
          y := new();
          shared := new();
          x.left := shared;
          y.right := shared
        end
    """,
    "cycle_bug (links a node above itself)": """
        program cycle_bug
        procedure main()
          root, child: handle
        begin
          root := new();
          child := new();
          root.left := child;
          child.left := root
        end
    """,
}


def main() -> None:
    for title, source in PROGRAMS.items():
        program, info = parse_and_normalize(source)
        analysis = analyze_program(program, info)
        execution = run_program(program, info)
        roots = [v for v in execution.main_locals.values() if v is not None]
        runtime = classify_structure(execution.heap, roots)

        print("=" * 70)
        print(title)
        print(f"  runtime structure: {runtime.kind.value} "
              f"({runtime.node_count} nodes, shared={runtime.shared_nodes}, cycle={runtime.cycle})")
        if analysis.diagnostics:
            print("  static diagnostics:")
            for diagnostic in analysis.diagnostics:
                print(f"    {diagnostic}")
        else:
            print("  static diagnostics: none — the TREE property is preserved")
        print()


if __name__ == "__main__":
    main()
