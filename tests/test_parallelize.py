"""Tests for the parallelizer: oracles, the transformation, baselines, speedup model."""

import pytest

from repro.baselines import ConservativeOracle, RegionOracle
from repro.parallel import (
    PathMatrixOracle,
    batch_oracles,
    build_report,
    greedy_time,
    is_call,
    is_groupable,
    parallelism_census,
    parallelize_program,
)
from repro.runtime import run_program
from repro.sil import ast, check_program, format_procedure
from repro.sil.normalize import parse_and_normalize
from repro.workloads import load
from tests.conftest import load_workload, parallelized


def parallel_groups_in(procedure):
    return [s for s in ast.walk_stmt(procedure.body) if isinstance(s, ast.ParallelStmt)]


class TestOracleBasics:
    def test_is_call_and_is_groupable(self):
        call = ast.ProcCall(name="p", args=[])
        basic = ast.AssignNew(target="a")
        loop = ast.WhileStmt(cond=ast.IntLit(0), body=ast.Block())
        assert is_call(call) and not is_call(basic)
        assert is_groupable(call) and is_groupable(basic) and not is_groupable(loop)

    def test_path_matrix_oracle_requires_prepare(self):
        oracle = PathMatrixOracle()
        with pytest.raises(AssertionError):
            oracle.independent(ast.SkipStmt(), ast.SkipStmt(), ast.SkipStmt(), "main")

    def test_oracle_reuses_existing_analysis(self):
        from repro.analysis import analyze_program

        program, info = load_workload("add_and_reverse", 4)
        analysis = analyze_program(program, info)
        oracle = PathMatrixOracle(analysis=analysis)
        oracle.prepare(program, info)
        assert oracle.analysis is analysis

    def test_batch_oracles_share_one_transfer_cache(self):
        from repro.workloads import generate_scenarios

        pairs = [s.load() for s in generate_scenarios(4, base_seed=9)]
        oracles = batch_oracles(pairs)
        assert len(oracles) == 4
        assert len({id(oracle.transfer_cache) for oracle in oracles}) == 1
        for (program, info), oracle in zip(pairs, oracles):
            assert oracle.analysis is not None
            assert oracle.analysis.program is program

    def test_parallelism_census_counts_groups(self):
        program, info = load_workload("add_and_reverse", 4)
        census = parallelism_census(program, info)
        assert census["groups"] >= 1
        assert census["call_groups"] >= 1  # add_n(l)/add_n(r) fuse
        assert census["independent_answers"] <= census["queries"]


class TestFigure8Transformation:
    def test_add_n_matches_figure_8(self, add_and_reverse_parallel):
        result, _ = add_and_reverse_parallel
        text = format_procedure(result.program.callable("add_n"))
        assert "h.value := h.value + n || l := h.left || r := h.right" in text
        assert "add_n(l, n) || add_n(r, n)" in text

    def test_reverse_matches_figure_8(self, add_and_reverse_parallel):
        result, _ = add_and_reverse_parallel
        text = format_procedure(result.program.callable("reverse"))
        assert "l := h.left || r := h.right" in text
        assert "reverse(l) || reverse(r)" in text
        assert "h.left := r || h.right := l" in text

    def test_main_matches_figure_8(self, add_and_reverse_parallel):
        result, _ = add_and_reverse_parallel
        text = format_procedure(result.program.callable("main"))
        assert "lside := root.left || rside := root.right" in text
        assert "add_n(lside, 1) || add_n(rside, -1)" in text
        # reverse(root) is not grouped with the preceding calls (it touches
        # the same tree).
        assert "add_n(rside, -1) || reverse(root)" not in text
        assert "|| reverse(root)" not in text

    def test_stats_recorded(self, add_and_reverse_parallel):
        result, _ = add_and_reverse_parallel
        stats = result.stats
        assert stats.groups >= 8
        assert stats.call_groups >= 3
        assert stats.largest_group >= 3
        assert stats.queries >= stats.independent_answers
        assert "add_n" in stats.per_procedure

    def test_transformed_program_type_checks(self, add_and_reverse_parallel):
        result, info = add_and_reverse_parallel
        assert info.for_procedure("add_n").is_handle("h")

    def test_structure_statements_not_reordered(self, add_and_reverse_parallel):
        result, _ = add_and_reverse_parallel
        reverse = result.program.callable("reverse")
        body = reverse.body.stmts[0].then_branch
        kinds = [type(s).__name__ for s in body.stmts]
        assert kinds == ["ParallelStmt", "ParallelStmt", "ParallelStmt"]

    def test_requires_core_program(self):
        from repro.sil.parser import parse_program

        surface = parse_program(
            "program p procedure main() a: handle begin a := new(); a.left.right := nil end"
        )
        with pytest.raises(ValueError):
            parallelize_program(surface)


class TestSemanticPreservation:
    @pytest.mark.parametrize(
        "name,depth",
        [("add_and_reverse", 4), ("tree_add", 4), ("tree_mirror", 4), ("bitonic_sort", 4), ("tree_copy", 3)],
    )
    def test_parallel_program_computes_same_heap(self, name, depth):
        program, info = load_workload(name, depth)
        sequential = run_program(program, info)
        result, par_info = parallelized(name, depth)
        parallel = run_program(result.program, par_info)
        assert parallel.race_free, [str(r) for r in parallel.races]
        # Same reachable structures from main's handle variables.
        for variable, value in sequential.main_locals.items():
            par_value = parallel.main_locals[variable]
            if hasattr(value, "node_id") or value is None:
                seq_tree = sequential.heap.extract(value) if value is not None else None
                par_tree = parallel.heap.extract(par_value) if par_value is not None else None
                assert seq_tree == par_tree, variable
            else:
                assert value == par_value, variable

    def test_parallel_version_reduces_span(self):
        program, info = load_workload("add_and_reverse", 5)
        sequential = run_program(program, info)
        result, par_info = parallelized("add_and_reverse", 5)
        parallel = run_program(result.program, par_info)
        assert parallel.span < sequential.span
        assert parallel.work == pytest.approx(sequential.work, rel=0.01)

    def test_bitonic_sort_still_sorts(self):
        result, par_info = parallelized("bitonic_sort", 5)
        execution = run_program(result.program, par_info)
        heap, root = execution.heap, execution.main_locals["root"]
        leaves = []

        def collect(ref):
            node = heap.node(ref)
            if node.left is None:
                leaves.append(node.value)
            else:
                collect(node.left)
                collect(node.right)

        collect(root)
        assert leaves == sorted(leaves)
        assert execution.race_free


class TestBaselines:
    @staticmethod
    def _has_parallel_recursive_calls(result, procedure):
        """Does the transformed procedure run two calls on sub-trees in parallel?"""
        proc = result.program.callable(procedure)
        for group in parallel_groups_in(proc):
            calls = [b for b in group.branches if is_call(b)]
            if len(calls) >= 2 and any(
                isinstance(arg, ast.Name) for call in calls for arg in call.args
            ):
                return True
        return False

    def test_conservative_finds_less_parallelism(self):
        program, info = load_workload("add_and_reverse", 4)
        paper = parallelize_program(program, info)
        conservative = parallelize_program(program, info, oracle=ConservativeOracle())
        # The headline result: only the path-matrix oracle parallelizes the
        # recursive calls on the two sub-trees.
        assert self._has_parallel_recursive_calls(paper, "add_n")
        assert not self._has_parallel_recursive_calls(conservative, "add_n")
        assert not self._has_parallel_recursive_calls(conservative, "reverse")
        assert conservative.stats.groups < paper.stats.groups

    def test_region_oracle_between_conservative_and_paper(self):
        program, info = load_workload("add_and_reverse", 4)
        paper = parallelize_program(program, info)
        region = parallelize_program(program, info, oracle=RegionOracle())
        conservative = parallelize_program(program, info, oracle=ConservativeOracle())
        # Regions cannot split one tree into its two sub-trees (the paper's
        # critique of effect systems).
        assert not self._has_parallel_recursive_calls(region, "add_n")
        assert not self._has_parallel_recursive_calls(region, "main")
        assert self._has_parallel_recursive_calls(paper, "main")
        assert conservative.stats.groups <= region.stats.groups <= paper.stats.groups

    def test_region_oracle_parallelizes_disjoint_trees(self):
        source = """
        program p
        procedure main()
          first, second: handle
        begin
          first := new();
          second := new();
          bump(first);
          bump(second)
        end
        procedure bump(h: handle)
        begin
          h.value := h.value + 1
        end
        """
        program, info = parse_and_normalize(source)
        region = parallelize_program(program, info, oracle=RegionOracle())
        assert region.stats.call_groups == 1
        conservative = parallelize_program(program, info, oracle=ConservativeOracle())
        assert conservative.stats.call_groups == 0

    def test_baseline_parallelization_is_still_race_free(self):
        program, info = load_workload("add_and_reverse", 4)
        for oracle in (ConservativeOracle(), RegionOracle()):
            result = parallelize_program(program, info, oracle=oracle)
            execution = run_program(result.program, check_program(result.program))
            assert execution.race_free

    def test_oracle_names(self):
        assert ConservativeOracle().name == "conservative"
        assert RegionOracle().name == "region-effects"
        assert PathMatrixOracle().name == "path-matrix"


class TestSpeedupModel:
    def test_greedy_time_bounds(self):
        assert greedy_time(100, 10, 1) == 100
        assert greedy_time(100, 10, 4) == 25
        assert greedy_time(100, 10, 1000) == 10
        assert greedy_time(100, 10, None) == 10

    def test_greedy_time_validation(self):
        with pytest.raises(ValueError):
            greedy_time(-1, 0, 1)
        with pytest.raises(ValueError):
            greedy_time(10, 1, 0)

    def test_build_report_rows(self):
        program, info = load_workload("add_and_reverse", 4)
        sequential = run_program(program, info)
        result, par_info = parallelized("add_and_reverse", 4)
        parallel = run_program(result.program, par_info)
        report = build_report("test", sequential, parallel, processors=(1, 2, 4))
        assert report.row(1).speedup == pytest.approx(1.0, rel=0.05)
        assert report.row(None).speedup == report.max_speedup
        assert report.max_speedup > 1.5
        assert report.race_free
        table = report.format_table()
        assert "speedup" in table and "inf" in table

    def test_speedup_monotone_in_processors(self):
        program, info = load_workload("tree_add", 6)
        sequential = run_program(program, info)
        result, par_info = parallelized("tree_add", 6)
        parallel = run_program(result.program, par_info)
        report = build_report("tree_add", sequential, parallel)
        speedups = [row.speedup for row in report.rows]
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
