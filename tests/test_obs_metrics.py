"""Shard-mergeable metrics: exact merges, bucket quantiles, determinism.

The registry's one load-bearing promise is the same one
``AnalysisStats``/``WideningTally`` already keep: **sharded ==
single-process, bit for bit**.  These tests pin the three mechanisms that
promise rests on —

* integer-only storage, so every merge is exact integer addition;
* quantiles derived from fixed bucket boundaries, so a merge of shard
  histograms reports exactly the quantiles one process observing the
  union would report;
* canonical snapshots (key-sorted minified JSON), compared byte for byte
  for a real suite run at 1, 2 and 4 shards — and across subprocesses
  with different ``PYTHONHASHSEED`` values, mirroring
  ``test_cache_determinism.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    latency_tails,
    render_prometheus,
)
from repro.workloads.suite import ShardedSuiteRunner, source


def _deterministic(registry: MetricsRegistry) -> MetricsRegistry:
    """Strip wall-clock metrics; what's left must be shard-count-invariant."""
    return registry.filtered(lambda name: not name.endswith("_seconds"))


class TestInstruments:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", op="ping").inc()
        registry.counter("requests_total", op="ping").inc(2)
        registry.gauge("inflight").set(4)
        registry.gauge("inflight").dec()
        snapshot = registry.as_dict()
        assert snapshot["counters"]["requests_total{op=ping}"]["value"] == 3
        assert snapshot["gauges"]["inflight"]["value"] == 3

    def test_histogram_buckets_and_overflow(self):
        histogram = Histogram("h", boundaries=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 5.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.count == 4
        # sum is kept in integer nanoseconds: exact.
        assert histogram.sum_ns == 500_000 + 5_000_000 + 50_000_000 + 5_000_000_000

    def test_histogram_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(2.0, 1.0))

    def test_redeclared_boundaries_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", (1.0, 3.0))

    def test_count_histogram_is_exact_for_integers(self):
        histogram = Histogram("pops", boundaries=DEFAULT_COUNT_BUCKETS)
        histogram.observe(12345)
        assert histogram.sum_ns == 12345 * 10**9


class TestQuantiles:
    def test_interpolation_inside_bucket(self):
        histogram = Histogram("h", boundaries=(0.0, 1.0))
        for _ in range(4):
            histogram.observe(0.5)
        # All mass in (0, 1]: the median interpolates to the bucket midpoint.
        assert histogram.quantile(0.5) == 0.5
        assert histogram.quantile(1.0) == 1.0

    def test_overflow_clamps_to_last_boundary(self):
        histogram = Histogram("h", boundaries=(1.0, 2.0))
        histogram.observe(50.0)
        assert histogram.quantile(0.5) == 2.0

    def test_empty_histogram(self):
        assert Histogram("h").quantile(0.99) == 0.0
        assert Histogram("h").mean() == 0.0

    def test_merged_quantiles_equal_union_quantiles(self):
        shard_a = MetricsRegistry()
        shard_b = MetricsRegistry()
        union = Histogram("h", DEFAULT_LATENCY_BUCKETS)
        for value in (0.0002, 0.003, 0.04, 0.8):
            shard_a.histogram("h").observe(value)
            union.observe(value)
        for value in (0.0007, 0.02, 0.3, 7.0, 0.0001):
            shard_b.histogram("h").observe(value)
            union.observe(value)
        (merged,) = shard_a.merge(shard_b).histograms("h")
        for q in (0.5, 0.9, 0.99):
            assert merged.quantile(q) == union.quantile(q)
        assert merged.sum_ns == union.sum_ns


class TestSnapshots:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("a_total").inc(7)
        registry.counter("b_total", op="x").inc(1)
        registry.gauge("level").set(-2)
        registry.histogram("h_seconds", workload="w").observe(0.004)
        return registry

    def test_roundtrip_is_canonical_identical(self):
        registry = self._populated()
        clone = MetricsRegistry.from_dict(registry.as_dict())
        assert clone.canonical() == registry.canonical()

    def test_json_roundtrip(self):
        registry = self._populated()
        clone = MetricsRegistry.from_dict(json.loads(json.dumps(registry.as_dict())))
        assert clone.canonical() == registry.canonical()

    def test_absorb_sums_everything(self):
        merged = self._populated().merge(self._populated())
        snapshot = merged.as_dict()
        assert snapshot["counters"]["a_total"]["value"] == 14
        assert snapshot["gauges"]["level"]["value"] == -4
        assert snapshot["histograms"]["h_seconds{workload=w}"]["count"] == 2

    def test_filtered_drops_by_name(self):
        registry = self._populated()
        survivor = registry.filtered(lambda name: not name.endswith("_seconds"))
        assert survivor.histograms() == []
        assert survivor.as_dict()["counters"]["a_total"]["value"] == 7

    def test_latency_tails_rows_and_overall(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", workload="fast").observe(0.001)
        registry.histogram("h_seconds", workload="slow").observe(1.0)
        tails = latency_tails(registry, "h_seconds", "workload")
        assert list(tails) == ["fast", "slow", "_overall"]
        assert tails["_overall"]["count"] == 2
        for row in tails.values():
            assert set(row) == {
                "count", "p50_seconds", "p90_seconds", "p99_seconds", "mean_seconds",
            }

    def test_prometheus_rendering(self):
        text = render_prometheus(self._populated())
        assert "# TYPE a_total counter" in text
        assert "b_total{op=\"x\"} 1" in text
        assert "# TYPE h_seconds histogram" in text
        assert 'h_seconds_bucket{workload="w",le="+Inf"} 1' in text
        assert 'h_seconds_count{workload="w"} 1' in text


class TestShardMergeDeterminism:
    """Sharded metrics == single-process metrics, bit for bit."""

    NAMES = ["add_and_reverse", "tree_add", "bst_build", "list_walk",
             "tree_mirror", "bitonic_sort"]

    def _canonical(self, shards: int) -> str:
        items = [(name, source(name, depth=3)) for name in self.NAMES]
        report = ShardedSuiteRunner(items, shards=shards).run()
        assert not report.failures
        return _deterministic(report.metrics).canonical()

    def test_two_and_four_shards_match_single_process(self):
        single = self._canonical(1)
        assert self._canonical(2) == single
        assert self._canonical(4) == single


#: Runs one sharded suite and prints the canonical deterministic snapshot
#: digest; launched under controlled PYTHONHASHSEED values.
_WORKER = """
import hashlib, json, sys
sys.path.insert(0, {src!r})

from repro.workloads.suite import ShardedSuiteRunner, source

names = ["add_and_reverse", "tree_add", "bst_build", "list_walk"]
report = ShardedSuiteRunner(
    [(name, source(name, depth=3)) for name in names], shards=2
).run()
assert not report.failures
canonical = report.metrics.filtered(
    lambda name: not name.endswith("_seconds")).canonical()
print(json.dumps({{
    "digest": hashlib.sha256(canonical.encode()).hexdigest(),
    "instruments": len(report.metrics),
}}, sort_keys=True))
"""


def _run_worker(hash_seed: str) -> dict:
    environment = dict(os.environ, PYTHONHASHSEED=hash_seed)
    completed = subprocess.run(
        [sys.executable, "-c", _WORKER.format(src=SRC)],
        capture_output=True,
        text=True,
        env=environment,
        check=True,
    )
    return json.loads(completed.stdout)


class TestHashSeedIndependence:
    def test_metrics_identical_across_hash_seeds(self):
        first = _run_worker("0")
        second = _run_worker("12345")
        assert first["instruments"] > 0
        assert first == second
