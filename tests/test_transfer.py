"""Unit tests for the per-statement transfer functions (Section 4)."""

import pytest

from repro.analysis.matrix import PathMatrix
from repro.analysis.pathset import PathSet
from repro.analysis.transfer import (
    apply_assign_new,
    apply_assign_nil,
    apply_basic_statement,
    apply_copy,
    apply_load_field,
    apply_store_field,
)
from repro.sil import ast
from repro.sil.ast import Field


def figure2_initial():
    matrix = PathMatrix(["a", "b", "c"])
    matrix.set("a", "b", PathSet.parse("L1L+L1"))
    matrix.set("a", "c", PathSet.parse("R1D+"))
    return matrix


class TestNilNewCopy:
    def test_assign_nil_clears_relationships(self):
        matrix = figure2_initial()
        result = apply_assign_nil(matrix, "a")
        assert result.get("a", "b").is_empty and result.get("a", "c").is_empty
        assert "a" in result

    def test_assign_new_clears_relationships(self):
        matrix = figure2_initial()
        result = apply_assign_new(matrix, "c")
        assert result.get("a", "c").is_empty
        assert result.get("a", "b").format() == "L3+"

    def test_assign_does_not_mutate_input(self):
        matrix = figure2_initial()
        apply_assign_nil(matrix, "a")
        assert matrix.get("a", "b").format() == "L3+"

    def test_copy_aliases_source(self):
        matrix = figure2_initial()
        result = apply_copy(matrix, "d", "a")
        assert result.must_alias("d", "a")
        assert result.get("d", "b") == matrix.get("a", "b")
        assert result.get("d", "c") == matrix.get("a", "c")

    def test_copy_overwrites_old_relationships(self):
        matrix = figure2_initial()
        step1 = apply_copy(matrix, "d", "a")
        step2 = apply_copy(step1, "d", "b")
        assert step2.must_alias("d", "b")
        assert not step2.must_alias("d", "a")
        # d now sits where b sits: below a.
        assert step2.get("a", "d").format() == "L3+"

    def test_copy_to_itself_is_identity(self):
        matrix = figure2_initial()
        assert apply_copy(matrix, "a", "a") == matrix

    def test_copy_inherits_incoming_paths(self):
        matrix = figure2_initial()
        result = apply_copy(matrix, "d", "c")
        assert result.get("a", "d").format() == "R1D+"


class TestLoadField:
    """Figure 2 of the paper, statement by statement."""

    def test_paths_into_the_new_handle(self):
        matrix = apply_load_field(figure2_initial(), "d", "a", Field.RIGHT)
        assert matrix.get("a", "d").format() == "R1"

    def test_left_cancellation_gives_descendant_relation(self):
        matrix = apply_load_field(figure2_initial(), "d", "a", Field.RIGHT)
        assert matrix.get("d", "c").format() == "D+"
        assert matrix.get("d", "b").is_empty

    def test_second_load_introduces_possible_paths(self):
        step1 = apply_load_field(figure2_initial(), "d", "a", Field.RIGHT)
        step2 = apply_load_field(step1, "e", "d", Field.LEFT)
        assert step2.get("a", "e").format() == "R1L1"
        assert step2.get("d", "e").format() == "L1"
        assert step2.get("e", "c").format() == "S?, D+?"

    def test_original_entries_preserved(self):
        matrix = apply_load_field(figure2_initial(), "d", "a", Field.RIGHT)
        assert matrix.get("a", "b").format() == "L3+"
        assert matrix.get("a", "c").format() == "R1D+"

    def test_self_load_walks_down(self):
        matrix = PathMatrix(["h", "l"])
        matrix.set("h", "l", PathSet.same())
        matrix.set("l", "h", PathSet.same())
        result = apply_load_field(matrix, "l", "l", Field.LEFT)
        assert result.get("h", "l").format() == "L1"
        assert result.get("l", "h").is_empty

    def test_load_from_unrelated_handle(self):
        matrix = PathMatrix(["a", "b"])
        result = apply_load_field(matrix, "c", "b", Field.LEFT)
        assert result.get("b", "c").format() == "L1"
        assert result.get("a", "c").is_empty
        assert result.get("c", "a").is_empty

    def test_load_overwrites_previous_binding(self):
        matrix = PathMatrix(["a", "b"])
        matrix.set("a", "b", PathSet.parse("L1"))
        result = apply_load_field(matrix, "b", "a", Field.RIGHT)
        assert result.get("a", "b").format() == "R1"


class TestStoreField:
    def test_linking_fresh_node_adds_definite_path(self):
        matrix = PathMatrix(["t", "c"])
        result = apply_store_field(matrix, "t", Field.LEFT, "c")
        assert result.matrix.get("t", "c").format() == "L1"
        assert result.diagnostics == []

    def test_composite_paths_through_new_edge(self):
        matrix = PathMatrix(["root", "t", "c"])
        matrix.set("root", "t", PathSet.parse("L1"))
        matrix.set("c", "x", PathSet.parse("R1"))
        result = apply_store_field(matrix, "t", Field.RIGHT, "c").matrix
        assert result.get("root", "c").format() == "L1R1"
        assert result.get("root", "x").format() == "L1R2"
        assert result.get("t", "x").format() == "R2"

    def test_old_paths_through_overwritten_field_are_demoted(self):
        matrix = PathMatrix(["h", "l", "r"])
        matrix.set("h", "l", PathSet.parse("L1"))
        matrix.set("h", "r", PathSet.parse("R1"))
        result = apply_store_field(matrix, "h", Field.LEFT, "r").matrix
        assert result.get("h", "l").format() == "L1?"
        # The new edge is definite; the old right edge is untouched.
        rendered = result.get("h", "r").format()
        assert "L1" in rendered and "R1" in rendered

    def test_unrelated_entries_untouched_by_demotion(self):
        matrix = PathMatrix(["h", "l", "other", "x"])
        matrix.set("h", "l", PathSet.parse("L1"))
        matrix.set("other", "x", PathSet.parse("R1"))
        result = apply_store_field(matrix, "h", Field.LEFT, None).matrix
        assert result.get("other", "x").format() == "R1"
        assert result.get("h", "l").format() == "L1?"

    def test_store_nil_adds_no_paths(self):
        matrix = PathMatrix(["h", "l"])
        matrix.set("h", "l", PathSet.parse("L1"))
        result = apply_store_field(matrix, "h", Field.LEFT, None).matrix
        assert result.get("h", "l").format() == "L1?"
        assert result.get("l", "h").is_empty

    def test_cycle_detection_definite(self):
        matrix = PathMatrix(["a", "b"])
        matrix.set("b", "a", PathSet.parse("L1"))
        result = apply_store_field(matrix, "a", Field.LEFT, "b")
        cycles = [d for d in result.diagnostics if d.is_cycle]
        assert len(cycles) == 1
        assert cycles[0].certainty.value == "definite"

    def test_cycle_detection_possible(self):
        matrix = PathMatrix(["a", "b"])
        matrix.set("b", "a", PathSet.parse("D+?"))
        result = apply_store_field(matrix, "a", Field.RIGHT, "b")
        cycles = [d for d in result.diagnostics if d.is_cycle]
        assert len(cycles) == 1
        assert cycles[0].certainty.value == "possible"

    def test_self_link_is_definite_cycle(self):
        matrix = PathMatrix(["a"])
        result = apply_store_field(matrix, "a", Field.LEFT, "a")
        assert any(d.is_cycle and d.certainty.value == "definite" for d in result.diagnostics)

    def test_sharing_detection(self):
        matrix = PathMatrix(["x", "y", "shared"])
        matrix.set("x", "shared", PathSet.parse("L1"))
        result = apply_store_field(matrix, "y", Field.RIGHT, "shared")
        sharing = [d for d in result.diagnostics if d.is_sharing]
        assert len(sharing) == 1
        assert "shared" in sharing[0].detail

    def test_no_diagnostics_for_fresh_child(self):
        matrix = PathMatrix(["parent", "fresh"])
        result = apply_store_field(matrix, "parent", Field.LEFT, "fresh")
        assert result.diagnostics == []


class TestDispatcher:
    def test_value_statements_do_not_change_matrix(self):
        matrix = figure2_initial()
        for stmt in (
            ast.LoadValue(target="x", source="a"),
            ast.StoreValue(target="a", expr=ast.IntLit(1)),
            ast.ScalarAssign(target="x", expr=ast.IntLit(2)),
        ):
            assert apply_basic_statement(matrix, stmt).matrix == matrix

    def test_dispatch_load_field(self):
        stmt = ast.LoadField(target="d", source="a", field_name=Field.RIGHT)
        result = apply_basic_statement(figure2_initial(), stmt)
        assert result.matrix.get("a", "d").format() == "R1"

    def test_dispatch_store_field_reports_diagnostics(self):
        matrix = PathMatrix(["a"])
        stmt = ast.StoreField(target="a", field_name=Field.LEFT, source="a")
        result = apply_basic_statement(matrix, stmt)
        assert result.diagnostics

    def test_dispatch_rejects_non_basic(self):
        with pytest.raises(TypeError):
            apply_basic_statement(PathMatrix(), ast.ProcCall(name="p", args=[]))
