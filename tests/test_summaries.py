"""Unit tests for procedure summaries (read-only vs. update arguments)."""

import pytest

from repro.analysis.summaries import compute_summaries
from repro.sil.normalize import parse_and_normalize
from repro.workloads import load


def summaries_of(source):
    program, info = parse_and_normalize(source)
    return compute_summaries(program, info)


class TestAddAndReverse:
    def test_add_n_is_update_but_not_structural(self):
        program, info = load("add_and_reverse", depth=3)
        summaries = compute_summaries(program, info)
        add_n = summaries["add_n"]
        assert add_n.update_params == {"h"}
        assert add_n.readonly_params() == []
        assert not add_n.modifies_links

    def test_reverse_modifies_links(self):
        program, info = load("add_and_reverse", depth=3)
        summaries = compute_summaries(program, info)
        reverse = summaries["reverse"]
        assert reverse.update_params == {"h"}
        assert reverse.modifies_links

    def test_build_returns_fresh_structure(self):
        program, info = load("add_and_reverse", depth=3)
        summaries = compute_summaries(program, info)
        build = summaries["build"]
        assert build.result_may_be_fresh
        assert build.result_derived_from == set()


class TestClassification:
    def test_pure_reader_is_readonly(self):
        summaries = summaries_of(
            """
            program p
            procedure main() h: handle; x: int begin h := new(); x := peek(h) end
            function peek(t: handle): int r: int; c: handle
            begin r := t.value; c := t.left; if c <> nil then r := r + peek(c) end
            return (r)
            """
        )
        assert summaries["peek"].readonly_params() == ["t"]
        assert not summaries["peek"].modifies_links

    def test_value_writer_is_update_without_links(self):
        summaries = summaries_of(
            """
            program p
            procedure main() h: handle begin h := new(); bump(h) end
            procedure bump(t: handle) begin t.value := t.value + 1 end
            """
        )
        assert summaries["bump"].update_params == {"t"}
        assert not summaries["bump"].modifies_links

    def test_update_through_derived_handle(self):
        summaries = summaries_of(
            """
            program p
            procedure main() h: handle begin h := new(); h.left := new(); poke(h) end
            procedure poke(t: handle) c: handle begin c := t.left; c.value := 1 end
            """
        )
        assert summaries["poke"].update_params == {"t"}

    def test_update_propagates_through_calls(self):
        summaries = summaries_of(
            """
            program p
            procedure main() h: handle begin h := new(); outer(h) end
            procedure outer(a: handle) begin inner(a) end
            procedure inner(b: handle) begin b.value := 1 end
            """
        )
        assert summaries["outer"].update_params == {"a"}
        assert summaries["inner"].update_params == {"b"}

    def test_modifies_links_propagates_through_calls(self):
        summaries = summaries_of(
            """
            program p
            procedure main() h: handle begin h := new(); outer(h) end
            procedure outer(a: handle) begin chop(a) end
            procedure chop(b: handle) begin b.left := nil end
            """
        )
        assert summaries["outer"].modifies_links
        assert summaries["chop"].update_params == {"b"}

    def test_one_of_two_params_updated(self):
        summaries = summaries_of(
            """
            program p
            procedure main() a, b: handle begin a := new(); b := new(); move(a, b) end
            procedure move(source, target: handle) v: int
            begin v := source.value; target.value := v end
            """
        )
        move = summaries["move"]
        assert move.update_params == {"target"}
        assert move.readonly_params() == ["source"]

    def test_mutually_recursive_procedures_reach_fixed_point(self):
        summaries = summaries_of(
            """
            program p
            procedure main() h: handle begin h := new(); even(h) end
            procedure even(a: handle) c: handle
            begin c := a.left; if c <> nil then odd(c) end
            procedure odd(b: handle) c: handle
            begin b.value := 1; c := b.left; if c <> nil then even(c) end
            """
        )
        # even writes nothing itself but calls odd on a node derived from a.
        assert summaries["even"].update_params == {"a"}
        assert summaries["odd"].update_params == {"b"}


class TestFunctionResults:
    def test_result_derived_from_argument(self):
        summaries = summaries_of(
            """
            program p
            procedure main() h, t: handle begin h := new(); h.left := new(); t := leftmost(h) end
            function leftmost(a: handle): handle r, c: handle
            begin r := a; c := a.left; if c <> nil then r := leftmost(c) end
            return (r)
            """
        )
        leftmost = summaries["leftmost"]
        assert leftmost.result_derived_from == {"a"}

    def test_fresh_result(self):
        program, info = load("tree_copy", depth=3)
        summaries = compute_summaries(program, info)
        assert summaries["copy"].result_may_be_fresh
        # copy reads its argument but never writes through it.
        assert summaries["copy"].readonly_params() == ["h"]
        assert summaries["copy"].modifies_links  # it links freshly built nodes

    def test_bitonic_cmpswap_updates_both(self):
        program, info = load("bitonic_sort", depth=3)
        summaries = compute_summaries(program, info)
        assert summaries["cmpswap"].update_params == {"a", "b"}
        assert summaries["bisort"].update_params == {"t"}
        assert not summaries["cmpswap"].modifies_links
