"""Unit tests for the runtime TREE/DAG/CYCLIC classifier."""

import pytest

from repro.runtime.heap import Heap
from repro.runtime.structure import (
    StructureKind,
    classify_structure,
    is_dag,
    is_tree,
    subtrees_disjoint,
)
from repro.sil.ast import Field


class TestClassification:
    def test_empty_structure_is_tree(self):
        heap = Heap()
        report = classify_structure(heap, [None])
        assert report.is_tree and report.node_count == 0

    def test_single_node_is_tree(self):
        heap = Heap()
        root = heap.allocate()
        assert is_tree(heap, root)

    def test_full_tree_is_tree(self):
        heap = Heap()
        root = heap.build_full_tree(5)
        report = classify_structure(heap, [root])
        assert report.kind is StructureKind.TREE
        assert report.node_count == 31
        assert report.shared_nodes == []
        assert report.cycle is None

    def test_shared_node_makes_dag(self):
        heap = Heap()
        a, b, shared = heap.allocate(), heap.allocate(), heap.allocate()
        root = heap.allocate()
        heap.write_link(root, Field.LEFT, a)
        heap.write_link(root, Field.RIGHT, b)
        heap.write_link(a, Field.LEFT, shared)
        heap.write_link(b, Field.RIGHT, shared)
        report = classify_structure(heap, [root])
        assert report.kind is StructureKind.DAG
        assert report.shared_nodes == [shared.node_id]
        assert is_dag(heap, root)
        assert not is_tree(heap, root)

    def test_double_edge_from_same_parent_is_dag(self):
        heap = Heap()
        parent, child = heap.allocate(), heap.allocate()
        heap.write_link(parent, Field.LEFT, child)
        heap.write_link(parent, Field.RIGHT, child)
        report = classify_structure(heap, [parent])
        assert report.kind is StructureKind.DAG

    def test_self_loop_is_cyclic(self):
        heap = Heap()
        node = heap.allocate()
        heap.write_link(node, Field.LEFT, node)
        report = classify_structure(heap, [node])
        assert report.kind is StructureKind.CYCLIC
        assert report.cycle is not None

    def test_long_cycle_detected(self):
        heap = Heap()
        nodes = [heap.allocate() for _ in range(5)]
        for first, second in zip(nodes, nodes[1:]):
            heap.write_link(first, Field.LEFT, second)
        heap.write_link(nodes[-1], Field.RIGHT, nodes[0])
        report = classify_structure(heap, [nodes[0]])
        assert report.is_cyclic
        assert set(report.cycle[:-1]) == {n.node_id for n in nodes}

    def test_classification_restricted_to_reachable_nodes(self):
        heap = Heap()
        tree_root = heap.build_full_tree(3)
        # An unrelated cyclic blob elsewhere in the heap must not matter.
        a, b = heap.allocate(), heap.allocate()
        heap.write_link(a, Field.LEFT, b)
        heap.write_link(b, Field.LEFT, a)
        assert is_tree(heap, tree_root)

    def test_multiple_roots_sharing_is_dag(self):
        heap = Heap()
        shared = heap.build((5, 1, 2))
        first, second = heap.allocate(), heap.allocate()
        heap.write_link(first, Field.LEFT, shared)
        heap.write_link(second, Field.LEFT, shared)
        report = classify_structure(heap, [first, second])
        assert report.kind is StructureKind.DAG

    def test_report_flags(self):
        heap = Heap()
        root = heap.build_full_tree(2)
        report = classify_structure(heap, [root])
        assert report.is_tree and not report.is_dag and not report.is_cyclic


class TestDisjointness:
    def test_siblings_of_a_tree_are_disjoint(self):
        heap = Heap()
        root = heap.build_full_tree(4)
        node = heap.node(root)
        assert subtrees_disjoint(heap, node.left, node.right)

    def test_overlapping_subtrees_detected(self):
        heap = Heap()
        root = heap.build_full_tree(3)
        node = heap.node(root)
        assert not subtrees_disjoint(heap, root, node.left)

    def test_nil_subtree_is_disjoint_from_everything(self):
        heap = Heap()
        root = heap.build_full_tree(2)
        assert subtrees_disjoint(heap, None, root)
