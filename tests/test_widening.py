"""Widening telemetry, limit-boundary behavior, and adaptive analysis limits.

Covers the per-context widening counters that replaced the old
process-global ``segment_truncation_count``:

* exact boundary behavior of every ``AnalysisLimits`` bound in ``paths.py``
  / ``pathset.py`` (at the limit: untouched; one past it: widened, counted);
* the transfer cache *replaying* captured widening counts on hits, so the
  counters read identically whether a transfer was computed or memoized;
* the ``AnalysisLimits.adaptive`` escalation ladder re-running a program
  with stepped-up bounds when widening fires, recording the final rung.
"""

import pytest

from repro.analysis import (
    AdaptiveLimits,
    AnalysisLimits,
    BatchAnalyzer,
    WideningTally,
    analyze_program,
    analyze_program_adaptive,
    widening_scope,
)
from repro.analysis.context import AnalysisStats
from repro.analysis.matrix import PathMatrix
from repro.analysis.paths import Direction, Path, PathSegment, make_path, parse_path
from repro.analysis.pathset import PathSet
from repro.analysis.transfer import TransferCache, apply_basic_statement_cached
from repro.sil import ast
from repro.workloads import load

LIMITS = AnalysisLimits()  # the defaults: k=8, segments=4, paths/entry=8


def seg(direction, count, exact=True):
    return PathSegment(Direction(direction), count, exact)


class TestSegmentBoundaries:
    def test_exact_count_at_limit_is_untouched(self):
        with widening_scope(WideningTally()) as tally:
            path = make_path([seg("L", LIMITS.max_exact_count)], limits=LIMITS)
        assert path == parse_path(f"L{LIMITS.max_exact_count}")
        assert path.segments[0].exact
        assert not tally.fired

    def test_exact_count_one_past_limit_widens_to_open(self):
        with widening_scope(WideningTally()) as tally:
            path = make_path([seg("L", LIMITS.max_exact_count + 1)], limits=LIMITS)
        assert path == parse_path(f"L{LIMITS.max_exact_count}+")
        assert not path.segments[0].exact
        assert tally.exact_widenings == 1
        assert tally.segment_collapses == 0

    def test_open_count_clamps_at_max_open_count(self):
        with widening_scope(WideningTally()) as tally:
            path = make_path(
                [seg("R", LIMITS.max_open_count + 3, exact=False)], limits=LIMITS
            )
        assert path.segments[0].count == LIMITS.max_open_count
        assert not path.segments[0].exact
        # Clamping an already-open count loses no exactness: it is not one
        # of the counted widening events.
        assert not tally.fired

    def test_path_at_max_segments_is_untouched(self):
        segments = [seg("LRLR"[i % 4], 1) for i in range(LIMITS.max_segments)]
        with widening_scope(WideningTally()) as tally:
            path = make_path(segments, limits=LIMITS)
        assert len(path.segments) == LIMITS.max_segments
        assert not tally.fired

    def test_path_exactly_one_segment_too_long_collapses_tail(self):
        segments = [seg("LRLRL"[i % 5], 1) for i in range(LIMITS.max_segments + 1)]
        with widening_scope(WideningTally()) as tally:
            path = make_path(segments, limits=LIMITS)
        assert tally.segment_collapses == 1
        assert len(path.segments) <= LIMITS.max_segments
        # The collapsed tail joins L and R into a D segment.
        assert path.segments[-1].direction is Direction.DOWN
        # The collapse is sound: the minimum length is preserved.
        assert path.min_length == LIMITS.max_segments + 1


class TestPathSetCollapseBoundary:
    def make_overfull_set(self, extra=1):
        """``{S?}`` plus ``max_paths_per_entry + extra - 1`` distinct paths."""
        paths = [Path((), False)]
        for count in range(1, LIMITS.max_paths_per_entry + extra):
            paths.append(parse_path(f"L{count}" if count <= 8 else f"R{count - 8}"))
        return PathSet(paths)

    def test_set_at_limit_is_untouched(self):
        full = self.make_overfull_set(extra=0)
        assert len(full) == LIMITS.max_paths_per_entry
        with widening_scope(WideningTally()) as tally:
            assert full.collapse(LIMITS) is full
        assert not tally.fired

    def test_set_one_past_limit_collapses_to_same_plus_descendant(self):
        overfull = self.make_overfull_set(extra=1)
        assert len(overfull) == LIMITS.max_paths_per_entry + 1
        with widening_scope(WideningTally()) as tally:
            collapsed = overfull.collapse(LIMITS)
        assert tally.path_set_collapses == 1
        # The paper's {S?, D+}-style shape: the S member survives separately,
        # every proper path generalizes into one open-ended segment.
        assert collapsed.has_possible_same
        proper = [path for path in collapsed if not path.is_same]
        assert len(proper) == 1
        assert len(proper[0].segments) == 1
        assert not proper[0].segments[0].exact

    def test_collapse_event_is_counted_even_on_memo_hit(self):
        overfull = self.make_overfull_set(extra=1)
        first_result = overfull.collapse(LIMITS)  # populate the memo table
        with widening_scope(WideningTally()) as tally:
            assert overfull.collapse(LIMITS) is first_result
        assert tally.path_set_collapses == 1


class TestTransferCacheReplay:
    def tiny_setup(self):
        limits = AnalysisLimits(max_segments=1)
        matrix = PathMatrix(["x", "b", "a"], limits=limits)
        matrix.set("x", "b", PathSet.parse("L1"))
        stmt = ast.LoadField(target="a", source="b", field_name=ast.Field.RIGHT)
        return limits, matrix, stmt

    def test_hit_replays_the_captured_widening_counts(self):
        limits, matrix, stmt = self.tiny_setup()
        cache = TransferCache(capacity=16)
        computed, replayed = AnalysisStats(), AnalysisStats()
        first = apply_basic_statement_cached(matrix, stmt, limits, cache, computed)
        second = apply_basic_statement_cached(
            matrix.copy(), stmt, limits, cache, replayed
        )
        assert second is first
        assert computed.transfer_cache_misses == 1 and replayed.transfer_cache_hits == 1
        # x→b (L1) extended by the R edge is L1R1: two segments under
        # max_segments=1, so the miss widened — and the hit must report the
        # exact same counts without recomputing anything.
        assert computed.segment_collapses == 1
        assert replayed.widening_counters() == computed.widening_counters()

    def test_miss_events_are_not_double_counted_into_an_outer_scope(self):
        limits, matrix, stmt = self.tiny_setup()
        stats = AnalysisStats()
        with widening_scope(stats):
            apply_basic_statement_cached(matrix, stmt, limits, TransferCache(16), stats)
        assert stats.segment_collapses == 1


class TestIterationGuard:
    def test_loop_safety_net_trip_is_counted(self):
        program, info = load("list_walk", depth=3)
        strangled = AnalysisLimits(max_iterations=1)
        result = analyze_program(program, info, limits=strangled)
        assert result.stats.iteration_guard_trips >= 1

    def test_default_limits_never_trip_on_named_workloads(self):
        for name in ("add_and_reverse", "bst_build", "list_walk", "bitonic_sort"):
            result = analyze_program(*load(name, depth=3))
            assert result.stats.iteration_guard_trips == 0, name

    def test_solver_guard_is_per_program_not_batch_cumulative(self):
        """Regression: the solver's pop bound must use this run's delta.

        A long batch shares one stats object; comparing the *cumulative*
        pop count against the per-program bound made late batch entries
        trip the guard spuriously and return pre-fixed-point results.
        """
        # max_iterations=2 shrinks the per-program bound (16*2*4 = 128 for
        # add_and_reverse's 4 procedures) so ~12-pop runs cross the old
        # cumulative check within a quick loop.
        limits = AnalysisLimits(max_iterations=2)
        batch = BatchAnalyzer(limits=limits)
        program, info = load("add_and_reverse", depth=3)
        reference = analyze_program(program, info, limits=limits)
        for _ in range(20):
            last = batch.analyze(program, info)
        assert batch.stats.worklist_pops > 128  # the old guard would have hit
        assert batch.stats.iteration_guard_trips == 0
        assert last.canonical() == reference.canonical()


class TestAdaptiveLimits:
    TINY = AnalysisLimits(
        max_exact_count=1, max_open_count=1, max_segments=2, max_paths_per_entry=2
    )

    def test_ladder_steps_every_domain_bound(self):
        policy = AnalysisLimits.adaptive(self.TINY, growth=2, max_steps=2)
        assert isinstance(policy, AdaptiveLimits)
        rungs = policy.ladder()
        assert len(rungs) == 3
        assert rungs[0] == self.TINY
        assert rungs[1].max_segments == 4 and rungs[2].max_segments == 8
        assert rungs[1].max_paths_per_entry == 4
        # The iteration safety net steps up too (a guard-trip-triggered
        # escalation must be able to clear its own trigger); only the
        # memory knob stays fixed.
        assert rungs[1].max_iterations == 2 * self.TINY.max_iterations
        assert rungs[2].transfer_cache_size == self.TINY.transfer_cache_size

    def test_escalates_when_widening_fires_and_records_final_limits(self):
        program, info = load("add_and_reverse", depth=3)
        policy = AnalysisLimits.adaptive(self.TINY, growth=2, max_steps=2)
        result = analyze_program_adaptive(program, info, policy=policy)
        assert result.stats.adaptive_escalations >= 1
        assert result.limits != self.TINY
        assert result.limits in policy.ladder()

    def test_no_escalation_when_nothing_widens(self):
        program, info = load("swap_children", depth=3)
        result = analyze_program_adaptive(
            program, info, policy=AnalysisLimits.adaptive()
        )
        assert result.stats.adaptive_escalations == 0
        assert result.limits == AnalysisLimits()

    def test_escalated_result_equals_direct_run_at_the_final_rung(self):
        """Escalation is pure re-analysis: same answer as starting there."""
        program, info = load("add_and_reverse", depth=3)
        policy = AnalysisLimits.adaptive(self.TINY, growth=2, max_steps=2)
        adaptive = analyze_program_adaptive(program, info, policy=policy)
        direct = analyze_program(program, info, limits=adaptive.limits)
        assert adaptive.canonical() == direct.canonical()

    def test_batch_analyzer_counts_programs_not_attempts(self):
        batch = BatchAnalyzer(limits=AnalysisLimits.adaptive(self.TINY))
        for name in ("add_and_reverse", "tree_add"):
            batch.analyze(*load(name, depth=3))
        assert batch.stats.programs_analyzed == 2
        assert batch.stats.adaptive_escalations >= 1

    def test_ladder_stops_when_widening_stops_improving(self):
        """Convergence widening at a higher rung must not burn every rung.

        ``list_walk``'s loop fixed point widens the same way at any bound
        (it is the domain's convergence mechanism): after one exploratory
        escalation shows no reduction, the ladder stops early instead of
        re-analyzing ``max_steps`` times for nothing.
        """
        program, info = load("list_walk", depth=3)
        policy = AnalysisLimits.adaptive(growth=2, max_steps=4)
        result = analyze_program_adaptive(program, info, policy=policy)
        assert result.stats.adaptive_escalations <= 1
        assert result.limits in policy.ladder()[:2]

    def test_policy_is_picklable_for_shard_payloads(self):
        import pickle

        policy = AnalysisLimits.adaptive(self.TINY, growth=3, max_steps=1)
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestStatsRoundTrip:
    def test_merge_after_round_trip_recomputes_hit_rate_from_raw_counts(self):
        """Satellite regression: the rounded rate in ``as_dict`` is advisory.

        ``transfer_cache_hit_rate`` is rounded to 4 places in the snapshot;
        rebuilding via ``from_dict`` and merging must recompute the rate
        from the raw hit/miss counters, not average the rounded field.
        """
        first = AnalysisStats(transfer_cache_hits=1, transfer_cache_misses=2)
        second = AnalysisStats(transfer_cache_hits=2, transfer_cache_misses=1)
        rebuilt_first = AnalysisStats.from_dict(first.as_dict())
        rebuilt_second = AnalysisStats.from_dict(second.as_dict())
        merged = rebuilt_first.merge(rebuilt_second)
        assert merged.transfer_cache_hits == 3 and merged.transfer_cache_misses == 3
        # Exactly 0.5 — not the 0.33335 mean of the two rounded snapshots.
        assert merged.transfer_cache_hit_rate == 0.5
        assert first.as_dict()["transfer_cache_hit_rate"] == pytest.approx(0.3333)

    def test_widening_counters_survive_the_round_trip_and_merge(self):
        stats = AnalysisStats(
            segment_collapses=3,
            exact_widenings=2,
            path_set_collapses=7,
            iteration_guard_trips=1,
            adaptive_escalations=4,
        )
        rebuilt = AnalysisStats.from_dict(stats.as_dict())
        assert rebuilt == stats
        doubled = rebuilt.merge(rebuilt)
        assert doubled.widening_counters() == {
            "segment_collapses": 6,
            "exact_widenings": 4,
            "path_set_collapses": 14,
            "iteration_guard_trips": 2,
        }
        assert doubled.adaptive_escalations == 8

    def test_widening_fired_compares_against_a_snapshot(self):
        stats = AnalysisStats()
        assert not stats.widening_fired()
        snapshot = stats.widening_counters()
        stats.path_set_collapses += 1
        assert stats.widening_fired(snapshot)
        assert not stats.widening_fired(stats.widening_counters())
