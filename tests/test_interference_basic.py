"""Tests for Section 5.1: alias sets, read/write sets, basic-statement interference."""

import pytest

from repro.analysis.matrix import PathMatrix
from repro.analysis.pathset import PathSet
from repro.interference import (
    alias_set,
    can_execute_in_parallel,
    condition_read_set,
    extend_parallel_group,
    field_location,
    greedy_parallel_groups,
    group_interference,
    interference_set,
    must_alias_set,
    read_set,
    statements_interfere,
    var_location,
    write_set,
)
from repro.sil import ast
from repro.sil.ast import Field
from repro.sil.parser import parse_expression


def figure6_matrix():
    """The tree of Figure 6: a and b name the same node, c below them, d at/below c."""
    matrix = PathMatrix(["a", "b", "c", "d"])
    matrix.set("a", "b", PathSet.same())
    matrix.set("b", "a", PathSet.same())
    matrix.set("a", "c", PathSet.parse("D+"))
    matrix.set("b", "c", PathSet.parse("D+"))
    matrix.set("c", "d", PathSet.parse("S?, R+?"))
    matrix.set("d", "c", PathSet.parse("S?"))
    return matrix


class TestAliasFunction:
    def test_alias_includes_self(self):
        matrix = PathMatrix(["a"])
        assert alias_set("a", Field.LEFT, matrix) == {field_location("a", Field.LEFT)}

    def test_definite_alias(self):
        matrix = figure6_matrix()
        assert field_location("b", Field.LEFT) in alias_set("a", Field.LEFT, matrix)

    def test_possible_alias(self):
        matrix = figure6_matrix()
        assert field_location("d", Field.VALUE) in alias_set("c", Field.VALUE, matrix)
        assert field_location("c", Field.VALUE) in alias_set("d", Field.VALUE, matrix)

    def test_unrelated_handles_do_not_alias(self):
        matrix = figure6_matrix()
        assert field_location("c", Field.LEFT) not in alias_set("a", Field.LEFT, matrix)

    def test_must_alias_excludes_possible(self):
        matrix = figure6_matrix()
        assert must_alias_set("a", Field.LEFT, matrix) == {
            field_location("a", Field.LEFT),
            field_location("b", Field.LEFT),
        }
        assert field_location("d", Field.VALUE) not in must_alias_set("c", Field.VALUE, matrix)


class TestReadWriteSets:
    """The table of Figure 5."""

    def test_assign_nil_and_new(self):
        matrix = figure6_matrix()
        for stmt in (ast.AssignNil(target="a"), ast.AssignNew(target="a")):
            assert read_set(stmt, matrix) == set()
            assert write_set(stmt, matrix) == {var_location("a")}

    def test_copy_handle(self):
        matrix = figure6_matrix()
        stmt = ast.CopyHandle(target="a", source="b")
        assert read_set(stmt, matrix) == {var_location("b")}
        assert write_set(stmt, matrix) == {var_location("a")}

    def test_load_field_reads_aliases(self):
        matrix = figure6_matrix()
        stmt = ast.LoadField(target="x", source="a", field_name=Field.LEFT)
        assert read_set(stmt, matrix) == {
            var_location("a"),
            field_location("a", Field.LEFT),
            field_location("b", Field.LEFT),
        }
        assert write_set(stmt, matrix) == {var_location("x")}

    def test_store_field_writes_aliases(self):
        matrix = figure6_matrix()
        stmt = ast.StoreField(target="b", field_name=Field.LEFT, source=None)
        assert write_set(stmt, matrix) == {
            field_location("b", Field.LEFT),
            field_location("a", Field.LEFT),
        }
        assert read_set(stmt, matrix) == {var_location("b")}

    def test_load_value(self):
        matrix = figure6_matrix()
        stmt = ast.LoadValue(target="n", source="d")
        assert read_set(stmt, matrix) == {
            var_location("d"),
            field_location("d", Field.VALUE),
            field_location("c", Field.VALUE),
        }

    def test_store_value_with_embedded_read(self):
        matrix = figure6_matrix()
        stmt = ast.StoreValue(
            target="a",
            expr=ast.BinOp("+", ast.FieldAccess(ast.Name("a"), Field.VALUE), ast.Name("n")),
        )
        reads = read_set(stmt, matrix)
        assert field_location("a", Field.VALUE) in reads
        assert var_location("n") in reads
        writes = write_set(stmt, matrix)
        assert writes == {field_location("a", Field.VALUE), field_location("b", Field.VALUE)}

    def test_scalar_assign(self):
        matrix = figure6_matrix()
        stmt = ast.ScalarAssign(target="x", expr=parse_expression("y + 1"))
        assert read_set(stmt, matrix) == {var_location("y")}
        assert write_set(stmt, matrix) == {var_location("x")}

    def test_condition_read_set(self):
        matrix = figure6_matrix()
        reads = condition_read_set(parse_expression("a.left <> nil and x > 0"), matrix)
        assert var_location("a") in reads and var_location("x") in reads
        assert field_location("b", Field.LEFT) in reads

    def test_non_basic_statement_rejected(self):
        with pytest.raises(TypeError):
            read_set(ast.ProcCall(name="p", args=[]), figure6_matrix())


class TestInterference:
    """The three examples of Figure 6 plus the group operations."""

    def test_example1_variable_interference(self):
        matrix = figure6_matrix()
        s1 = ast.LoadField(target="x", source="a", field_name=Field.LEFT)
        s2 = ast.CopyHandle(target="y", source="x")
        assert interference_set(s1, s2, matrix) == {var_location("x")}
        assert statements_interfere(s1, s2, matrix)

    def test_example2_field_interference_through_alias(self):
        matrix = figure6_matrix()
        s1 = ast.LoadField(target="x", source="a", field_name=Field.LEFT)
        s2 = ast.StoreField(target="b", field_name=Field.LEFT, source=None)
        assert interference_set(s1, s2, matrix) == {
            field_location("a", Field.LEFT),
            field_location("b", Field.LEFT),
        }

    def test_example3_conservative_value_interference(self):
        matrix = figure6_matrix()
        s1 = ast.LoadValue(target="n", source="d")
        s2 = ast.StoreValue(target="c", expr=ast.IntLit(0))
        assert interference_set(s1, s2, matrix) == {
            field_location("c", Field.VALUE),
            field_location("d", Field.VALUE),
        }

    def test_independent_statements(self):
        matrix = figure6_matrix()
        s1 = ast.LoadField(target="x", source="a", field_name=Field.LEFT)
        s2 = ast.LoadField(target="y", source="c", field_name=Field.RIGHT)
        assert interference_set(s1, s2, matrix) == set()
        assert can_execute_in_parallel([s1, s2], matrix)

    def test_group_interference_reports_pairs(self):
        matrix = figure6_matrix()
        s1 = ast.StoreValue(target="a", expr=ast.IntLit(1))
        s2 = ast.StoreValue(target="b", expr=ast.IntLit(2))
        s3 = ast.ScalarAssign(target="x", expr=ast.IntLit(3))
        report = group_interference([s1, s2, s3], matrix)
        assert report.interferes
        assert report.pairs == [(0, 1)]

    def test_extend_parallel_group(self):
        matrix = figure6_matrix()
        group = [ast.LoadField(target="x", source="a", field_name=Field.LEFT)]
        ok = ast.LoadField(target="y", source="a", field_name=Field.RIGHT)
        bad = ast.StoreField(target="b", field_name=Field.LEFT, source=None)
        assert extend_parallel_group(group, ok, matrix) == set()
        assert extend_parallel_group(group, bad, matrix) != set()

    def test_greedy_grouping(self):
        matrix = figure6_matrix()
        stmts = [
            ast.LoadField(target="x", source="a", field_name=Field.LEFT),
            ast.LoadField(target="y", source="a", field_name=Field.RIGHT),
            ast.CopyHandle(target="z", source="x"),  # depends on x
            ast.ScalarAssign(target="w", expr=ast.IntLit(1)),
        ]
        groups = greedy_parallel_groups(stmts, matrix)
        assert [len(g) for g in groups] == [2, 2]

    def test_write_write_conflict_detected(self):
        matrix = figure6_matrix()
        s1 = ast.AssignNew(target="x")
        s2 = ast.AssignNil(target="x")
        assert statements_interfere(s1, s2, matrix)
