"""Chaos-harness tests: seeded fault injection and end-to-end recovery.

The contract pinned here, layer by layer:

* **Plan grammar & determinism** — ``SITE=KIND[:PROB[:MATCH[:DELAY]]]``
  specs parse into frozen, picklable plans; every fire decision is a pure
  hash of ``(seed, site, kind, key, occurrence)``, so a chaos scenario
  replays identically run over run.
* **Zero cost when idle** — with no plan installed, ``fault_fire`` returns
  ``None`` and nothing else happens (the cold-median ratchet in
  ``benchmarks/test_ext_obs_overhead.py`` pins the "no plan installed"
  overhead; here we pin the semantics).
* **Shard recovery** — a crashed worker or poisoned shard output gets its
  pending workloads requeued under a bounded attempt budget, and the merged
  report is *bit-identical* (results digest) to a fault-free run; exhausted
  retries surface as honest per-workload failures, never silent drops.
* **Cache degradation** — corrupt persistent-store payloads are quarantined
  (discarded + treated as misses) and recomputed; backend I/O errors are
  retried at the disk tier, then tolerated by the transfer tier until its
  circuit breaker drops to memory-only.  Results never change, only the
  counters.
* **Daemon backpressure & client backoff** — past ``max_inflight`` the
  daemon sheds heavy requests with a retryable ``overloaded`` error while
  ``health`` still answers; the client retries idempotent ops through
  injected connection drops with exponential backoff, bounded by its
  deadline, and never retries non-idempotent ops.
"""

from __future__ import annotations

import pickle
import sqlite3
import sys
import time
import uuid
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.cache.backend import CacheConfig
from repro.cache.disk import DiskBackend, STORE_FILENAME
from repro.cache.memory import shared_memory_backend
from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultRule,
    current_fault_plan,
    fault_fire,
    fault_scope,
    injected_counts,
    install_fault_plan,
    uninstall_fault_plan,
)
from repro.faults.plan import draw
from repro.server import (
    AnalysisClient,
    AnalysisServer,
    ServerConfig,
    ServerError,
)
from repro.server.client import IDEMPOTENT_OPS
from repro.server.daemon import KNOWN_OPS
from repro.server.protocol import ERR_OVERLOADED, ConnectionClosed, ProtocolError
from repro.workloads.suite import DEFAULT_MAX_ATTEMPTS, ShardedSuiteRunner

#: A small, fast subset of the named workloads (the full suite is pinned
#: elsewhere; chaos tests re-run these many times).
NAMES = ["list_walk", "tree_add", "swap_children", "cycle_bug"]


@pytest.fixture(autouse=True)
def _no_plan_leaks():
    """Every test starts and ends with no process-global plan installed."""
    uninstall_fault_plan()
    yield
    uninstall_fault_plan()


@pytest.fixture(scope="module")
def baseline():
    """The fault-free reference: digest + failures of the NAMES suite."""
    report = ShardedSuiteRunner.from_names(NAMES, shards=1).run()
    assert not report.failures
    return report


# ---------------------------------------------------------------------------
# plan grammar and the deterministic draw
# ---------------------------------------------------------------------------


class TestPlanGrammar:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(["shard.workload=crash:0.5:@0:0.2"], seed=9)
        assert plan.seed == 9
        (rule,) = plan.rules
        assert rule.site == "shard.workload"
        assert rule.kind == "crash"
        assert rule.probability == 0.5
        assert rule.match == "@0"
        assert rule.delay == 0.2

    def test_parse_defaults(self):
        (rule,) = FaultPlan.parse(["cache.get=io_error"]).rules
        assert rule.probability == 1.0
        assert rule.match == ""

    @pytest.mark.parametrize(
        "spec",
        [
            "no-equals-sign",
            "cache.get=meteor_strike",  # unknown kind
            "cache.get=io_error:2.0",  # probability out of range
            "cache.get=io_error:0",  # zero probability is meaningless
            "cache.get=io_error:soon",  # non-numeric probability
            "cache.get=io_error:1.0:x:later",  # non-numeric delay
            "cache.get=io_error:1.0:x:0.1:extra",  # too many pieces
        ],
    )
    def test_parse_rejects(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse([spec])

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule(site="", kind="crash").validated()
        with pytest.raises(ValueError):
            FaultRule(site="cache.get", kind="crash", delay=-1).validated()
        for kind in FAULT_KINDS:
            FaultRule(site="cache.get", kind=kind).validated()

    def test_draw_is_deterministic_and_occurrence_sensitive(self):
        a = draw(7, "cache.get", "io_error", "deadbeef#1")
        assert a == draw(7, "cache.get", "io_error", "deadbeef#1")
        assert 0.0 <= a < 1.0
        # Different occurrence, seed, or site: an independent draw.
        assert a != draw(7, "cache.get", "io_error", "deadbeef#2")
        assert a != draw(8, "cache.get", "io_error", "deadbeef#1")

    def test_plan_pickles_roundtrip(self):
        plan = FaultPlan.parse(
            ["shard.worker=crash:0.3", "cache.payload=corrupt:1.0:#1"], seed=4
        )
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_describe_reparses_to_the_same_plan(self):
        plan = FaultPlan.parse(["shard.workload=crash:0.5:@0", "cache.get=io_error"])
        assert FaultPlan.parse(plan.describe()) == plan


class TestInjector:
    def test_zero_cost_when_uninstalled(self):
        assert current_fault_plan() is None
        assert fault_fire("cache.get", "any-key") is None
        assert injected_counts() == {}

    def test_occurrence_scoped_match(self):
        install_fault_plan(FaultPlan.parse(["cache.get=io_error:1.0:#1"]))
        assert fault_fire("cache.get", "k1") is not None  # occurrence 1
        assert fault_fire("cache.get", "k1") is None  # occurrence 2
        assert fault_fire("cache.get", "k2") is not None  # fresh key
        assert injected_counts() == {("cache.get", "io_error"): 2}

    def test_unmatched_site_never_fires(self):
        install_fault_plan(FaultPlan.parse(["cache.get=io_error"]))
        assert fault_fire("server.frame", "ping") is None

    def test_fault_scope_restores_the_previous_plan(self):
        ambient = FaultPlan.parse(["cache.get=io_error"])
        install_fault_plan(ambient)
        inner = FaultPlan.parse(["cache.write=io_error"])
        with fault_scope(inner):
            assert current_fault_plan() == inner
        assert current_fault_plan() == ambient
        with fault_scope(None):  # None: leave the ambient plan untouched
            assert current_fault_plan() == ambient


# ---------------------------------------------------------------------------
# shard crash recovery: requeue, bit-identity, honest exhaustion
# ---------------------------------------------------------------------------


class TestShardRecovery:
    def _crash_first_attempts(self, shards):
        plan = FaultPlan.parse(["shard.workload=crash:1.0:@0"])
        runner = ShardedSuiteRunner.from_names(NAMES, shards=shards, faults=plan)
        return runner.run()

    @pytest.mark.parametrize("shards", [1, 2])
    def test_crash_requeue_is_bit_identical(self, baseline, shards):
        report = self._crash_first_attempts(shards)
        assert not report.failures
        assert report.results_digest() == baseline.results_digest()
        # Every workload took exactly two attempts: crash, then success.
        assert report.attempts == {name: 2 for name in NAMES}
        assert report.metrics.counter("suite.workload_retries").value == len(NAMES)
        assert (
            report.metrics.counter(
                "faults.injected_total", site="shard.workload", kind="crash"
            ).value
            > 0
        )
        # The runner's plan never leaks out of the run.
        assert current_fault_plan() is None

    def test_dead_worker_requeues_the_whole_shard(self, baseline):
        plan = FaultPlan.parse(["shard.worker=crash:1.0:@0"])
        report = ShardedSuiteRunner.from_names(NAMES, shards=2, faults=plan).run()
        assert not report.failures
        assert report.results_digest() == baseline.results_digest()
        assert (
            report.metrics.counter("suite.shard_crashes_total", kind="worker").value
            == 2
        )

    def test_exhausted_retries_fail_honestly(self):
        plan = FaultPlan.parse(["shard.workload=crash:1.0"])  # every attempt
        report = ShardedSuiteRunner.from_names(
            NAMES, shards=1, faults=plan, max_attempts=2
        ).run()
        assert not report.ok
        assert set(report.failures) == set(NAMES)
        for message in report.failures.values():
            assert "retries exhausted" in message
        assert (
            report.metrics.counter("suite.workloads_abandoned_total").value
            == len(NAMES)
        )

    def test_single_process_reference_also_recovers(self, baseline):
        plan = FaultPlan.parse(["shard.workload=crash:1.0:@0"])
        runner = ShardedSuiteRunner.from_names(NAMES, shards=2, faults=plan)
        single = runner.run_single_process()
        assert not single.failures
        assert single.results_digest() == baseline.results_digest()

    def test_default_attempt_budget(self):
        assert DEFAULT_MAX_ATTEMPTS == 3
        runner = ShardedSuiteRunner.from_names(NAMES, max_attempts=0)
        assert runner.max_attempts == 1  # clamped: at least the first try


# ---------------------------------------------------------------------------
# cache tier: quarantine, disk retries, circuit breaker
# ---------------------------------------------------------------------------


def _disk_config(tmp_path):
    return CacheConfig(backend="disk", directory=str(tmp_path / "store"))


class TestCorruptPayloadQuarantine:
    def test_disk_rows_hand_corrupted_are_quarantined(self, tmp_path, baseline):
        cache = _disk_config(tmp_path)
        cold = ShardedSuiteRunner.from_names(NAMES, shards=1, cache=cache).run()
        assert cold.results_digest() == baseline.results_digest()

        store_path = Path(cache.directory) / STORE_FILENAME
        with sqlite3.connect(str(store_path)) as connection:
            (total,) = connection.execute("SELECT COUNT(*) FROM entries").fetchone()
            assert total > 0
            connection.execute("UPDATE entries SET payload = 'not json at all'")

        warm = ShardedSuiteRunner.from_names(NAMES, shards=1, cache=cache).run()
        # The run completes, recomputes every poisoned entry, and reports
        # the same results as if the store had been healthy.
        assert not warm.failures
        assert warm.results_digest() == baseline.results_digest()
        quarantined = warm.metrics.counter("cache.quarantined_total").value
        assert quarantined == total
        # discard() really removed the bad rows; the flush re-admitted the
        # recomputed payloads, which must decode cleanly now.
        backend = DiskBackend(cache.directory)
        try:
            assert len(backend) > 0
            stats = backend.stats()
            # Each corrupt lookup was reclassified hit -> miss.
            assert stats["misses"] >= total
        finally:
            backend.close()

    def test_memory_store_corruption_is_quarantined(self, baseline):
        namespace = f"chaos-{uuid.uuid4().hex}"
        cache = CacheConfig(backend="memory", directory=namespace)
        cold = ShardedSuiteRunner.from_names(NAMES, shards=1, cache=cache).run()
        assert cold.results_digest() == baseline.results_digest()

        backend = shared_memory_backend(namespace)
        keys = [key for key, _ in backend._store.items()]
        assert keys
        for key in keys:
            # put() is touch-only for resident keys: evict, then re-admit
            # the poisoned payload.
            backend._store.remove(key)
            backend._store.put(key, "garbage payload")
        assert backend._store.get(keys[0]) == "garbage payload"

        warm = ShardedSuiteRunner.from_names(NAMES, shards=1, cache=cache).run()
        assert not warm.failures
        assert warm.results_digest() == baseline.results_digest()
        assert warm.metrics.counter("cache.quarantined_total").value == len(keys)
        for key in keys:  # the bad entries are gone from the store
            assert backend._store.get(key) != "garbage payload"


class TestDiskRetries:
    def _populated_backend(self, tmp_path):
        backend = DiskBackend(str(tmp_path / "retry-store"))
        backend.write({"k1": "payload-one", "k2": "payload-two"})
        return backend

    def test_transient_read_errors_are_retried(self, tmp_path):
        backend = self._populated_backend(tmp_path)
        try:
            # "#1" scopes the fault to the first try of each key: the
            # bounded in-process retry deterministically succeeds.
            with fault_scope(FaultPlan.parse(["cache.get=io_error:1.0:#1"])):
                assert backend.get("k1") == "payload-one"
                assert backend.get("k2") == "payload-two"
            backend.write({"k3": "payload-three"})  # folds session retries in
            assert backend.stats()["retries"] >= 2
        finally:
            backend.close()

    def test_persistent_read_errors_exhaust_and_raise(self, tmp_path):
        backend = self._populated_backend(tmp_path)
        try:
            with fault_scope(FaultPlan.parse(["cache.get=io_error:1.0"])):
                with pytest.raises(sqlite3.OperationalError):
                    backend.get("k1")
        finally:
            backend.close()


class TestCircuitBreaker:
    def test_unrecoverable_backend_degrades_to_memory_only(self, tmp_path, baseline):
        cache = _disk_config(tmp_path)
        ShardedSuiteRunner.from_names(NAMES, shards=1, cache=cache).run()

        plan = FaultPlan.parse(["cache.get=io_error:1.0"])  # every try, every key
        report = ShardedSuiteRunner.from_names(
            NAMES, shards=1, cache=cache, faults=plan
        ).run()
        assert not report.failures
        assert report.results_digest() == baseline.results_digest()
        assert report.metrics.counter("cache.backend_errors_total").value >= 3
        assert report.metrics.gauge("cache.degraded").value == 1


# ---------------------------------------------------------------------------
# daemon backpressure, drop injection, client backoff
# ---------------------------------------------------------------------------


def _start_server(tmp_path, **config_kwargs):
    path = str(tmp_path / f"chaos-{uuid.uuid4().hex[:8]}.sock")
    server = AnalysisServer(
        ServerConfig(socket_path=path, **config_kwargs)
    ).start_background()
    return server


def _stop_server(server):
    server.request_stop()
    assert server.join(timeout=15)


class TestDaemonBackpressure:
    def test_health_op(self, tmp_path):
        server = _start_server(tmp_path)
        try:
            with AnalysisClient(socket_path=server.config.socket_path) as client:
                assert "health" in client.protocol_version()["ops"]
                health = client.health()
                assert health["status"] == "ok"
                assert health["ready"] is True
                assert health["cache_degraded"] is False
                assert health["shed_total"] == 0
                assert health["max_inflight"] == 64  # the default cap
        finally:
            _stop_server(server)
        assert "health" in KNOWN_OPS

    def test_overload_sheds_with_retryable_error(self, tmp_path):
        # Every workload's first-request analysis sleeps, so one admitted
        # analyze pins the single in-flight slot for a deterministic window.
        slow_plan = FaultPlan.parse(["shard.workload=slow:1.0:#1:0.5"])
        server = _start_server(
            tmp_path, workers=2, max_inflight=1, faults=slow_plan
        )
        try:
            occupant = AnalysisClient(socket_path=server.config.socket_path)
            occupant.connect()
            occupant.send("analyze", workloads=NAMES)
            shed_error = None
            deadline = time.monotonic() + 10
            with AnalysisClient(socket_path=server.config.socket_path) as probe:
                while time.monotonic() < deadline:
                    try:
                        probe.analyze(workloads=[NAMES[0]])
                        time.sleep(0.02)
                    except ServerError as error:
                        shed_error = error
                        break
                assert shed_error is not None, "no request was shed in 10s"
                assert shed_error.code == ERR_OVERLOADED
                assert shed_error.error.get("retryable") is True
                # Fast ops still answer while heavy ops are being shed.
                health = probe.health()
                assert health["shed_total"] >= 1
                assert probe.ping() is True
            assert occupant.recv()["ok"] is True  # the occupant finished
            # A backoff-aware client rides out the load window.
            retry = AnalysisClient(
                socket_path=server.config.socket_path,
                retries=5,
                backoff=0.05,
                deadline=30,
            )
            with retry:
                assert retry.analyze(workloads=[NAMES[0]])["ok"] is True
            occupant.close()
        finally:
            _stop_server(server)

    def test_injected_drop_is_ridden_out_by_retries(self, tmp_path):
        # "#1" = the first frame of each op is dropped, the re-sent one
        # goes through: exactly one retry per op, deterministically.
        plan = FaultPlan.parse(["server.frame=drop:1.0:#1"])
        server = _start_server(tmp_path, faults=plan)
        try:
            client = AnalysisClient(
                socket_path=server.config.socket_path, retries=3, backoff=0.01
            )
            with client:
                response = client.cache_stats()
                assert response["ok"] is True
            assert client.retries_performed == 1
            # "#1" drops the first frame of *every* op, including this
            # metrics read — which therefore also needs a retry budget.
            reader = AnalysisClient(
                socket_path=server.config.socket_path, retries=3, backoff=0.01
            )
            with reader:
                metrics = reader.metrics()["metrics"]["counters"]
                key = "faults.injected_total{kind=drop,site=server.frame}"
                assert metrics[key]["value"] >= 1
        finally:
            _stop_server(server)

    def test_drop_without_retries_raises_connection_closed(self, tmp_path):
        plan = FaultPlan.parse(["server.frame=drop:1.0:ping"])
        server = _start_server(tmp_path, faults=plan)
        try:
            with AnalysisClient(socket_path=server.config.socket_path) as client:
                with pytest.raises(ConnectionClosed):
                    client.ping()
        finally:
            _stop_server(server)

    def test_non_idempotent_ops_are_never_retried(self, tmp_path):
        assert "shutdown" not in IDEMPOTENT_OPS
        assert "reanalyze" not in IDEMPOTENT_OPS
        plan = FaultPlan.parse(["server.frame=drop:1.0:shutdown"])
        server = _start_server(tmp_path, faults=plan)
        try:
            client = AnalysisClient(
                socket_path=server.config.socket_path, retries=5, backoff=0.01
            )
            with client:
                with pytest.raises(ConnectionClosed):
                    client.shutdown()
            assert client.retries_performed == 0
            # The dropped shutdown never reached dispatch: still serving.
            with AnalysisClient(socket_path=server.config.socket_path) as probe:
                assert probe.ping() is True
        finally:
            _stop_server(server)

    def test_deadline_bounds_the_retry_loop(self, tmp_path):
        plan = FaultPlan.parse(["server.frame=drop:1.0:cache_stats"])
        server = _start_server(tmp_path, faults=plan)
        try:
            client = AnalysisClient(
                socket_path=server.config.socket_path,
                retries=50,
                backoff=0.2,
                deadline=0.5,
            )
            started = time.monotonic()
            with client:
                with pytest.raises(ConnectionClosed):
                    client.cache_stats()
            assert time.monotonic() - started < 5.0
            assert client.retries_performed < 50
        finally:
            _stop_server(server)


class TestClientValidation:
    def test_bad_retry_knobs_are_rejected(self):
        with pytest.raises(ValueError):
            AnalysisClient(socket_path="/tmp/x.sock", retries=-1)
        with pytest.raises(ValueError):
            AnalysisClient(socket_path="/tmp/x.sock", backoff=0)
        with pytest.raises(ValueError):
            AnalysisClient(socket_path="/tmp/x.sock", deadline=0)

    def test_connection_closed_is_a_protocol_error(self):
        # Callers that caught ProtocolError before the split still do.
        assert issubclass(ConnectionClosed, ProtocolError)


class TestServerConfigValidation:
    def test_negative_max_inflight_rejected(self):
        with pytest.raises(ValueError):
            ServerConfig(socket_path="/tmp/x.sock", max_inflight=-1).validated()

    def test_zero_and_none_disable_shedding(self):
        ServerConfig(socket_path="/tmp/x.sock", max_inflight=0).validated()
        ServerConfig(socket_path="/tmp/x.sock", max_inflight=None).validated()

    def test_fault_plan_is_validated(self):
        bad = FaultPlan(rules=(FaultRule(site="cache.get", kind="nope"),))
        with pytest.raises(ValueError):
            ServerConfig(socket_path="/tmp/x.sock", faults=bad).validated()


class TestChaosCli:
    def test_bad_chaos_spec_exits_two(self, capsys):
        from repro.cli import main

        assert main(["analyze", "list_walk", "--chaos", "bogus"]) == 2
        assert "bad fault spec" in capsys.readouterr().err
