"""Warm-state tests: the reason the daemon exists.

A one-shot CLI run can never see a persistent-cache hit against its own
writes — the process dies between runs.  A daemon can: its in-memory
transfer memo keys on ``id(stmt)`` (so a re-submitted program, freshly
parsed, misses it) while the persistent tier keys on **content** — so the
second request of the same program is served from the store the first
request populated, inside one server process.

Pinned here:

* the second identical ``analyze`` request shows
  ``persistent_cache_hit_rate > 0`` (the PR's acceptance criterion), with
  bit-identical results;
* server-lifetime stats reported by ``cache_stats`` are exactly the sum
  of the per-request stats carried in the responses;
* graceful shutdown flushes the persistent store (a disk store survives
  with the first request's transfers in it).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.analysis.pathset import intern_table_sizes
from repro.cache import STORE_FILENAME, CacheConfig, DiskBackend
from repro.server import AnalysisClient, AnalysisServer, ServerConfig

NAMES = ["dag_sharing", "add_and_reverse", "tree_mirror"]

#: Derived ratios carried alongside the raw counters in stats payloads —
#: excluded when summing per-request counters into lifetime totals.
DERIVED = ("transfer_cache_hit_rate", "persistent_cache_hit_rate")


@pytest.fixture
def server(tmp_path):
    """A *fresh* daemon per test: warm-state assertions need a cold start."""
    daemon = AnalysisServer(
        ServerConfig(socket_path=str(tmp_path / "analysis.sock"))
    ).start_background()
    yield daemon
    daemon.request_stop()
    assert daemon.join(timeout=10)


@pytest.fixture
def client(server):
    with AnalysisClient(socket_path=server.config.socket_path, timeout=60) as handle:
        yield handle


class TestWarmSecondRequest:
    def test_persistent_hit_rate_nonzero_across_two_requests(self, client):
        first = client.analyze(NAMES)["stats"]
        second_response = client.analyze(NAMES)
        second = second_response["stats"]

        # Request 1 populated the store...
        assert first["persistent_cache_writes"] > 0
        # ... and request 2 is served from it: every transfer the first
        # request computed comes back as a content-addressed read.
        assert second["persistent_cache_hits"] > 0
        assert second["persistent_cache_hit_rate"] > 0
        assert second["persistent_cache_misses"] == 0
        assert second["persistent_cache_writes"] == 0
        assert second["persistent_cache_hit_rate"] > first["persistent_cache_hit_rate"]

    def test_warm_results_are_bit_identical(self, client):
        first = client.analyze(NAMES)
        second = client.analyze(NAMES)
        assert first["results_digest"] == second["results_digest"]
        assert first["results"] == second["results"]
        assert not first["failures"] and not second["failures"]

    def test_inline_resubmission_is_warm_too(self, client):
        # Content-addressing keys on program *content*, not workload names:
        # the same source resubmitted inline hits the store all the same.
        from repro.workloads.suite import source

        text = source("dag_sharing", depth=4)
        client.analyze(workloads=[], programs=[{"name": "one", "source": text}])
        warm = client.analyze(workloads=[], programs=[{"name": "two", "source": text}])
        assert warm["stats"]["persistent_cache_hit_rate"] > 0
        assert warm["stats"]["persistent_cache_misses"] == 0


class TestLifetimeStats:
    def test_lifetime_totals_are_the_sum_of_per_request_stats(self, client):
        responses = [
            client.analyze(NAMES[:1]),
            client.analyze(NAMES[:2]),
            client.analyze(NAMES),
        ]
        lifetime = client.cache_stats()["lifetime_stats"]
        for counter in lifetime:
            if counter in DERIVED:
                continue
            total = sum(r["stats"][counter] for r in responses)
            assert lifetime[counter] == total, counter

    def test_server_section_counts_requests(self, client):
        client.analyze(NAMES[:1])
        client.analyze(NAMES[:1])
        stats = client.cache_stats()
        assert stats["server"]["requests_served"] == 2
        assert stats["server"]["requests_by_op"]["analyze"] == 2
        assert stats["server"]["requests_by_op"]["cache_stats"] >= 1
        assert stats["server"]["uptime_seconds"] >= 0

    def test_cache_stats_reports_warm_state(self, client):
        client.analyze(NAMES)
        stats = client.cache_stats()
        assert stats["transfer_cache"]["entries"] > 0
        assert stats["transfer_cache"]["capacity"] >= stats["transfer_cache"]["entries"]
        assert stats["persistent"] is not None
        assert stats["persistent"]["entries"] > 0
        # The intern tables it reports are the process-global ones — the
        # same vocabulary (and, in-process, the same sizes) as a direct
        # read of intern_table_sizes().
        assert set(stats["intern_tables"]) == set(intern_table_sizes())


class TestShutdownFlush:
    def test_graceful_shutdown_flushes_a_disk_store(self, tmp_path):
        store_dir = str(tmp_path / "store")
        daemon = AnalysisServer(
            ServerConfig(
                socket_path=str(tmp_path / "analysis.sock"),
                cache=CacheConfig(backend="disk", directory=store_dir),
            )
        ).start_background()
        with AnalysisClient(socket_path=daemon.config.socket_path, timeout=60) as handle:
            response = handle.analyze(NAMES[:1])
            assert response["stats"]["persistent_cache_writes"] > 0
            handle.shutdown()
        assert daemon.join(timeout=10)
        # The daemon is gone; its transfers are not.
        assert (Path(store_dir) / STORE_FILENAME).exists()
        backend = DiskBackend(store_dir)
        try:
            assert backend.stats()["entries"] > 0
        finally:
            backend.close()

    def test_shutdown_unlinks_the_unix_socket(self, tmp_path):
        path = tmp_path / "analysis.sock"
        daemon = AnalysisServer(ServerConfig(socket_path=str(path))).start_background()
        assert path.exists()
        with AnalysisClient(socket_path=str(path), timeout=30) as handle:
            handle.shutdown()
        assert daemon.join(timeout=10)
        assert not path.exists()


class TestReanalyzeOp:
    def _pair(self):
        from repro.workloads import generate_edited_pair, generate_scenario
        from repro.workloads.generators import GeneratorConfig

        scenario = generate_scenario(
            3, GeneratorConfig(family="deep", procedures=2, depth=6)
        )
        return generate_edited_pair(
            scenario.source, 0, edits=1, kinds=("insert",), target_procedure="main"
        )

    def test_reanalyze_verifies_and_reuses(self, client):
        pair = self._pair()
        response = client.reanalyze(
            pair.old_source, pair.new_source, name="deep", verify=True
        )
        assert response["verified"] is True
        assert response["digest"] == response["cold_digest"]
        assert response["summaries_reused"] > 0
        assert len(response["procedures_reanalyzed"]) < response["procedures_total"]
        assert response["program"] == "deep"
        assert response["base_digest"]

    def test_reanalyze_counts_in_lifetime_stats(self, client):
        pair = self._pair()
        response = client.reanalyze(pair.old_source, pair.new_source)
        stats = client.cache_stats()
        assert stats["server"]["requests_by_op"]["reanalyze"] == 1
        assert stats["server"]["requests_served"] == 1
        assert (
            stats["lifetime_stats"]["summaries_reused"]
            == response["request_stats"]["summaries_reused"]
        )

    def test_reanalyze_rejects_missing_sources(self, client):
        from repro.server.client import ServerError

        with pytest.raises(ServerError) as excinfo:
            client.request("reanalyze", old_source="program p procedure main() begin end")
        assert excinfo.value.code == "bad_request"

    def test_reanalyze_rejects_invalid_programs(self, client):
        from repro.server.client import ServerError

        with pytest.raises(ServerError):
            client.reanalyze("not a program", "also not a program")
