"""Unit tests for semantic program deltas (:mod:`repro.sil.delta`).

The differ is the front half of cross-run incremental re-analysis: it must
(a) identify statements exactly the way the persistent cache codec keys
them, (b) classify procedure changes conservatively, and (c) produce a
dirty seed that covers every procedure whose analysis could differ.
"""

import pytest

from repro.cache.codec import canonical_statement
from repro.sil import ast
from repro.sil.delta import (
    call_graph,
    diff_programs,
    dirty_seed,
    identity_label,
    reverse_call_graph,
    statement_identity,
    statement_label,
    statement_rebase_map,
)
from repro.sil.normalize import parse_and_normalize

BASE = """
program p
procedure main() h: handle begin h := new(); grow(h); trim(h) end
procedure grow(a: handle) begin a.left := new() end
procedure trim(b: handle) begin b.left := nil end
"""

CHAIN = """
program p
procedure main() h: handle begin h := new(); outer(h) end
procedure outer(a: handle) begin inner(a) end
procedure inner(b: handle) begin b.value := 1 end
"""


def normalized(source):
    program, _ = parse_and_normalize(source)
    return program


class TestStatementIdentity:
    def test_identity_is_kind_plus_rendering(self):
        program = normalized(BASE)
        stmt = program.main.body.stmts[0]
        kind, rendering = statement_identity(stmt)
        assert kind == type(stmt).__name__
        assert rendering  # the inline rendering is never empty

    def test_reparse_preserves_identity(self):
        first = normalized(BASE).main.body.stmts
        second = normalized(BASE).main.body.stmts
        assert [statement_identity(s) for s in first] == [
            statement_identity(s) for s in second
        ]

    def test_label_matches_cache_codec_contract(self):
        # The stale-statement labels a delta emits must name exactly the
        # rows the persistent store keyed — the codec delegates here.
        program = normalized(BASE)
        for proc in program.all_callables:
            for stmt in ast.walk_stmt(proc.body):
                assert canonical_statement(stmt) == list(statement_identity(stmt))
                assert statement_label(stmt) == identity_label(statement_identity(stmt))


class TestDiffPrograms:
    def test_identical_programs_empty_delta(self):
        delta = diff_programs(normalized(BASE), normalized(BASE))
        assert delta.is_empty
        assert delta.dirty_procedures == frozenset()
        assert set(delta.unchanged) == {"main", "grow", "trim"}

    def test_body_edit_marks_one_procedure_changed(self):
        edited = BASE.replace("b.left := nil", "b.right := nil")
        delta = diff_programs(normalized(BASE), normalized(edited))
        assert [d.name for d in delta.changed] == ["trim"]
        (proc_delta,) = delta.changed
        assert proc_delta.kind == "body"
        assert proc_delta.removed_statements and proc_delta.added_statements
        assert set(delta.unchanged) == {"main", "grow"}
        assert delta.dirty_procedures == frozenset({"trim"})

    def test_stale_labels_name_removed_statements_only(self):
        edited = BASE.replace("b.left := nil", "b.right := nil")
        old = normalized(BASE)
        delta = diff_programs(old, normalized(edited))
        old_trim_labels = {
            statement_label(s) for s in ast.walk_stmt(old.callable("trim").body)
        }
        assert delta.stale_statement_labels
        assert delta.stale_statement_labels <= old_trim_labels

    def test_signature_change_detected_without_body_change(self):
        edited = BASE.replace("procedure trim(b: handle)", "procedure trim(b: handle) t: handle")
        delta = diff_programs(normalized(BASE), normalized(edited))
        (proc_delta,) = delta.changed
        assert proc_delta.name == "trim"
        assert proc_delta.kind == "signature"

    def test_added_and_removed_procedures(self):
        grown = BASE + "\nprocedure extra(c: handle) begin c.value := 0 end\n"
        delta = diff_programs(normalized(BASE), normalized(grown))
        assert delta.added == ("extra",)
        assert not delta.removed
        reverse = diff_programs(normalized(grown), normalized(BASE))
        assert reverse.removed == ("extra",)
        assert not reverse.added


class TestRebaseMap:
    def test_rebase_maps_every_statement_of_unchanged_procs(self):
        old = normalized(BASE)
        new = normalized(BASE)
        mapping = statement_rebase_map(old, new, ["grow", "trim"])
        for name in ("grow", "trim"):
            old_stmts = list(ast.walk_stmt(old.callable(name).body))
            new_stmts = list(ast.walk_stmt(new.callable(name).body))
            for old_stmt, new_stmt in zip(old_stmts, new_stmts):
                assert mapping[id(old_stmt)] is new_stmt

    def test_rebase_refuses_a_changed_procedure(self):
        edited = BASE.replace("b.left := nil", "b.right := nil")
        with pytest.raises(ValueError, match="trim"):
            statement_rebase_map(normalized(BASE), normalized(edited), ["trim"])


class TestDirtySeed:
    def test_call_graph_edges(self):
        graph = call_graph(normalized(CHAIN))
        assert graph["main"] == {"outer"}
        assert graph["outer"] == {"inner"}
        assert graph["inner"] == set()

    def test_reverse_call_graph_edges(self):
        reverse = reverse_call_graph(normalized(CHAIN))
        assert reverse["inner"] == {"outer"}
        assert reverse["outer"] == {"main"}
        assert reverse["main"] == set()

    def test_seed_closes_over_transitive_callers(self):
        edited = CHAIN.replace("b.value := 1", "b.value := 2")
        new = normalized(edited)
        delta = diff_programs(normalized(CHAIN), new)
        assert delta.dirty_procedures == frozenset({"inner"})
        assert dirty_seed(delta, new) == frozenset({"inner", "outer", "main"})

    def test_seed_does_not_include_callees_of_dirty_procs(self):
        # Editing main dirties only main: its callees re-analyze on their
        # own if (and only if) their entry matrices actually change.
        edited = CHAIN.replace("h := new(); outer(h)", "h := new(); h.value := 9; outer(h)")
        new = normalized(edited)
        delta = diff_programs(normalized(CHAIN), new)
        assert dirty_seed(delta, new) == frozenset({"main"})
