"""Unit tests for the SIL type checker."""

import pytest

from repro.sil import ast
from repro.sil.errors import TypeCheckError
from repro.sil.parser import parse_program
from repro.sil.typecheck import ExprType, check_program


def check(source):
    return check_program(parse_program(source))


GOOD = """
program good
procedure main()
  root, l: handle; n: int
begin
  root := new();
  root.value := 3;
  l := root.left;
  n := root.value + 1;
  touch(root, n)
end
procedure touch(h: handle; k: int)
begin
  if h <> nil then h.value := k
end
"""


class TestAcceptedPrograms:
    def test_well_typed_program(self):
        info = check(GOOD)
        scope = info.for_procedure("main")
        assert scope.is_handle("root")
        assert scope.is_int("n")
        assert sorted(scope.handle_variables()) == ["l", "root"]

    def test_function_return_variable(self):
        info = check(
            "program p procedure main() x: int begin x := f(2) end "
            "function f(n: int): int r: int begin r := n * 2 end return (r)"
        )
        assert info.for_procedure("f").is_int("r")

    def test_handle_comparison_with_nil(self):
        check(
            "program p procedure main() h: handle begin "
            "h := nil; if h = nil then h := new() end"
        )

    def test_handle_equality_between_handles(self):
        check(
            "program p procedure main() a, b: handle begin "
            "a := new(); b := a; if a = b then a := nil end"
        )


class TestRejectedPrograms:
    def test_undeclared_variable(self):
        with pytest.raises(TypeCheckError):
            check("program p procedure main() begin x := 1 end")

    def test_duplicate_declaration(self):
        with pytest.raises(TypeCheckError):
            check("program p procedure main() x: int; x: handle begin end")

    def test_assign_handle_to_int(self):
        with pytest.raises(TypeCheckError):
            check("program p procedure main() x: int; h: handle begin h := new(); x := h end")

    def test_assign_int_to_handle(self):
        with pytest.raises(TypeCheckError):
            check("program p procedure main() h: handle begin h := 3 end")

    def test_field_access_on_int(self):
        with pytest.raises(TypeCheckError):
            check("program p procedure main() x: int begin x := 1; x.value := 2 end")

    def test_handle_ordering_comparison_rejected(self):
        with pytest.raises(TypeCheckError):
            check(
                "program p procedure main() a, b: handle begin "
                "a := new(); b := new(); if a < b then a := nil end"
            )

    def test_condition_must_be_boolean(self):
        with pytest.raises(TypeCheckError):
            check("program p procedure main() x: int begin if x then x := 1 end")

    def test_assigning_boolean_rejected(self):
        with pytest.raises(TypeCheckError):
            check("program p procedure main() x: int begin x := 1 < 2 end")

    def test_arithmetic_on_handles_rejected(self):
        with pytest.raises(TypeCheckError):
            check(
                "program p procedure main() a, b: handle; x: int begin "
                "a := new(); b := new(); x := a + b end"
            )

    def test_call_to_undefined_procedure(self):
        with pytest.raises(TypeCheckError):
            check("program p procedure main() begin ghost(1) end")

    def test_wrong_argument_count(self):
        with pytest.raises(TypeCheckError):
            check(
                "program p procedure main() begin q(1, 2) end "
                "procedure q(n: int) begin end"
            )

    def test_wrong_argument_type(self):
        with pytest.raises(TypeCheckError):
            check(
                "program p procedure main() h: handle begin h := new(); q(h) end "
                "procedure q(n: int) begin end"
            )

    def test_calling_function_as_procedure(self):
        with pytest.raises(TypeCheckError):
            check(
                "program p procedure main() begin f(1) end "
                "function f(n: int): int r: int begin r := n end return (r)"
            )

    def test_assigning_procedure_call_result(self):
        with pytest.raises(TypeCheckError):
            check(
                "program p procedure main() x: int begin x := q(1) end "
                "procedure q(n: int) begin end"
            )

    def test_main_with_parameters_rejected(self):
        program = parse_program(
            "program p procedure main() begin end"
        )
        # Manually add a parameter to main to exercise the check.
        program.main.params.append(ast.VarDecl(name="x", type=ast.SilType.INT))
        with pytest.raises(TypeCheckError):
            check_program(program)

    def test_duplicate_procedure_names(self):
        with pytest.raises(TypeCheckError):
            check(
                "program p procedure main() begin end "
                "procedure q() begin end procedure q() begin end"
            )

    def test_function_return_var_type_mismatch(self):
        with pytest.raises(TypeCheckError):
            check(
                "program p procedure main() begin end "
                "function f(): int t: handle begin t := nil end return (t)"
            )

    def test_function_result_type_mismatch_at_use(self):
        with pytest.raises(TypeCheckError):
            check(
                "program p procedure main() h: handle begin h := f() end "
                "function f(): int r: int begin r := 1 end return (r)"
            )

    def test_variable_shadowing_procedure_name(self):
        with pytest.raises(TypeCheckError):
            check(
                "program p procedure main() q: int begin q := 1 end "
                "procedure q() begin end"
            )


class TestCoreStatementChecking:
    """The checker also validates already-normalized (core) statements."""

    def test_core_program_passes(self, add_and_reverse):
        program, info = add_and_reverse
        # Re-checking an already normalized program succeeds.
        assert check_program(program).for_procedure("add_n").is_handle("h")

    def test_store_field_requires_link_field(self):
        program = parse_program("program p procedure main() h: handle begin h := new() end")
        program.main.body.stmts.append(
            ast.StoreField(target="h", field_name=ast.Field.VALUE, source=None)
        )
        with pytest.raises(TypeCheckError):
            check_program(program)

    def test_load_value_into_handle_rejected(self):
        program = parse_program(
            "program p procedure main() h, g: handle begin h := new(); g := new() end"
        )
        program.main.body.stmts.append(ast.LoadValue(target="g", source="h"))
        with pytest.raises(TypeCheckError):
            check_program(program)

    def test_expr_type_helper(self):
        assert ExprType.of(ast.SilType.INT) is ExprType.INT
        assert ExprType.of(ast.SilType.HANDLE) is ExprType.HANDLE
