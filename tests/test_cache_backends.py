"""The persistent transfer-cache subsystem: codec, policies, backends, wiring."""

import json

import pytest

from repro.analysis import AnalysisLimits
from repro.analysis.context import AnalysisStats
from repro.analysis.engine import BatchAnalyzer
from repro.analysis.matrix import PathMatrix
from repro.analysis.pathset import PathSet
from repro.analysis.telemetry import WideningTally, widening_scope
from repro.analysis.transfer import (
    TransferCache,
    apply_basic_statement,
    apply_basic_statement_cached,
)
from repro.cache import (
    CacheConfig,
    CacheDecodeError,
    DiskBackend,
    MemoryBackend,
    PolicyCache,
    decode_entry,
    encode_entry,
    open_backend,
    reset_memory_backends,
    shared_memory_backend,
    transfer_key,
)
from repro.sil import ast
from repro.workloads import generate_scenarios, load
from repro.workloads.suite import source


@pytest.fixture(autouse=True)
def _isolated_memory_stores():
    reset_memory_backends()
    yield
    reset_memory_backends()


def sample_matrix(limits=None):
    matrix = PathMatrix(["a", "b", "c"], limits=limits or AnalysisLimits())
    matrix.set("a", "b", PathSet.parse("L1"))
    matrix.set("b", "c", PathSet.parse("S?, D+?"))
    return matrix


class TestCodec:
    def test_transfer_key_is_stable_and_content_addressed(self):
        stmt = ast.CopyHandle(target="a", source="b")
        twin = ast.CopyHandle(target="a", source="b")  # distinct object, same content
        limits = AnalysisLimits()
        key = transfer_key(stmt, limits, sample_matrix())
        assert key == transfer_key(stmt, limits, sample_matrix())
        assert key == transfer_key(twin, limits, sample_matrix())
        assert len(key) == 64 and int(key, 16) >= 0

    def test_key_separates_statement_kinds_with_equal_rendering(self):
        # A scalar assign renders exactly like a handle copy but has a
        # different transfer function; the kind must keep them apart.
        copy_stmt = ast.CopyHandle(target="x", source="y")
        scalar_stmt = ast.ScalarAssign(target="x", expr=ast.Name(ident="y"))
        limits = AnalysisLimits()
        matrix = sample_matrix()
        assert transfer_key(copy_stmt, limits, matrix) != transfer_key(
            scalar_stmt, limits, matrix
        )

    def test_key_depends_on_limits_and_matrix(self):
        stmt = ast.AssignNil(target="a")
        matrix = sample_matrix()
        base = transfer_key(stmt, AnalysisLimits(), matrix)
        assert base != transfer_key(stmt, AnalysisLimits(max_segments=8), matrix)
        other = sample_matrix()
        other.set("a", "c", PathSet.parse("R1"))
        assert base != transfer_key(stmt, AnalysisLimits(), other)

    def test_key_ignores_transfer_cache_size(self):
        # The cache size is a memory knob, not a semantics knob: runs with
        # different sizes must share persistent entries.
        from dataclasses import replace

        stmt = ast.AssignNil(target="a")
        limits = AnalysisLimits()
        resized = replace(limits, transfer_cache_size=7)
        assert transfer_key(stmt, limits, sample_matrix(limits)) == transfer_key(
            stmt, resized, sample_matrix(resized)
        )

    def test_round_trip_is_exact(self):
        limits = AnalysisLimits()
        matrix = sample_matrix(limits)
        stmt = ast.StoreField(target="a", field_name=ast.Field.LEFT, source="c")
        computed = apply_basic_statement(matrix, stmt, limits)
        tally = WideningTally(segment_collapses=2, exact_widenings=1)

        decoded, replayed = decode_entry(encode_entry(computed, tally), limits)
        assert decoded.matrix == computed.matrix
        assert decoded.matrix.handles == computed.matrix.handles
        assert decoded.diagnostics == computed.diagnostics
        assert replayed == tally
        # Decoded matrices are shared like cached ones: sealed.
        with pytest.raises(ValueError, match="sealed"):
            decoded.matrix.add_handle("z")

    def test_decode_fires_no_widening_telemetry(self):
        # Paths are rebuilt verbatim, never re-normalized — even under
        # limits far tighter than the ones the entry was computed with.
        wide = AnalysisLimits(max_segments=16, max_exact_count=64)
        matrix = PathMatrix(["a", "b"], limits=wide)
        matrix.set("a", "b", PathSet.parse("L9L9R9L9R9"))
        stmt = ast.AssignNil(target="c")
        computed = apply_basic_statement(matrix, stmt, wide)
        payload = encode_entry(computed, WideningTally())

        observer = WideningTally()
        with widening_scope(observer):
            decoded, _ = decode_entry(payload, wide)
        assert not observer.fired
        assert decoded.matrix == computed.matrix

    def test_malformed_payloads_raise_decode_error(self):
        limits = AnalysisLimits()
        for payload in ("not json", "{}", json.dumps({"v": 999}),
                        json.dumps({"v": 1, "matrix": {"handles": [], "entries": [["a", "b", "L1&"]]},
                                    "diagnostics": [], "widening": {}})):
            with pytest.raises(CacheDecodeError):
                decode_entry(payload, limits)


class TestPolicyCache:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            PolicyCache(4, policy="random")

    def test_lru_evicts_least_recently_used(self):
        cache = PolicyCache(2, policy="lru")
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now the victim
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_fifo_ignores_touches(self):
        cache = PolicyCache(2, policy="fifo")
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # does not refresh under fifo
        cache.put("c", 3)
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_lfu_evicts_least_frequent(self):
        cache = PolicyCache(2, policy="lfu")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.get("a")
        cache.get("b")
        cache.put("c", 3)  # b has fewer hits than a
        assert "b" not in cache and "a" in cache

    def test_lfu_ties_break_towards_least_recent(self):
        cache = PolicyCache(2, policy="lfu")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.get("b")  # equal frequency; a is older
        cache.put("c", 3)
        assert "a" not in cache and "b" in cache

    def test_put_of_existing_key_is_touch_only(self):
        cache = PolicyCache(2, policy="lru")
        cache.put("a", 1)
        assert cache.put("a", 99) == 0
        assert cache.get("a") == 1  # entries are immutable once admitted

    def test_remove_drops_without_counting_an_eviction(self):
        cache = PolicyCache(2, policy="lfu")
        cache.put("a", 1)
        assert cache.remove("a") is True
        assert cache.remove("a") is False
        assert "a" not in cache and cache.evictions == 0
        # The lazy lfu heap tolerates removed keys on later evictions.
        cache.put("b", 2)
        cache.put("c", 3)
        cache.put("d", 4)
        assert len(cache) == 2 and cache.evictions == 1

    def test_lfu_eviction_correct_under_heavy_touch_churn(self):
        # Many touches per key exercise the lazy-deletion heap (every
        # touch leaves a stale snapshot behind).
        cache = PolicyCache(3, policy="lfu")
        for key, touches in (("a", 5), ("b", 1), ("c", 3)):
            cache.put(key, key)
            for _ in range(touches):
                cache.get(key)
        cache.put("d", "d")  # victim must be b (fewest hits)
        assert "b" not in cache
        cache.get("d")
        cache.get("d")
        cache.put("e", "e")  # now c (3) < a (5), d (2) is fewer than both
        assert "d" not in cache and "a" in cache and "c" in cache


class TestMemoryBackend:
    def test_write_then_get(self):
        backend = MemoryBackend()
        written, evicted = backend.write({"k1": "p1", "k2": "p2"})
        assert (written, evicted) == (2, 0)
        assert backend.get("k1") == "p1"
        assert backend.get("missing") is None
        stats = backend.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["writes"] == 2

    def test_rewrite_of_existing_key_counts_zero(self):
        backend = MemoryBackend()
        backend.write({"k": "p"})
        assert backend.write({"k": "p"}) == (0, 0)

    def test_shared_namespace_returns_same_store(self):
        first = shared_memory_backend("ns")
        second = shared_memory_backend("ns")
        assert first is second
        with pytest.raises(ValueError, match="already open with policy"):
            shared_memory_backend("ns", policy="lfu")

    def test_clear_resets(self):
        backend = MemoryBackend()
        backend.write({"k": "p"})
        assert backend.clear() == 1
        assert len(backend) == 0 and backend.stats()["writes"] == 0


class TestDiskBackend:
    def test_persists_across_reopen(self, tmp_path):
        store = DiskBackend(str(tmp_path))
        assert store.write({"k1": "p1"}) == (1, 0)
        store.close()
        reopened = DiskBackend(str(tmp_path))
        assert reopened.get("k1") == "p1"
        assert len(reopened) == 1
        reopened.close()

    def test_content_addressed_writes_are_idempotent(self, tmp_path):
        store = DiskBackend(str(tmp_path))
        store.write({"k": "p"})
        assert store.write({"k": "p"}) == (0, 0)
        store.close()

    def test_capacity_enforced_by_policy(self, tmp_path):
        store = DiskBackend(str(tmp_path), policy="lru", capacity=2)
        store.write({"a": "1", "b": "2"})
        assert store.get("a") == "1"  # touch a in a later flush epoch
        written, evicted = store.write({"c": "3"})
        assert (written, evicted) == (1, 1)
        assert store.get("b") is None  # b was least recently used
        assert store.get("a") == "1" and store.get("c") == "3"
        store.close()

    def test_fifo_capacity_evicts_oldest_insertion(self, tmp_path):
        store = DiskBackend(str(tmp_path), policy="fifo", capacity=2)
        store.write({"a": "1", "b": "2"})
        store.get("a")
        store.write({"c": "3"})
        # a is oldest by creation; its touch does not save it under fifo.
        assert store.get("a") is None and store.get("b") == "2"
        store.close()

    def test_discard_reclassifies_the_hit_and_deletes_the_row(self, tmp_path):
        store = DiskBackend(str(tmp_path))
        store.write({"bad": "garbage"})
        assert store.get("bad") == "garbage"
        store.discard("bad")
        assert store.get("bad") is None
        # The failed lookup reads as a miss, not a hit; rewriting works.
        assert store.write({"bad": "repaired"}) == (1, 0)
        stats = store.stats()
        assert stats["hits"] == 0 and stats["misses"] == 2
        assert store.get("bad") == "repaired"
        store.close()

    def test_stats_report_the_policy_the_store_was_written_under(self, tmp_path):
        store = DiskBackend(str(tmp_path), policy="lfu")
        store.write({"k": "p"})
        store.close()
        # A later open with a different (e.g. default) policy — exactly what
        # `repro cache stats` does — must still report the writer's policy.
        reader = DiskBackend(str(tmp_path), policy="lru")
        assert reader.stats()["policy"] == "lfu"
        reader.close()

    def test_stats_accumulate_across_sessions(self, tmp_path):
        store = DiskBackend(str(tmp_path))
        store.write({"k": "p"})
        store.get("k")
        store.get("absent")
        store.write({})
        store.close()
        reopened = DiskBackend(str(tmp_path))
        stats = reopened.stats()
        assert stats["writes"] == 1 and stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1 and stats["size_bytes"] > 0
        assert reopened.clear() == 1
        assert reopened.stats()["writes"] == 0
        reopened.close()


class TestCacheConfig:
    def test_disk_requires_directory(self):
        with pytest.raises(ValueError, match="requires a directory"):
            CacheConfig(backend="disk", directory=None).validated()

    def test_unknown_backend_and_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown cache backend"):
            CacheConfig(backend="redis", directory="x").validated()
        with pytest.raises(ValueError, match="unknown cache policy"):
            CacheConfig(backend="memory", policy="mru").validated()

    def test_open_backend_dispatches(self, tmp_path):
        disk = open_backend(CacheConfig(backend="disk", directory=str(tmp_path)))
        assert disk.kind == "disk"
        disk.close()
        memory = open_backend(CacheConfig(backend="memory"))
        assert memory.kind == "memory"


class TestTransferCachePersistentTier:
    def make_stmt_and_matrix(self):
        matrix = PathMatrix(["a", "b", "c"])
        matrix.set("b", "c", PathSet.parse("L1"))
        return ast.CopyHandle(target="a", source="b"), matrix

    def test_read_through_promotes_and_replays(self):
        stmt, matrix = self.make_stmt_and_matrix()
        backend = MemoryBackend()

        cold_cache = TransferCache(capacity=64, backend=backend)
        cold = AnalysisStats()
        computed = apply_basic_statement_cached(matrix, stmt, cache=cold_cache, stats=cold)
        cold_cache.flush(cold)
        assert cold.persistent_cache_misses == 1 and cold.persistent_cache_writes == 1

        # A fresh in-memory cache over the same backend: the lookup misses
        # memory, hits the store, decodes and promotes.
        warm_cache = TransferCache(capacity=64, backend=backend)
        warm = AnalysisStats()
        twin = ast.CopyHandle(target="a", source="b")
        served = apply_basic_statement_cached(matrix.copy(), twin, cache=warm_cache, stats=warm)
        assert served.matrix == computed.matrix
        assert warm.persistent_cache_hits == 1 and warm.transfer_cache_misses == 0
        # The promoted entry now answers from memory.
        again = apply_basic_statement_cached(matrix.copy(), twin, cache=warm_cache, stats=warm)
        assert again is served
        assert warm.transfer_cache_hits == 2 and warm.persistent_cache_hits == 1

    def test_pending_buffer_answers_before_flush(self):
        # Same statement content at two distinct objects: the second lookup
        # misses the id()-keyed memory layer but is deduplicated through
        # the unflushed delta buffer.
        stmt, matrix = self.make_stmt_and_matrix()
        cache = TransferCache(capacity=64, backend=MemoryBackend())
        stats = AnalysisStats()
        apply_basic_statement_cached(matrix, stmt, cache=cache, stats=stats)
        twin = ast.CopyHandle(target="a", source="b")
        apply_basic_statement_cached(matrix.copy(), twin, cache=cache, stats=stats)
        assert stats.persistent_cache_hits == 1
        assert stats.transfer_cache_misses == 1
        written, _ = cache.flush(stats)
        assert written == 1  # the dedup never produced a second delta

    def test_corrupt_store_entry_self_heals(self, tmp_path):
        # A payload that fails to decode must be discarded and re-admitted
        # from the recomputation at the next flush — not ignored forever.
        import sqlite3

        from repro.cache import STORE_FILENAME

        stmt, matrix = self.make_stmt_and_matrix()
        config = CacheConfig(backend="disk", directory=str(tmp_path))
        cold = BatchAnalyzer(limits=AnalysisLimits(), cache=config)
        reference = apply_basic_statement_cached(
            matrix, stmt, cache=cold.cache, stats=cold.stats
        )
        cold.close()

        connection = sqlite3.connect(str(tmp_path / STORE_FILENAME))
        (key,) = connection.execute("SELECT key FROM entries").fetchone()
        connection.execute("UPDATE entries SET payload = 'corrupt'")
        connection.commit()
        connection.close()

        warm = BatchAnalyzer(limits=AnalysisLimits(), cache=config)
        healed = apply_basic_statement_cached(
            matrix.copy(), stmt, cache=warm.cache, stats=warm.stats
        )
        assert healed.matrix == reference.matrix
        assert warm.stats.persistent_cache_hits == 0  # corrupt row is a miss
        assert warm.stats.transfer_cache_misses == 1
        warm.close()

        # The store now holds the repaired payload: a third run hits it.
        third = BatchAnalyzer(limits=AnalysisLimits(), cache=config)
        assert apply_basic_statement_cached(
            matrix.copy(), stmt, cache=third.cache, stats=third.stats
        ).matrix == reference.matrix
        assert third.stats.persistent_cache_hits == 1
        store = DiskBackend(str(tmp_path))
        row = store._connection.execute(
            "SELECT payload FROM entries WHERE key = ?", (key,)
        ).fetchone()
        assert row[0] != "corrupt"
        store.close()
        third.close()

    def test_memory_evictions_are_counted_into_stats(self):
        cache = TransferCache(capacity=1)
        stats = AnalysisStats()
        matrix = PathMatrix(["v0", "v1", "v2"])
        for index in range(3):
            apply_basic_statement_cached(
                matrix, ast.AssignNil(target=f"v{index}"), cache=cache, stats=stats
            )
        assert stats.transfer_cache_evictions == 2
        assert cache.evictions == 2


class TestWarmBatchAnalyzer:
    """Satellite: persistent hits must replay widening counters exactly."""

    def deep_program(self):
        scenario = generate_scenarios(1, base_seed=7, families=["deep"])[0]
        from repro.sil.normalize import parse_and_normalize

        return parse_and_normalize(scenario.source)

    def test_warm_run_replays_widening_telemetry_exactly(self, tmp_path):
        program, info = self.deep_program()
        config = CacheConfig(backend="disk", directory=str(tmp_path))

        cold = BatchAnalyzer(cache=config)
        cold_result = cold.analyze(program, info)
        cold.close()
        assert cold.stats.widening_fired()  # deep scenarios widen at defaults

        warm = BatchAnalyzer(cache=config)
        warm_result = warm.analyze(program, info)
        warm.close()

        assert warm.stats.widening_counters() == cold.stats.widening_counters()
        assert warm.stats.persistent_cache_hits > 0
        assert warm.stats.transfer_cache_misses == 0  # nothing recomputed
        assert warm_result.canonical() == cold_result.canonical()

    def test_warm_run_under_higher_cache_pressure_still_bit_identical(self, tmp_path):
        # A tiny in-memory layer forces constant eviction and re-reading
        # through the persistent tier; outcomes must not change.
        from dataclasses import replace

        program, info = load("add_and_reverse", depth=3)
        config = CacheConfig(backend="disk", directory=str(tmp_path))
        cold = BatchAnalyzer(cache=config)
        reference = cold.analyze(program, info).canonical()
        cold.close()

        tiny = replace(AnalysisLimits(), transfer_cache_size=2)
        warm = BatchAnalyzer(limits=tiny, cache=config)
        assert warm.analyze(program, info).canonical() == reference
        assert warm.stats.transfer_cache_evictions > 0
        assert warm.stats.transfer_cache_misses == 0
        warm.close()

    def test_memory_backend_warms_across_batches_in_process(self):
        program, info = load("tree_add", depth=3)
        config = CacheConfig(backend="memory", directory="warm-test")
        first = BatchAnalyzer(cache=config)
        reference = first.analyze(program, info).canonical()
        first.close()
        second = BatchAnalyzer(cache=config)
        assert second.analyze(program, info).canonical() == reference
        assert second.stats.persistent_cache_hits > 0
        assert second.stats.transfer_cache_misses == 0
        second.close()


class TestStandalonePolicySelection:
    def test_batch_analyzer_policy_without_persistent_tier(self):
        batch = BatchAnalyzer(policy="lfu")
        assert batch.cache.policy == "lfu" and batch.cache.backend is None

    def test_cache_config_policy_still_applies_by_default(self, tmp_path):
        config = CacheConfig(backend="disk", directory=str(tmp_path), policy="fifo")
        batch = BatchAnalyzer(cache=config)
        assert batch.cache.policy == "fifo"
        batch.close()


class TestStatsRoundTrip:
    def test_new_counters_merge_and_round_trip(self):
        stats = AnalysisStats(
            persistent_cache_hits=3,
            persistent_cache_misses=2,
            persistent_cache_writes=2,
            persistent_cache_evictions=1,
            transfer_cache_evictions=4,
        )
        assert AnalysisStats.from_dict(stats.as_dict()) == stats
        merged = stats.merge(stats)
        assert merged.persistent_cache_hits == 6
        assert merged.persistent_cache_hit_rate == pytest.approx(6 / 10)
        assert stats.persistent_cache_hit_rate == pytest.approx(3 / 5)
