"""The daemon's live metrics: per-op accounting and the ``metrics`` op.

A scripted session against a real daemon, then a ``metrics`` scrape whose
per-op request counters must equal exactly the requests the script sent.
Two accounting subtleties are pinned on purpose:

* the request counter increments *before* dispatch, so a ``metrics``
  scrape sees its own request counted;
* the latency histogram is observed *after* the response is built, so
  the scrape's own ``server.request_seconds{op=metrics}`` entry is not
  yet in the snapshot it returns.

Also covered: the Prometheus text exposition, the error path for an
unknown format, byte/connection accounting, and the slow-request
counter under a sub-microsecond threshold.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.server import AnalysisClient, AnalysisServer, ServerConfig, ServerError
from repro.server.daemon import KNOWN_OPS


@pytest.fixture
def server(tmp_path):
    daemon = AnalysisServer(
        ServerConfig(socket_path=str(tmp_path / "metrics.sock"))
    ).start_background()
    yield daemon
    daemon.request_stop()
    assert daemon.join(timeout=10)


@pytest.fixture
def client(server):
    with AnalysisClient(socket_path=server.config.socket_path, timeout=30) as handle:
        yield handle


def _counter(metrics: dict, key: str) -> int:
    entry = metrics["counters"].get(key)
    return entry["value"] if entry else 0


class TestMetricsOp:
    def test_metrics_is_a_known_op(self, client):
        assert "metrics" in KNOWN_OPS
        assert "metrics" in client.protocol_version()["ops"]

    def test_scripted_session_counters_match_exactly(self, client):
        # The script: 1 ping, 1 protocol_version, 2 analyzes, 1 cache_stats.
        client.ping()
        client.protocol_version()
        client.analyze(workloads=["tree_add"])
        client.analyze(workloads=["list_walk"])
        client.cache_stats()
        response = client.metrics()
        metrics = response["metrics"]
        assert _counter(metrics, "server.requests_total{op=ping}") == 1
        assert _counter(metrics, "server.requests_total{op=protocol_version}") == 1
        assert _counter(metrics, "server.requests_total{op=analyze}") == 2
        assert _counter(metrics, "server.requests_total{op=cache_stats}") == 1
        # Counted before dispatch: the scrape sees itself.
        assert _counter(metrics, "server.requests_total{op=metrics}") == 1
        assert _counter(metrics, "server.errors_total{op=analyze}") == 0

        # Latency histograms: one entry per *completed* request, so the
        # scrape's own latency is not yet recorded.
        histograms = metrics["histograms"]
        assert histograms["server.request_seconds{op=analyze}"]["count"] == 2
        assert histograms["server.request_seconds{op=ping}"]["count"] == 1
        assert "server.request_seconds{op=metrics}" not in histograms

        # Tail tables are derived from the same buckets.
        tails = response["tails"]["server.request_seconds"]
        assert tails["analyze"]["count"] == 2
        assert tails["_overall"]["count"] >= 5
        # The analyze runs also folded suite metrics into the registry.
        assert _counter(metrics, "suite.workloads_analyzed") == 2

    def test_second_scrape_sees_the_first(self, client):
        client.metrics()
        metrics = client.metrics()["metrics"]
        assert _counter(metrics, "server.requests_total{op=metrics}") == 2
        assert metrics["histograms"]["server.request_seconds{op=metrics}"]["count"] == 1

    def test_unknown_op_counts_as_unknown(self, client):
        response = client.call("definitely_not_an_op")
        assert response["ok"] is False
        metrics = client.metrics()["metrics"]
        assert _counter(metrics, "server.requests_total{op=unknown}") == 1
        assert _counter(metrics, "server.errors_total{op=unknown}") == 1

    def test_connection_and_byte_accounting(self, client):
        client.ping()
        metrics = client.metrics()["metrics"]
        assert _counter(metrics, "server.bytes_received_total") > 0
        assert _counter(metrics, "server.bytes_sent_total") > 0
        assert _counter(metrics, "server.connections_total") >= 1
        gauges = metrics["gauges"]
        assert gauges["server.connections"]["value"] >= 1
        assert gauges["server.inflight"]["value"] == 0
        assert gauges["server.queue_depth"]["value"] == 0

    def test_cache_stats_requests_by_op_includes_metrics(self, client):
        client.metrics()
        by_op = client.cache_stats()["server"]["requests_by_op"]
        assert by_op.get("metrics") == 1


class TestPrometheusFormat:
    def test_text_exposition(self, client):
        client.ping()
        response = client.metrics(format="prometheus")
        assert response["format"] == "prometheus"
        text = response["text"]
        assert "# TYPE server_requests_total counter" in text
        assert 'server_requests_total{op="ping"} 1' in text
        assert "# TYPE server_request_seconds histogram" in text
        assert 'server_request_seconds_bucket{op="ping",le="+Inf"} 1' in text
        assert "# TYPE server_connections gauge" in text

    def test_unknown_format_is_a_bad_request(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.metrics(format="xml")
        assert excinfo.value.code == "bad_request"
        # The connection survives a bad request.
        assert client.ping()


class TestSlowRequestLog:
    def test_slow_requests_counted_under_a_tiny_threshold(self, tmp_path):
        config = ServerConfig(
            socket_path=str(tmp_path / "slow.sock"),
            slow_request_threshold=1e-9,
        )
        daemon = AnalysisServer(config).start_background()
        try:
            with AnalysisClient(socket_path=config.socket_path, timeout=30) as client:
                client.analyze(workloads=["tree_add"])
                metrics = client.metrics()["metrics"]
                assert _counter(metrics, "server.slow_requests_total{op=analyze}") == 1
        finally:
            daemon.request_stop()
            assert daemon.join(timeout=10)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(socket_path="/tmp/x.sock", slow_request_threshold=0).validated()
