"""Golden comparison: worklist pipeline engine vs. the seed reference engine.

The refactored engine (worklist solver + hash-consed domain + memoized
transfers) must be *observationally identical* to the seed's
rounds-until-stable engine on every workload: same entry matrices, same
per-statement matrices, same diagnostics (contents *and* order), same loop
histories.  It must also do strictly less interprocedural work than the
seed's rounds x procedures product.
"""

import pytest

from repro.analysis import analyze_many, analyze_program, analyze_program_reference
from repro.analysis.limits import AnalysisLimits
from repro.workloads import WORKLOADS, analyze_suite, load


ALL_WORKLOADS = sorted(WORKLOADS)


def assert_identical(new, ref):
    assert new.entry_matrices == ref.entry_matrices
    assert set(new.entry_matrices) == set(ref.entry_matrices)

    # Diagnostics: contents and order.
    new_diags = [(p, d.kind, d.certainty, d.statement, d.detail) for p, d in new.recorder.diagnostics]
    ref_diags = [(p, d.kind, d.certainty, d.statement, d.detail) for p, d in ref.recorder.diagnostics]
    assert new_diags == ref_diags

    # Per-statement matrices at every recorded program point.
    assert set(new.recorder.before) == set(ref.recorder.before)
    assert set(new.recorder.after) == set(ref.recorder.after)
    for stmt_id, matrix in ref.recorder.before.items():
        assert new.recorder.before[stmt_id] == matrix
    for stmt_id, matrix in ref.recorder.after.items():
        assert new.recorder.after[stmt_id] == matrix

    # Loop iteration histories (Figure 3).
    assert set(new.recorder.loop_histories) == set(ref.recorder.loop_histories)
    for stmt_id, history in ref.recorder.loop_histories.items():
        assert new.recorder.loop_histories[stmt_id] == history

    # Summaries.
    assert set(new.summaries) == set(ref.summaries)
    for name, summary in ref.summaries.items():
        other = new.summaries[name]
        assert other.update_params == summary.update_params
        assert other.modifies_links == summary.modifies_links
        assert other.result_derived_from == summary.result_derived_from
        assert other.result_may_be_fresh == summary.result_may_be_fresh


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_pipeline_matches_reference(name):
    program, info = load(name, depth=3)
    new = analyze_program(program, info)
    ref = analyze_program_reference(program, info)
    assert_identical(new, ref)


@pytest.mark.parametrize("name", ["add_and_reverse", "bitonic_sort", "bst_build"])
def test_worklist_does_less_work_than_rounds(name):
    program, info = load(name, depth=3)
    new = analyze_program(program, info)
    ref = analyze_program_reference(program, info)
    rounds_times_procedures = ref.iterations * len(ref.entry_matrices)
    assert new.stats.worklist_pops < rounds_times_procedures


def test_pipeline_matches_reference_under_tight_limits():
    limits = AnalysisLimits(max_exact_count=2, max_segments=2, max_paths_per_entry=3)
    program, info = load("add_and_reverse", depth=3)
    new = analyze_program(program, info, limits=limits)
    ref = analyze_program_reference(program, info, limits=limits)
    assert_identical(new, ref)


def test_reanalysis_is_cache_served_and_identical():
    program, info = load("tree_copy", depth=3)
    first = analyze_program(program, info)
    second = analyze_program(program, info)
    assert_identical(second, first)
    assert second.stats.transfer_cache_hits > 0
    assert second.stats.transfer_cache_hit_rate == 1.0


def test_analyze_many_matches_individual_runs():
    names = ["tree_add", "tree_mirror", "list_walk"]
    pairs = [load(name, depth=3) for name in names]
    batch = analyze_many(pairs)
    assert len(batch) == len(names)
    shared_stats = batch[0].stats
    assert all(result.stats is shared_stats for result in batch)
    assert shared_stats.programs_analyzed == len(names)
    for (program, info), result in zip(pairs, batch):
        ref = analyze_program_reference(program, info)
        assert_identical(result, ref)


def test_analyze_suite_returns_named_results():
    results = analyze_suite(["tree_add", "swap_children"], depth=3)
    assert set(results) == {"tree_add", "swap_children"}
    assert results["tree_add"].entry_matrices
    assert results["tree_add"].stats is results["swap_children"].stats
