"""Sharded suite runner: stats merging, bit-identity, failure isolation,
streaming collection and persistent warm starts."""

import pytest

from repro.analysis import AnalysisLimits
from repro.analysis.context import AnalysisStats
from repro.analysis.pathset import intern_table_sizes
from repro.cache import CacheConfig
from repro.workloads import (
    WORKLOADS,
    ShardedSuiteReport,
    ShardedSuiteRunner,
    analyze_suite,
    generate_scenarios,
    source,
)
from repro.workloads.suite import SuiteResult

BROKEN_SOURCE = """
program broken

procedure main()
  x: int
begin
  x := y + 1
end
"""


def make_stats(**overrides):
    stats = AnalysisStats(
        worklist_pops=7,
        entry_updates=5,
        statements_visited=120,
        loop_iterations=3,
        transfer_cache_hits=40,
        transfer_cache_misses=9,
        matrices_allocated=64,
        programs_analyzed=2,
    )
    for key, value in overrides.items():
        setattr(stats, key, value)
    return stats


class TestAnalysisStatsMerge:
    def test_as_dict_from_dict_round_trip(self):
        stats = make_stats()
        rebuilt = AnalysisStats.from_dict(stats.as_dict())
        assert rebuilt == stats

    def test_from_dict_ignores_derived_and_global_keys(self):
        snapshot = make_stats().as_dict()
        assert "transfer_cache_hit_rate" in snapshot  # derived, present in dict
        rebuilt = AnalysisStats.from_dict(snapshot)
        # The derived property is recomputed, not stored.
        assert rebuilt.transfer_cache_hit_rate == pytest.approx(40 / 49)

    def test_merge_sums_every_counter(self):
        first, second = make_stats(), make_stats(worklist_pops=11, programs_analyzed=3)
        merged = first.merge(second)
        for name in AnalysisStats.COUNTER_FIELDS:
            assert getattr(merged, name) == getattr(first, name) + getattr(second, name)
        # merge() is non-destructive.
        assert first.worklist_pops == 7 and second.worklist_pops == 11

    def test_merge_split_round_trip(self):
        """Splitting counters into shards and merging them back is lossless."""
        whole = make_stats()
        parts = [AnalysisStats(), AnalysisStats(), AnalysisStats()]
        for name in AnalysisStats.COUNTER_FIELDS:
            total = getattr(whole, name)
            setattr(parts[0], name, total // 3)
            setattr(parts[1], name, total // 3)
            setattr(parts[2], name, total - 2 * (total // 3))
        assert AnalysisStats().merge(*parts) == whole

    def test_merge_identity(self):
        assert AnalysisStats().merge() == AnalysisStats()


class TestShardedEqualsSingleProcess:
    def test_identical_on_every_named_workload(self):
        """Sharded and single-process runs produce identical path matrices."""
        runner = ShardedSuiteRunner.from_names(depth=3, shards=3)
        sharded = runner.run()
        single = runner.run_single_process()

        assert sharded.ok and single.ok
        assert sorted(sharded.results) == sorted(WORKLOADS)
        assert sharded.matches(single)
        # Not just "matches": every per-point matrix encoding is equal.
        for name in WORKLOADS:
            assert sharded.results[name] == single.results[name]

    def test_identical_on_generated_scenarios(self):
        scenarios = generate_scenarios(8, base_seed=21)
        runner = ShardedSuiteRunner.from_scenarios(scenarios, shards=4)
        assert runner.run().matches(runner.run_single_process())

    def test_merged_stats_equal_shard_sums(self):
        runner = ShardedSuiteRunner.from_names(depth=3, shards=3)
        report = runner.run()
        assert len(report.shards) == 3
        for name in AnalysisStats.COUNTER_FIELDS:
            assert getattr(report.stats, name) == sum(
                getattr(shard.stats, name) for shard in report.shards
            )
        assert report.stats.programs_analyzed == len(WORKLOADS)

    def test_intern_tables_sized_per_worker_and_summed(self):
        """Interning tables are reported as per-worker growth and sum exactly.

        The hash-consing tables are process-global: absolute sizes read in
        the parent would silently reflect only the parent's own interning
        (fork workers inherit them pre-populated, spawn workers start
        empty).  Each shard therefore ships its before/after *delta*, and
        the merged report sums the deltas across workers.
        """
        scenarios = generate_scenarios(6, base_seed=97)
        runner = ShardedSuiteRunner.from_scenarios(scenarios, shards=3)
        report = runner.run()
        assert report.ok
        expected_tables = set(intern_table_sizes())
        for shard in report.shards:
            assert set(shard.intern_tables) == expected_tables
            assert all(size >= 0 for size in shard.intern_tables.values())
        for table in expected_tables:
            assert report.intern_tables[table] == sum(
                shard.intern_tables[table] for shard in report.shards
            )
        # Fresh scenario content interns fresh domain values in the workers,
        # which only per-worker sizing can observe.
        assert sum(report.intern_tables.values()) > 0
        payload = report.as_dict()
        assert payload["intern_tables"] == report.intern_tables
        assert all("intern_tables" in shard for shard in payload["shards"])

    def test_round_robin_preserves_input_order_in_results(self):
        runner = ShardedSuiteRunner.from_names(depth=3, shards=4)
        report = runner.run()
        assert list(report.results) == list(WORKLOADS)

    def test_single_shard_runs_inline(self):
        runner = ShardedSuiteRunner.from_names(names=["tree_add"], depth=3, shards=1)
        report = runner.run()
        assert report.ok and list(report.results) == ["tree_add"]
        assert len(report.shards) == 1

    def test_as_dict_is_json_shaped(self):
        import json

        runner = ShardedSuiteRunner.from_names(names=["tree_add", "list_walk"], depth=3)
        payload = runner.run().as_dict()
        assert payload["workloads_analyzed"] == 2
        assert len(payload["shards"]) == 2
        json.dumps(payload)  # must be JSON-serializable as-is
        # Per-workload widening telemetry rides along in the payload.
        assert sorted(payload["widening"]) == ["list_walk", "tree_add"]
        for row in payload["widening"].values():
            assert "segment_collapses" in row and "final_limits" in row


class TestShardingSafeWideningCounts:
    """The satellite regression: widening telemetry survives sharding exactly.

    The old process-global ``segment_truncation_count`` silently lost every
    count accumulated inside worker processes.  The per-context counters
    are shipped back with each shard's stats, and transfer-cache hits
    replay the counts captured at compute time — so the merged sharded
    counters must equal the single-process run's, workload by workload.
    """

    def test_merged_sharded_widening_equals_single_process(self):
        # Includes the dag/deep families, which widen at default limits.
        scenarios = generate_scenarios(12, base_seed=33)
        runner = ShardedSuiteRunner.from_scenarios(scenarios, shards=3)
        sharded = runner.run()
        single = runner.run_single_process()
        assert sharded.ok and single.ok
        for name in AnalysisStats.WIDENING_FIELDS + ("adaptive_escalations",):
            assert getattr(sharded.stats, name) == getattr(single.stats, name), name
        # Something must actually have widened for this test to mean anything.
        assert any(sharded.stats.widening_counters().values())
        # Per-workload rows agree too, not just the totals.
        assert sharded.widening == single.widening

    def test_widening_counts_shard_safe_under_adaptive_limits(self):
        scenarios = generate_scenarios(8, base_seed=90, families=["dag", "deep"])
        runner = ShardedSuiteRunner.from_scenarios(
            scenarios, shards=4, limits=AnalysisLimits.adaptive()
        )
        sharded = runner.run()
        single = runner.run_single_process()
        assert sharded.matches(single)
        assert sharded.stats.adaptive_escalations == single.stats.adaptive_escalations
        assert sharded.widening == single.widening
        # The escalation policy recorded a stepped-up final rung somewhere.
        assert any(
            row["final_limits"]["max_segments"] > AnalysisLimits().max_segments
            for row in sharded.widening.values()
            if row["adaptive_escalations"]
        )


class TestStreamingCollection:
    """run() consumes shard outputs as they finish (imap_unordered)."""

    def test_progress_receives_every_shard_output(self):
        runner = ShardedSuiteRunner.from_names(depth=3, shards=3)
        seen = []
        report = runner.run(progress=seen.append)
        assert sorted(output["shard"] for output in seen) == [0, 1, 2]
        # Each streamed output already carries that shard's per-workload
        # results and failures — nothing waits for the final barrier.
        streamed = {name for output in seen for name in output["results"]}
        assert streamed == set(report.results) == set(WORKLOADS)
        for output in seen:
            assert set(output["workloads"]) >= set(output["results"])

    def test_streaming_does_not_change_the_merged_report(self):
        runner = ShardedSuiteRunner.from_names(depth=3, shards=2)
        with_progress = runner.run(progress=lambda output: None)
        without_progress = runner.run()
        assert with_progress.matches(without_progress)

    def test_results_digest_tracks_matches(self):
        runner = ShardedSuiteRunner.from_names(names=["tree_add", "list_walk"], depth=3)
        first, second = runner.run(), runner.run_single_process()
        assert first.matches(second)
        assert first.results_digest() == second.results_digest()
        assert first.as_dict()["results_digest"] == first.results_digest()


class TestPersistentWarmStart:
    """Acceptance: a sharded warm run against a populated store is
    bit-identical to a cold single-process run, with the persistent
    counters merged per shard."""

    def test_sharded_warm_run_bit_identical_to_cold_single_process(self, tmp_path):
        scenarios = generate_scenarios(6, base_seed=5)
        config = CacheConfig(backend="disk", directory=str(tmp_path))

        # Cold single-process run populates the store.
        cold_runner = ShardedSuiteRunner.from_scenarios(scenarios, shards=1, cache=config)
        cold = cold_runner.run_single_process()
        assert cold.ok and cold.stats.persistent_cache_writes > 0

        # Sharded warm run against the populated store.
        warm_runner = ShardedSuiteRunner.from_scenarios(scenarios, shards=3, cache=config)
        warm = warm_runner.run()
        assert warm.matches(cold)
        assert warm.results_digest() == cold.results_digest()
        assert warm.stats.persistent_cache_hits > 0
        assert warm.stats.transfer_cache_misses == 0  # nothing recomputed
        assert warm.stats.persistent_cache_hit_rate == pytest.approx(1.0)
        # Widening telemetry replays exactly from the stored tallies.
        assert warm.stats.widening_counters() == cold.stats.widening_counters()
        assert warm.widening == cold.widening

    def test_persistent_counters_merge_per_shard(self, tmp_path):
        config = CacheConfig(backend="disk", directory=str(tmp_path))
        runner = ShardedSuiteRunner.from_names(depth=3, shards=3, cache=config)
        report = runner.run()
        persistent_fields = (
            "persistent_cache_hits",
            "persistent_cache_misses",
            "persistent_cache_writes",
            "persistent_cache_evictions",
            "transfer_cache_evictions",
        )
        for name in persistent_fields:
            assert getattr(report.stats, name) == sum(
                getattr(shard.stats, name) for shard in report.shards
            ), name
        assert report.stats.persistent_cache_misses > 0
        payload = report.as_dict()
        assert payload["stats"]["persistent_cache_writes"] > 0
        assert "persistent_cache_hit_rate" in payload["stats"]

    def test_warm_run_with_adaptive_limits_matches(self, tmp_path):
        scenarios = generate_scenarios(4, base_seed=90, families=["dag", "deep"])
        config = CacheConfig(backend="disk", directory=str(tmp_path))
        limits = AnalysisLimits.adaptive()
        cold = ShardedSuiteRunner.from_scenarios(
            scenarios, shards=1, limits=limits, cache=config
        ).run_single_process()
        warm = ShardedSuiteRunner.from_scenarios(
            scenarios, shards=2, limits=limits, cache=config
        ).run()
        assert warm.matches(cold)
        assert warm.stats.adaptive_escalations == cold.stats.adaptive_escalations
        assert warm.widening == cold.widening
        assert warm.stats.transfer_cache_misses == 0


class TestMatchesComparesFailurePayloads:
    """Satellite regression: ``matches`` must compare failure *payloads*."""

    def make_report(self, failures):
        return ShardedSuiteReport(results={}, failures=failures, stats=AnalysisStats())

    def test_same_keys_different_messages_do_not_match(self):
        first = self.make_report({"broken": "TypeCheckError: y is undeclared"})
        second = self.make_report({"broken": "ParseError: unexpected token"})
        assert not first.matches(second)

    def test_identical_payloads_match(self):
        failures = {"broken": "TypeCheckError: y is undeclared"}
        assert self.make_report(dict(failures)).matches(self.make_report(dict(failures)))


class TestFailureIsolation:
    def test_analyze_suite_surfaces_failures(self, monkeypatch):
        monkeypatch.setitem(WORKLOADS, "broken", BROKEN_SOURCE)
        results = analyze_suite(["tree_add", "broken", "list_walk"], depth=3)
        assert isinstance(results, SuiteResult)
        assert sorted(results) == ["list_walk", "tree_add"]
        assert set(results.failures) == {"broken"}
        assert isinstance(results.failures["broken"], Exception)
        # The shared stats object is reachable and covers the successes.
        assert results.stats.programs_analyzed == 2
        assert results["tree_add"].stats is results.stats

    def test_analyze_suite_unknown_name_is_a_failure_not_an_abort(self):
        results = analyze_suite(["tree_add", "no_such_workload"], depth=3)
        assert "tree_add" in results
        assert isinstance(results.failures["no_such_workload"], KeyError)

    def test_sharded_runner_surfaces_failures(self):
        items = [
            ("good", source("tree_add", depth=3)),
            ("broken", BROKEN_SOURCE),
            ("also_good", source("list_walk", depth=3)),
        ]
        runner = ShardedSuiteRunner(items, shards=2)
        report = runner.run()
        assert sorted(report.results) == ["also_good", "good"]
        assert set(report.failures) == {"broken"}
        assert "TypeCheckError" in report.failures["broken"]
        assert not report.ok
        assert report.matches(runner.run_single_process())

    def test_duplicate_names_rejected(self):
        text = source("tree_add", depth=3)
        with pytest.raises(ValueError, match="duplicate"):
            ShardedSuiteRunner([("same", text), ("same", text)])
