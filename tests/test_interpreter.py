"""Unit tests for the SIL interpreter (semantics, costs, errors)."""

import pytest

from repro.runtime import CostModel, Heap, Interpreter, run_program, run_source
from repro.sil import ast
from repro.sil.errors import SilRuntimeError
from repro.sil.normalize import parse_and_normalize
from repro.workloads import load


def run(source, **kwargs):
    return run_source(source, **kwargs)


def wrap(body, decls="a, b, c: handle; x, y, z: int"):
    return f"program p procedure main() {decls} begin {body} end"


class TestScalarSemantics:
    def test_arithmetic(self):
        result = run(wrap("x := 2 + 3 * 4; y := x - 20; z := y * y"))
        assert result.main_locals["x"] == 14
        assert result.main_locals["y"] == -6
        assert result.main_locals["z"] == 36

    def test_div_and_mod_truncate_toward_zero(self):
        result = run(wrap("x := 7 div 2; y := 0 - 7; y := y div 2; z := 7 mod 2"))
        assert result.main_locals["x"] == 3
        assert result.main_locals["y"] == -3
        assert result.main_locals["z"] == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(SilRuntimeError):
            run(wrap("x := 0; y := 1 div x"))

    def test_uninitialized_int_is_zero(self):
        result = run(wrap("y := x"))
        assert result.main_locals["y"] == 0

    def test_comparison_chain_in_condition(self):
        result = run(wrap("x := 3; if x > 1 and x < 5 then y := 1 else y := 2"))
        assert result.main_locals["y"] == 1


class TestHandleSemantics:
    def test_new_and_field_updates(self):
        result = run(wrap("a := new(); a.value := 7; b := a; x := b.value"))
        assert result.main_locals["x"] == 7

    def test_handles_share_nodes(self):
        result = run(wrap("a := new(); b := a; b.value := 9; x := a.value"))
        assert result.main_locals["x"] == 9

    def test_nil_initialization(self):
        result = run(wrap("if a = nil then x := 1"))
        assert result.main_locals["x"] == 1

    def test_nil_dereference_raises(self):
        with pytest.raises(SilRuntimeError):
            run(wrap("x := a.value"))

    def test_link_updates_build_structure(self):
        result = run(wrap("a := new(); b := new(); c := new(); a.left := b; a.right := c; b.value := 1; c.value := 2; x := a.left.value + a.right.value"))
        assert result.main_locals["x"] == 3

    def test_detach_with_nil(self):
        result = run(wrap("a := new(); a.left := new(); a.left := nil; if a.left = nil then x := 1"))
        assert result.main_locals["x"] == 1

    def test_heap_counts_allocations(self):
        result = run(wrap("a := new(); b := new(); c := new()"))
        assert len(result.heap) == 3


class TestControlFlow:
    def test_while_loop(self):
        result = run(wrap("x := 0; y := 0; while x < 10 do begin y := y + x; x := x + 1 end"))
        assert result.main_locals["y"] == 45

    def test_nested_if(self):
        result = run(wrap("x := 5; if x > 0 then if x > 10 then y := 1 else y := 2 else y := 3"))
        assert result.main_locals["y"] == 2

    def test_list_walk_counts_nodes(self):
        result = run_program(*load("list_walk", depth=12))
        assert result.main_locals["count"] == 11

    def test_step_limit_guards_infinite_loops(self):
        source = wrap("x := 1; while x > 0 do x := x + 1")
        with pytest.raises(SilRuntimeError):
            run(source, max_steps=10_000)


class TestCallsAndRecursion:
    def test_call_by_value_for_handles_copies_only_the_handle(self):
        source = """
        program p
        procedure main()
          a: handle; x: int
        begin
          a := new();
          a.value := 1;
          mutate(a);
          x := a.value
        end
        procedure mutate(h: handle)
        begin
          h.value := 99;
          h := nil
        end
        """
        result = run(source)
        # The callee's write through the handle is visible, its rebinding is not.
        assert result.main_locals["x"] == 99
        assert result.main_locals["a"] is not None

    def test_recursive_function_result(self):
        result = run_program(*load("tree_add", depth=5))
        assert result.main_locals["total"] == 2 ** 5 - 1

    def test_function_returning_handle(self):
        result = run_program(*load("tree_copy", depth=3))
        heap = result.heap
        original = heap.extract(result.main_locals["root"])
        duplicate = heap.extract(result.main_locals["duplicate"])
        assert original == duplicate
        assert result.main_locals["root"] != result.main_locals["duplicate"]

    def test_call_counts(self):
        result = run_program(*load("tree_add", depth=3))
        # build: 2^3+... calls; sum likewise; just check they were counted.
        assert result.calls > 10

    def test_entry_must_be_parameterless(self):
        program, info = load("add_and_reverse", depth=3)
        interpreter = Interpreter(program, info)
        with pytest.raises(SilRuntimeError):
            interpreter.run(entry="add_n")

    def test_presets_bind_main_locals(self):
        program, info = parse_and_normalize(
            "program p procedure main() root: handle; x: int begin x := root.value end"
        )
        heap = Heap()
        root = heap.build((41, None, None))
        result = run_program(program, info, heap=heap, presets={"root": root})
        assert result.main_locals["x"] == 41

    def test_unknown_preset_rejected(self):
        program, info = parse_and_normalize("program p procedure main() x: int begin x := 1 end")
        with pytest.raises(SilRuntimeError):
            run_program(program, info, presets={"nope": 1})


class TestCostAccounting:
    def test_sequential_work_equals_span(self):
        result = run(wrap("x := 1; y := 2; z := x + y"))
        assert result.work == result.span

    def test_parallel_span_less_than_work(self):
        result = run(wrap("a := new(); b := new(); a.value := 1 || b.value := 2"))
        assert result.span < result.work
        assert result.parallel_statements == 1

    def test_custom_cost_model(self):
        program, info = parse_and_normalize(wrap("x := 1; y := 2"))
        expensive = run_program(program, info, cost_model=CostModel(basic_statement=10))
        cheap = run_program(program, info, cost_model=CostModel(basic_statement=1))
        assert expensive.work == 10 * cheap.work

    def test_op_counts_by_kind(self):
        result = run(wrap("a := new(); a.value := 1; x := a.value"))
        assert result.op_counts["AssignNew"] == 1
        assert result.op_counts["StoreValue"] == 1
        assert result.op_counts["LoadValue"] == 1

    def test_summary_string(self):
        result = run(wrap("x := 1"))
        assert "work=" in result.summary()

    def test_non_core_program_rejected(self):
        from repro.sil.parser import parse_program

        surface = parse_program(wrap("a := new(); a.left.right := nil"))
        with pytest.raises(SilRuntimeError):
            Interpreter(surface)
