"""Unit tests for the path matrix."""

import pytest

from repro.analysis.matrix import PathMatrix, caller_symbol, is_symbolic, stacked_symbol
from repro.analysis.pathset import PathSet


def matrix_abc():
    matrix = PathMatrix(["a", "b", "c"])
    matrix.set("a", "b", PathSet.parse("L1"))
    matrix.set("a", "c", PathSet.parse("R1D+"))
    return matrix


class TestHandlesAndEntries:
    def test_handles_tracked_in_order(self):
        matrix = PathMatrix(["x", "y"])
        assert matrix.handles == ["x", "y"]
        assert "x" in matrix and "z" not in matrix

    def test_add_handle_is_idempotent(self):
        matrix = PathMatrix(["x"])
        matrix.add_handle("x")
        assert matrix.handles == ["x"]

    def test_diagonal_is_same(self):
        matrix = PathMatrix(["x"])
        assert matrix.get("x", "x").has_definite_same
        assert matrix.get("missing", "missing").is_empty

    def test_missing_entries_are_empty(self):
        matrix = matrix_abc()
        assert matrix.get("b", "c").is_empty
        assert matrix.get("c", "a").is_empty

    def test_set_and_get(self):
        matrix = matrix_abc()
        assert matrix.get("a", "b").format() == "L1"
        assert matrix["a", "c"].format() == "R1D+"

    def test_setting_empty_erases(self):
        matrix = matrix_abc()
        matrix.set("a", "b", PathSet.empty())
        assert matrix.get("a", "b").is_empty
        assert ("a", "b") not in dict((s, t) for s, t, _ in matrix.entries()).items()

    def test_set_on_diagonal_is_ignored(self):
        matrix = matrix_abc()
        matrix.set("a", "a", PathSet.parse("L1"))
        assert matrix.get("a", "a").has_definite_same

    def test_add_paths_unions(self):
        matrix = matrix_abc()
        matrix.add_paths("a", "b", PathSet.parse("R1"))
        assert matrix.get("a", "b").format() == "L1, R1"

    def test_setting_implicitly_adds_handles(self):
        matrix = PathMatrix()
        matrix.set("p", "q", PathSet.parse("L1"))
        assert set(matrix.handles) == {"p", "q"}

    def test_remove_handle_clears_entries(self):
        matrix = matrix_abc()
        matrix.remove_handle("a")
        assert "a" not in matrix
        assert matrix.get("a", "b").is_empty

    def test_clear_handle_keeps_it_tracked(self):
        matrix = matrix_abc()
        matrix.clear_handle("a")
        assert "a" in matrix
        assert matrix.get("a", "b").is_empty


class TestQueries:
    def test_related_and_unrelated(self):
        matrix = matrix_abc()
        assert matrix.related("a", "b")
        assert matrix.related("b", "a")  # either direction counts
        assert matrix.unrelated("b", "c")

    def test_may_and_must_alias(self):
        matrix = PathMatrix(["x", "y", "z"])
        matrix.set("x", "y", PathSet.same())
        matrix.set("x", "z", PathSet.parse("S?"))
        assert matrix.must_alias("x", "y")
        assert matrix.may_alias("x", "z") and not matrix.must_alias("x", "z")
        assert not matrix.may_alias("y", "z")
        assert matrix.may_alias("x", "x")

    def test_descendants_of(self):
        matrix = matrix_abc()
        assert set(matrix.descendants_of("a")) == {"b", "c"}
        assert matrix.descendants_of("b") == []


class TestWholeMatrixOperations:
    def test_copy_is_independent(self):
        matrix = matrix_abc()
        clone = matrix.copy()
        clone.set("a", "b", PathSet.parse("R1"))
        assert matrix.get("a", "b").format() == "L1"

    def test_restricted(self):
        matrix = matrix_abc()
        restricted = matrix.restricted(["a", "b"])
        assert set(restricted.handles) == {"a", "b"}
        assert restricted.get("a", "b").format() == "L1"
        assert restricted.get("a", "c").is_empty

    def test_renamed(self):
        matrix = matrix_abc()
        renamed = matrix.renamed({"a": "root", "b": "child"})
        assert renamed.get("root", "child").format() == "L1"
        assert renamed.get("root", "c").format() == "R1D+"

    def test_renamed_merging_two_handles(self):
        matrix = PathMatrix(["a", "b", "x"])
        matrix.set("a", "x", PathSet.parse("L1"))
        matrix.set("b", "x", PathSet.parse("R1"))
        merged = matrix.renamed({"a": "both", "b": "both"})
        assert merged.get("both", "x").format() == "L1, R1"

    def test_merge_demotes_one_sided_information(self):
        first = matrix_abc()
        second = matrix_abc()
        second.set("a", "b", PathSet.parse("L2"))
        merged = first.merge(second)
        rendered = merged.get("a", "b").format()
        assert "L1?" in rendered and "L2?" in rendered
        # The entry present identically in both stays definite.
        assert merged.get("a", "c").format() == "R1D+"

    def test_merge_with_extra_handles(self):
        first = PathMatrix(["a"])
        second = PathMatrix(["a", "b"])
        second.set("a", "b", PathSet.parse("L1"))
        merged = first.merge(second)
        assert set(merged.handles) == {"a", "b"}
        # "b" is unknown to the first matrix, so the entry is kept as-is.
        assert merged.get("a", "b").format() == "L1"

    def test_equality(self):
        assert matrix_abc() == matrix_abc()
        other = matrix_abc()
        other.set("b", "c", PathSet.parse("L1"))
        assert matrix_abc() != other

    def test_matrices_are_not_hashable(self):
        with pytest.raises(TypeError):
            hash(matrix_abc())


class TestRendering:
    def test_format_contains_all_handles(self):
        text = matrix_abc().format()
        for name in ("a", "b", "c", "L1", "R1D+"):
            assert name in text

    def test_format_with_explicit_order(self):
        text = matrix_abc().format(["c", "a"])
        lines = text.splitlines()
        assert lines[0].split("|")[1].strip() == "c"
        assert "b" not in lines[0]


class TestSymbolicHandles:
    def test_symbol_constructors(self):
        assert caller_symbol("h") == "h*"
        assert stacked_symbol("h") == "h**"

    def test_is_symbolic(self):
        assert is_symbolic("h*") and is_symbolic("h**")
        assert not is_symbolic("h")
