"""Concurrency tests: many clients, pipelined frames, dying peers.

The daemon multiplexes connections on one event loop and admits heavy
requests through a bounded worker pool (the service itself serializes the
actual analysis — the interned domain is process-global).  What must hold
under pressure:

* N clients hammering one server each get complete, correctly-framed,
  non-interleaved responses — and identical analysis results;
* frames pipelined on one connection are answered strictly in request
  order;
* a client that vanishes mid-request costs the server nothing: later
  clients are served as if nothing happened;
* a ``shutdown`` from one client stops the daemon cleanly while others
  are connected.
"""

from __future__ import annotations

import socket
import sys
import threading
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.server import AnalysisClient, AnalysisServer, ServerConfig
from repro.server.protocol import send_frame

CLIENTS = 8


@pytest.fixture
def server(tmp_path):
    daemon = AnalysisServer(
        ServerConfig(socket_path=str(tmp_path / "analysis.sock"), workers=2)
    ).start_background()
    yield daemon
    daemon.request_stop()
    assert daemon.join(timeout=10)


def connect(server, timeout: float = 60.0) -> AnalysisClient:
    client = AnalysisClient(socket_path=server.config.socket_path, timeout=timeout)
    client.connect()
    return client


class TestConcurrentClients:
    def test_n_clients_get_complete_matching_responses(self, server):
        outcomes = [None] * CLIENTS

        def worker(index: int) -> None:
            try:
                with connect(server) as client:
                    # Interleave op kinds so fast (inline) and heavy
                    # (worker-pool) dispatch mix across connections.
                    assert client.ping() is True
                    response = client.analyze(["dag_sharing"])
                    stats = client.cache_stats()
                    outcomes[index] = (
                        response["results_digest"],
                        sorted(response["results"]),
                        stats["server"]["requests_served"] > 0,
                    )
            except Exception as error:  # surfaced via the outcomes check
                outcomes[index] = error

        threads = [
            threading.Thread(target=worker, args=(index,)) for index in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        errors = [o for o in outcomes if isinstance(o, Exception)]
        assert not errors, errors
        assert None not in outcomes, "a client thread never finished"
        # Every client decoded complete frames (the id check inside
        # AnalysisClient.call guarantees responses were not interleaved)
        # and every analysis produced the same bits.
        digests = {digest for digest, _names, _served in outcomes}
        assert len(digests) == 1
        assert all(names == ["dag_sharing"] for _d, names, _s in outcomes)

    def test_lifetime_totals_survive_the_stampede(self, server):
        def worker() -> None:
            with connect(server) as client:
                client.analyze(["add_and_reverse"])

        threads = [threading.Thread(target=worker) for _ in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        with connect(server) as client:
            stats = client.cache_stats()
        assert stats["server"]["requests_served"] == CLIENTS
        assert stats["server"]["requests_by_op"]["analyze"] == CLIENTS


class TestPipelining:
    def test_pipelined_frames_are_answered_in_request_order(self, server):
        with connect(server) as client:
            ids = [
                client.send("ping"),
                client.send("analyze", workloads=["dag_sharing"]),
                client.send("cache_stats"),
                client.send("ping"),
            ]
            responses = [client.recv() for _ in ids]
        assert [response["id"] for response in responses] == ids
        assert responses[0]["pong"] is True
        assert "results_digest" in responses[1]
        assert "lifetime_stats" in responses[2]
        assert responses[3]["pong"] is True


class TestDyingPeers:
    def test_client_cancelled_mid_request_leaves_the_server_healthy(self, server):
        # A raw socket: fire an analyze request and slam the connection
        # shut without reading a single response byte.
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10)
        sock.connect(server.config.socket_path)
        send_frame(sock, {"id": 1, "op": "analyze", "workloads": ["dag_sharing"]})
        sock.close()

        # The server shrugs: a fresh client gets full service.
        with connect(server) as client:
            assert client.ping() is True
            response = client.analyze(["dag_sharing"])
            assert not response["failures"]

    def test_peer_vanishing_mid_frame_is_dropped_silently(self, server):
        # Half a header, then gone — the TruncatedFrame path.
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10)
        sock.connect(server.config.socket_path)
        sock.sendall(b"\x00\x00")
        sock.close()
        with connect(server) as client:
            assert client.ping() is True


class TestShutdownWithPeers:
    def test_shutdown_from_one_client_stops_the_daemon(self, server):
        bystander = connect(server)
        try:
            with connect(server) as instigator:
                response = instigator.shutdown()
                assert response["ok"] is True
                assert response["stopping"] is True
            assert server.join(timeout=10)
            # The daemon is gone: the bystander's connection is dead and
            # the socket file has been unlinked.
            assert not Path(server.config.socket_path).exists()
        finally:
            bystander.close()
