"""Protocol-level tests against a *real* running analysis daemon.

Every test talks to an actual :class:`repro.server.AnalysisServer`
listening on a unix socket — through the reusable
:class:`repro.server.AnalysisClient` where convenient, and through raw
sockets where the point is the bytes on the wire (the hello handshake,
malformed payloads, oversized frames).

The error-handling contract pinned here:

* a well-framed payload that is not a JSON object → ``bad_frame``
  response, connection **stays open** (framing is still in sync);
* a frame whose declared length exceeds the limit → ``frame_too_large``
  response, connection **closed** (the body was never read, so the
  stream cannot be re-synchronized);
* an unknown op → ``unknown_command`` carrying the known vocabulary,
  connection stays open;
* ``analyze`` responses are bit-identical (canonical encodings and the
  results digest) to an in-process :func:`repro.analysis.analyze_program`.
"""

from __future__ import annotations

import json
import socket
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.analysis import analyze_program
from repro.server import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    SERVER_NAME,
    AnalysisClient,
    AnalysisServer,
    ServerConfig,
    ServerError,
)
from repro.server.daemon import KNOWN_OPS
from repro.server.protocol import (
    ERR_BAD_FRAME,
    ERR_BAD_REQUEST,
    ERR_FRAME_TOO_LARGE,
    ERR_TIMEOUT,
    ERR_UNKNOWN_COMMAND,
    HEADER,
    FrameTooLarge,
    decode_frame,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.sil.normalize import parse_and_normalize
from repro.workloads.suite import ShardedSuiteRunner, source


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One warm daemon on a unix socket, shared by the whole module."""
    path = str(tmp_path_factory.mktemp("proto") / "analysis.sock")
    daemon = AnalysisServer(ServerConfig(socket_path=path)).start_background()
    yield daemon
    daemon.request_stop()
    assert daemon.join(timeout=10)


@pytest.fixture
def client(server):
    with AnalysisClient(socket_path=server.config.socket_path, timeout=30) as handle:
        yield handle


def raw_connection(server) -> socket.socket:
    """A plain socket to the daemon, hello frame *not* yet consumed."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10)
    sock.connect(server.config.socket_path)
    return sock


class TestFraming:
    def test_encode_decode_roundtrip(self):
        message = {"id": 7, "op": "ping", "note": "πath — ünïcode"}
        blob = encode_frame(message)
        assert decode_frame(blob[HEADER.size :]) == message

    def test_header_is_big_endian_payload_length(self):
        blob = encode_frame({"a": 1})
        (length,) = HEADER.unpack(blob[: HEADER.size])
        assert length == len(blob) - HEADER.size
        assert HEADER.format == ">I"

    def test_encode_rejects_oversized_payloads(self):
        with pytest.raises(FrameTooLarge) as excinfo:
            encode_frame({"blob": "x" * 64}, max_frame=16)
        assert excinfo.value.limit == 16
        assert excinfo.value.declared > 16


class TestHandshake:
    def test_hello_frame_on_connect(self, server):
        sock = raw_connection(server)
        try:
            hello = recv_frame(sock)
        finally:
            sock.close()
        assert hello["server"] == SERVER_NAME
        assert hello["protocol"] == PROTOCOL_VERSION
        assert hello["workers"] >= 1
        assert hello["max_frame"] == DEFAULT_MAX_FRAME

    def test_client_records_the_handshake(self, client):
        assert client.hello["protocol"] == PROTOCOL_VERSION

    def test_protocol_version_op(self, client):
        response = client.protocol_version()
        assert response["ok"] is True
        assert response["protocol"] == PROTOCOL_VERSION
        assert response["server"] == SERVER_NAME
        assert response["ops"] == list(KNOWN_OPS)

    def test_ping(self, client):
        assert client.ping() is True


class TestErrorHandling:
    def test_unknown_command_keeps_the_connection(self, client):
        response = client.call("frobnicate")
        assert response["ok"] is False
        assert response["error"]["code"] == ERR_UNKNOWN_COMMAND
        assert "analyze" in response["error"]["known"]
        # Same connection, next request: still served.
        assert client.ping() is True

    def test_request_without_op_is_bad_request(self, server):
        sock = raw_connection(server)
        try:
            assert recv_frame(sock)["server"] == SERVER_NAME
            send_frame(sock, {"id": 41})
            response = recv_frame(sock)
        finally:
            sock.close()
        assert response["ok"] is False
        assert response["id"] == 41
        assert response["error"]["code"] == ERR_BAD_REQUEST

    @pytest.mark.parametrize("payload", [b"{oops", b"[1, 2, 3]", b"\xff\xfe"])
    def test_malformed_payload_gets_bad_frame_and_survives(self, server, payload):
        sock = raw_connection(server)
        try:
            assert recv_frame(sock)["protocol"] == PROTOCOL_VERSION
            sock.sendall(HEADER.pack(len(payload)) + payload)
            response = recv_frame(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == ERR_BAD_FRAME
            # Framing never desynchronized: the connection still works.
            send_frame(sock, {"id": 1, "op": "ping"})
            assert recv_frame(sock) == {"id": 1, "ok": True, "pong": True}
        finally:
            sock.close()

    def test_oversized_frame_is_rejected_and_the_connection_closed(self, server):
        sock = raw_connection(server)
        try:
            assert recv_frame(sock)["server"] == SERVER_NAME
            # The declared length alone condemns the frame — no body needed.
            sock.sendall(HEADER.pack(DEFAULT_MAX_FRAME + 1))
            response = recv_frame(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == ERR_FRAME_TOO_LARGE
            assert response["error"]["declared"] == DEFAULT_MAX_FRAME + 1
            assert response["error"]["limit"] == DEFAULT_MAX_FRAME
            # ... after which the server hangs up: EOF.
            assert recv_frame(sock) is None
        finally:
            sock.close()

    def test_unknown_workload_is_bad_request(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.analyze(workloads=["no_such_workload"])
        assert excinfo.value.code == ERR_BAD_REQUEST
        assert "no_such_workload" in excinfo.value.message

    def test_timeout_is_a_structured_error(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.analyze(timeout=1e-6)
        assert excinfo.value.code == ERR_TIMEOUT
        # The connection survives a timed-out request.
        assert client.ping() is True


class TestAnalyzeIdentity:
    NAMES = ["dag_sharing", "add_and_reverse"]

    def test_analyze_matches_in_process_analysis(self, client):
        response = client.analyze(self.NAMES)
        assert response["ok"] is True
        assert not response["failures"]

        # Per-workload canonical encodings are bit-identical to a direct
        # in-process analyze_program (modulo the JSON wire round trip,
        # applied to both sides).
        for name in self.NAMES:
            program, info = parse_and_normalize(source(name, depth=4))
            local = analyze_program(program, info).canonical()
            assert response["results"][name] == json.loads(json.dumps(local))

        # And the digest matches the suite runner's own identity check.
        items = [(name, source(name, depth=4)) for name in self.NAMES]
        report = ShardedSuiteRunner(items, shards=1).run()
        assert response["results_digest"] == report.results_digest()

    def test_inline_programs_are_analyzed(self, client):
        text = source("dag_sharing", depth=4)
        response = client.analyze(
            workloads=[], programs=[{"name": "inline_dag", "source": text}]
        )
        program, info = parse_and_normalize(text)
        local = analyze_program(program, info).canonical()
        assert response["results"]["inline_dag"] == json.loads(json.dumps(local))
