"""Direct tests for the warm suite paths: ``analyze_pairs`` / ``run_warm``.

These are the server's backend loops, here exercised without a daemon in
the way: per-call reports must be exact *deltas* that sum into the owning
batch's lifetime totals, per-pair failures must be isolated, and a warm
second pass over the same batch must be bit-identical to the first.
"""

import pytest

from repro.analysis.context import AnalysisStats
from repro.analysis.engine import BatchAnalyzer
from repro.cache import CacheConfig
from repro.cache.memory import reset_memory_backends
from repro.workloads.suite import ShardedSuiteRunner, analyze_pairs, source

NAMES = ["dag_sharing", "add_and_reverse", "tree_mirror"]
PAIRS = [(name, source(name)) for name in NAMES]

BROKEN = "program broken\nprocedure main() x: int begin x := y end\n"


def fresh_batch():
    return BatchAnalyzer()


class TestAnalyzePairsDirect:
    def test_fresh_batch_deltas_equal_absolute_counters(self):
        batch = fresh_batch()
        output = analyze_pairs(batch, PAIRS)
        assert sorted(output["results"]) == sorted(NAMES)
        assert not output["failures"]
        # For a fresh batch the growth over the call IS the batch state.
        assert output["stats"] == batch.stats.counters()

    def test_failures_are_isolated_per_pair(self):
        batch = fresh_batch()
        output = analyze_pairs(batch, [("broken", BROKEN)] + PAIRS)
        assert list(output["failures"]) == ["broken"]
        assert "TypeCheckError" in output["failures"]["broken"]
        assert sorted(output["results"]) == sorted(NAMES)
        # The healthy pairs still carry widening telemetry rows.
        assert sorted(output["widening"]) == sorted(NAMES)

    def test_per_call_deltas_sum_to_batch_totals(self):
        batch = fresh_batch()
        first = analyze_pairs(batch, PAIRS[:2])
        second = analyze_pairs(batch, PAIRS[2:])
        summed = AnalysisStats.from_dict(first["stats"]).merge(
            AnalysisStats.from_dict(second["stats"])
        )
        assert summed.counters() == batch.stats.counters()


class TestRunWarmDirect:
    def test_warm_second_pass_is_bit_identical(self):
        # A re-submitted source is freshly parsed, so the id(stmt)-keyed
        # in-memory memo misses by design; warm reuse across requests
        # comes from the content-keyed persistent tier.
        reset_memory_backends()
        batch = BatchAnalyzer(
            cache=CacheConfig(backend="memory", directory="warm-paths-test")
        )
        runner = ShardedSuiteRunner(PAIRS, shards=1)
        first = runner.run_warm(batch)
        second = runner.run_warm(batch)
        assert first.results == second.results
        assert not first.failures and not second.failures
        assert first.stats.persistent_cache_writes > 0
        assert second.stats.persistent_cache_hits > 0
        assert second.stats.persistent_cache_writes == 0

    def test_warm_reports_sum_to_batch_lifetime(self):
        batch = fresh_batch()
        runner = ShardedSuiteRunner(PAIRS, shards=1)
        reports = [runner.run_warm(batch) for _ in range(3)]
        summed = AnalysisStats().merge(*(report.stats for report in reports))
        assert summed.counters() == batch.stats.counters()

    def test_run_warm_matches_cold_single_process_results(self):
        cold = ShardedSuiteRunner(PAIRS, shards=1).run_single_process()
        warm = ShardedSuiteRunner(PAIRS, shards=1).run_warm(fresh_batch())
        assert cold.results == warm.results
