"""Unit tests for the runtime heap."""

import pytest

from repro.runtime.heap import Heap
from repro.runtime.values import NodeRef, format_value, is_handle_value, is_int_value
from repro.sil.ast import Field
from repro.sil.errors import SilRuntimeError


class TestAllocationAndAccess:
    def test_allocate_returns_distinct_refs(self):
        heap = Heap()
        refs = [heap.allocate() for _ in range(10)]
        assert len({r.node_id for r in refs}) == 10
        assert heap.alloc_count == 10
        assert len(heap) == 10

    def test_new_node_fields_default(self):
        heap = Heap()
        ref = heap.allocate()
        node = heap.node(ref)
        assert node.value == 0 and node.left is None and node.right is None

    def test_read_write_links(self):
        heap = Heap()
        parent, child = heap.allocate(), heap.allocate()
        heap.write_link(parent, Field.LEFT, child)
        assert heap.read_link(parent, Field.LEFT) == child
        assert heap.read_link(parent, Field.RIGHT) is None
        assert heap.write_count == 1 and heap.read_count == 2

    def test_read_write_value(self):
        heap = Heap()
        ref = heap.allocate(5)
        assert heap.read_value(ref) == 5
        heap.write_value(ref, 9)
        assert heap.read_value(ref) == 9

    def test_nil_dereference_raises(self):
        heap = Heap()
        with pytest.raises(SilRuntimeError):
            heap.read_value(None)

    def test_dangling_reference_raises(self):
        heap = Heap()
        with pytest.raises(SilRuntimeError):
            heap.node(NodeRef(999))

    def test_value_field_rejected_as_link(self):
        heap = Heap()
        ref = heap.allocate()
        with pytest.raises(ValueError):
            heap.read_link(ref, Field.VALUE)

    def test_contains(self):
        heap = Heap()
        ref = heap.allocate()
        assert heap.contains(ref)
        assert not heap.contains(None)
        assert not heap.contains(NodeRef(123))


class TestBuildAndExtract:
    def test_build_from_spec_round_trips(self):
        heap = Heap()
        spec = (1, (2, 4, 5), (3, None, 6))
        root = heap.build(spec)
        assert heap.extract(root) == spec

    def test_build_leaf_shorthand(self):
        heap = Heap()
        root = heap.build(7)
        assert heap.extract(root) == 7

    def test_build_nil(self):
        heap = Heap()
        assert heap.build(None) is None
        assert heap.extract(None) is None

    def test_full_tree_shape(self):
        heap = Heap()
        root = heap.build_full_tree(4)
        assert heap.height(root) == 4
        assert len(heap.reachable_from([root])) == 2 ** 4 - 1

    def test_full_tree_value_function(self):
        heap = Heap()
        root = heap.build_full_tree(3, value_fn=lambda i: i * 10)
        assert heap.node(root).value == 0
        assert sorted(heap.values_preorder(root)) == [i * 10 for i in range(7)]

    def test_build_list(self):
        heap = Heap()
        head = heap.build_list([1, 2, 3, 4])
        values = []
        current = head
        while current is not None:
            node = heap.node(current)
            values.append(node.value)
            current = node.right
        assert values == [1, 2, 3, 4]

    def test_extract_detects_cycles(self):
        heap = Heap()
        a, b = heap.allocate(), heap.allocate()
        heap.write_link(a, Field.LEFT, b)
        heap.write_link(b, Field.LEFT, a)
        with pytest.raises(SilRuntimeError):
            heap.extract(a)

    def test_traversals(self):
        heap = Heap()
        root = heap.build((2, 1, 3))
        assert heap.values_inorder(root) == [1, 2, 3]
        assert heap.values_preorder(root) == [2, 1, 3]

    def test_height_of_skewed_tree(self):
        heap = Heap()
        root = heap.build((1, (2, (3, None, None), None), None))
        assert heap.height(root) == 3


class TestReachabilityAndParents:
    def test_reachable_from_multiple_roots(self):
        heap = Heap()
        first = heap.build((1, 2, 3))
        second = heap.build((4, 5, None))
        reachable = heap.reachable_from([first, second])
        assert len(reachable) == 5

    def test_reachable_ignores_nil_roots(self):
        heap = Heap()
        assert heap.reachable_from([None]) == []

    def test_parents_map(self):
        heap = Heap()
        root = heap.build((1, 2, 3))
        parents = heap.parents()
        root_node = heap.node(root)
        assert parents[root.node_id] == []
        assert parents[root_node.left.node_id] == [root.node_id]
        assert parents[root_node.right.node_id] == [root.node_id]

    def test_shared_child_has_two_parents(self):
        heap = Heap()
        a, b, shared = heap.allocate(), heap.allocate(), heap.allocate()
        heap.write_link(a, Field.LEFT, shared)
        heap.write_link(b, Field.RIGHT, shared)
        assert sorted(heap.parents()[shared.node_id]) == sorted([a.node_id, b.node_id])

    def test_refs_lists_all_nodes(self):
        heap = Heap()
        for _ in range(5):
            heap.allocate()
        assert len(heap.refs()) == 5


class TestValueHelpers:
    def test_is_handle_value(self):
        assert is_handle_value(None)
        assert is_handle_value(NodeRef(1))
        assert not is_handle_value(3)

    def test_is_int_value(self):
        assert is_int_value(3)
        assert not is_int_value(True)
        assert not is_int_value(NodeRef(1))

    def test_format_value(self):
        assert format_value(None) == "nil"
        assert format_value(7) == "7"
        assert format_value(NodeRef(3)) == "node#3"
