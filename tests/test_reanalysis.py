"""Golden tests for cross-run incremental re-analysis.

The PR's acceptance criterion, pinned: a dirty-seeded re-analysis of an
edited program is **bit-identical to a cold solve** — result digest AND
widening telemetry — while re-solving strictly fewer procedures than the
program has.  Also covered: multi-generation edit chains, the no-op delta
fast path, targeted persistent-store invalidation, and the memo-epoch
scoping that lets two batches share one transfer cache safely.
"""

import pytest

from repro.analysis.engine import BatchAnalyzer
from repro.analysis.limits import DEFAULT_LIMITS, AdaptiveLimits
from repro.analysis.reanalysis import (
    IncrementalSession,
    cold_solve,
    result_digest,
)
from repro.cache import CacheConfig
from repro.sil.normalize import parse_and_normalize
from repro.workloads import generate_scenario, generate_edited_pair
from repro.workloads.generators import GeneratorConfig


def deep_scenario(seed=3, depth=6):
    return generate_scenario(seed, GeneratorConfig(family="deep", procedures=2, depth=depth))


def session_for(source, **kwargs):
    session = IncrementalSession(limits=DEFAULT_LIMITS, **kwargs)
    program, info = parse_and_normalize(source)
    session.analyze(program, info)
    return session


class TestGoldenEquivalence:
    def test_neutral_edit_bit_identical_and_cheaper(self):
        scenario = deep_scenario()
        pair = generate_edited_pair(
            scenario.source, 0, edits=1, kinds=("insert",), target_procedure="main"
        )
        session = session_for(pair.old_source)
        try:
            new_program, new_info = parse_and_normalize(pair.new_source)
            report = session.reanalyze(new_program, new_info, verify=True)
        finally:
            session.close()
        # Bit-identical: digest AND widening telemetry match the cold solve.
        assert report.verified is True
        assert report.digest == report.cold_digest
        assert report.widening == report.cold_widening
        # Strictly cheaper: only the dirty seed was re-solved.
        assert len(report.procedures_reanalyzed) < report.procedures_total
        assert report.procedures_reanalyzed == ("main",)
        assert report.summaries_reused > 0
        assert report.dirty_seed == ("main",)
        assert report.dirty_seed_size == 1

    @pytest.mark.parametrize("kinds", [("delete",), ("relink",), ("swap", "add_call")])
    def test_semantic_edits_still_match_cold(self, kinds):
        scenario = generate_scenario(
            1, GeneratorConfig(family="dag", procedures=3, depth=4)
        )
        try:
            pair = generate_edited_pair(scenario.source, 7, edits=2, kinds=kinds)
        except ValueError:
            pytest.skip(f"no valid {kinds} edit on this scenario")
        session = session_for(pair.old_source)
        try:
            new_program, new_info = parse_and_normalize(pair.new_source)
            report = session.reanalyze(new_program, new_info, verify=True)
        finally:
            session.close()
        assert report.verified is True
        assert report.widening == report.cold_widening

    def test_multi_generation_chain_stays_exact(self):
        scenario = deep_scenario(seed=5)
        source = scenario.source
        session = session_for(source)
        try:
            for generation in range(3):
                pair = generate_edited_pair(
                    source, 10 + generation, edits=1, kinds=("insert",)
                )
                new_program, new_info = parse_and_normalize(pair.new_source)
                report = session.reanalyze(new_program, new_info, verify=True)
                assert report.verified is True, f"generation {generation} diverged"
                source = pair.new_source
        finally:
            session.close()

    def test_adaptive_limits_sessions_verify(self):
        scenario = deep_scenario(seed=2, depth=5)
        pair = generate_edited_pair(
            scenario.source, 0, edits=1, kinds=("insert",), target_procedure="main"
        )
        session = IncrementalSession(limits=AdaptiveLimits())
        try:
            program, info = parse_and_normalize(pair.old_source)
            session.analyze(program, info)
            new_program, new_info = parse_and_normalize(pair.new_source)
            report = session.reanalyze(new_program, new_info, verify=True)
        finally:
            session.close()
        assert report.verified is True


class TestDeltaDrivenBehavior:
    def test_identical_program_reanalyzes_nothing(self):
        scenario = deep_scenario()
        session = IncrementalSession(limits=DEFAULT_LIMITS)
        try:
            program, info = parse_and_normalize(scenario.source)
            base_digest = result_digest(session.analyze(program, info))
            new_program, new_info = parse_and_normalize(scenario.source)
            report = session.reanalyze(new_program, new_info)
        finally:
            session.close()
        assert report.delta.is_empty
        assert report.procedures_reanalyzed == ()
        assert report.digest == base_digest

    def test_neutral_insert_preserves_result_digest(self):
        # The "insert" edit kind is a semantic no-op (x := x), so the
        # re-analysis result digests identically to the base program's.
        scenario = deep_scenario()
        pair = generate_edited_pair(
            scenario.source, 0, edits=1, kinds=("insert",), target_procedure="main"
        )
        old_digest, old_widening = cold_solve(*parse_and_normalize(pair.old_source))
        new_digest, new_widening = cold_solve(*parse_and_normalize(pair.new_source))
        assert old_widening == new_widening

    def test_targeted_invalidation_reaches_persistent_store(self, tmp_path):
        scenario = generate_scenario(
            1, GeneratorConfig(family="list", procedures=2, depth=4)
        )
        pair = generate_edited_pair(scenario.source, 3, edits=1, kinds=("delete",))
        cache = CacheConfig(backend="disk", directory=str(tmp_path))
        session = IncrementalSession(limits=DEFAULT_LIMITS, cache=cache)
        try:
            program, info = parse_and_normalize(pair.old_source)
            session.analyze(program, info)
            session.flush()
            backend = session.batch.cache.backend
            invalidations_before = backend.stats()["invalidations"]
            new_program, new_info = parse_and_normalize(pair.new_source)
            report = session.reanalyze(new_program, new_info, verify=True)
            assert report.verified is True
            assert report.delta.stale_statement_labels
            # The deleted statement's rows were dropped from the store.
            assert backend.stats()["invalidations"] >= invalidations_before
        finally:
            session.close()


class TestMemoEpochScoping:
    def test_two_batches_sharing_a_cache_never_alias_memo_entries(self):
        # The in-memory transfer memo keys on id(stmt), which CPython can
        # recycle.  Epoch-scoped keys make entries from different batches
        # disjoint even when they analyze the very same program object.
        program, info = parse_and_normalize(deep_scenario().source)
        first = BatchAnalyzer(limits=DEFAULT_LIMITS)
        result_a = first.analyze(program, info)
        shared = first.cache

        second = BatchAnalyzer(limits=DEFAULT_LIMITS, transfer_cache=shared)
        assert second.memo_epoch != first.memo_epoch
        result_b = second.analyze(program, info)
        assert result_digest(result_a) == result_digest(result_b)

    def test_epochs_are_unique_across_batches(self):
        epochs = {BatchAnalyzer(limits=DEFAULT_LIMITS).memo_epoch for _ in range(5)}
        assert len(epochs) == 5
