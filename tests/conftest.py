"""Shared fixtures for the test suite.

Expensive artefacts (parsed workloads, whole-program analysis results,
parallelized programs) are cached per session so the suite stays fast even
though many test modules exercise the same programs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package (src/ layout).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis import analyze_program  # noqa: E402
from repro.analysis.pathset import intern_table_sizes  # noqa: E402
from repro.parallel import parallelize_program  # noqa: E402
from repro.sil import check_program  # noqa: E402
from repro.workloads import load  # noqa: E402

# Recursive SIL programs on deep structures nest Python frames.
sys.setrecursionlimit(100_000)


_LOAD_CACHE = {}
_ANALYSIS_CACHE = {}
_PARALLEL_CACHE = {}


def load_workload(name: str, depth: int = 4):
    """Cached (program, info) for a workload at a given depth."""
    key = (name, depth)
    if key not in _LOAD_CACHE:
        _LOAD_CACHE[key] = load(name, depth=depth)
    return _LOAD_CACHE[key]


def analysis_for(name: str, depth: int = 4):
    """Cached whole-program analysis result for a workload."""
    key = (name, depth)
    if key not in _ANALYSIS_CACHE:
        program, info = load_workload(name, depth)
        _ANALYSIS_CACHE[key] = analyze_program(program, info)
    return _ANALYSIS_CACHE[key]


def parallelized(name: str, depth: int = 4):
    """Cached (parallel_result, parallel_info) for a workload."""
    key = (name, depth)
    if key not in _PARALLEL_CACHE:
        program, info = load_workload(name, depth)
        result = parallelize_program(program, info)
        _PARALLEL_CACHE[key] = (result, check_program(result.program))
    return _PARALLEL_CACHE[key]


class InternTableSnapshot:
    """Process-global intern-table sizes frozen at fixture setup.

    The interning tables are process-global and weak: their absolute sizes
    depend on which tests ran earlier (and what they still keep alive), so
    a bare ``intern_table_sizes()[...] > 0`` assertion passes in a full run
    but fails when the test is the first to touch the tables.  Tests take
    this fixture, do their own interning work (holding references so the
    weak entries survive), and assert on :meth:`growth` — the delta since
    setup — which is order-independent by construction.
    """

    def __init__(self):
        self.before = intern_table_sizes()

    def current(self):
        return intern_table_sizes()

    def growth(self):
        now = intern_table_sizes()
        return {table: now[table] - self.before.get(table, 0) for table in now}


@pytest.fixture
def intern_tables():
    """Snapshot of the intern tables; asserts the vocabulary stays stable."""
    snapshot = InternTableSnapshot()
    yield snapshot
    # Tables may grow or (weakly) shrink during a test, but the *set* of
    # reported tables is part of the stats contract and must not change.
    assert set(intern_table_sizes()) == set(snapshot.before)


@pytest.fixture
def add_and_reverse():
    return load_workload("add_and_reverse", 4)


@pytest.fixture
def add_and_reverse_analysis():
    return analysis_for("add_and_reverse", 4)


@pytest.fixture
def add_and_reverse_parallel():
    return parallelized("add_and_reverse", 4)
