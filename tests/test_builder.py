"""Unit tests for the programmatic program builder."""

import pytest

from repro.runtime import run_program
from repro.sil import ast
from repro.sil.builder import (
    HANDLE,
    INT,
    ProgramBuilder,
    add,
    eq,
    field,
    ge,
    gt,
    is_nil,
    le,
    lit,
    lt,
    mul,
    name,
    ne,
    new,
    nil,
    not_nil,
    sub,
    to_expr,
)
from repro.sil.typecheck import check_program


class TestExpressionHelpers:
    def test_to_expr_coercions(self):
        assert isinstance(to_expr(3), ast.IntLit)
        assert isinstance(to_expr("x"), ast.Name)
        assert isinstance(to_expr(ast.NilLit()), ast.NilLit)

    def test_to_expr_rejects_bool_and_junk(self):
        with pytest.raises(TypeError):
            to_expr(True)
        with pytest.raises(TypeError):
            to_expr(3.5)

    def test_field_builder(self):
        expr = field("a", "left", "right", "value")
        assert isinstance(expr, ast.FieldAccess)
        assert expr.field_name is ast.Field.VALUE

    def test_comparison_builders(self):
        assert eq(1, 2).op == "="
        assert ne("x", 2).op == "<>"
        assert lt(1, 2).op == "<"
        assert le(1, 2).op == "<="
        assert gt(1, 2).op == ">"
        assert ge(1, 2).op == ">="
        assert add(1, 2).op == "+"
        assert sub(1, 2).op == "-"
        assert mul(1, 2).op == "*"

    def test_nil_helpers(self):
        assert isinstance(nil(), ast.NilLit)
        assert not_nil("h").op == "<>"
        assert is_nil("h").op == "="
        assert isinstance(new(), ast.NewExpr)
        assert isinstance(lit(7), ast.IntLit)
        assert isinstance(name("h"), ast.Name)


class TestProgramConstruction:
    def build_counter_program(self):
        b = ProgramBuilder("counter")
        main = b.procedure("main", locals=[("i", INT), ("total", INT)])
        main.assign("i", 0)
        main.assign("total", 0)
        loop = main.while_(lt("i", 5))
        loop.assign("total", add("total", "i"))
        loop.assign("i", add("i", 1))
        return b.build_core()

    def test_while_loop_program_runs(self):
        program, info = self.build_counter_program()
        result = run_program(program, info)
        assert result.main_locals["total"] == 0 + 1 + 2 + 3 + 4

    def test_if_else_program(self):
        b = ProgramBuilder("branching")
        main = b.procedure("main", locals=[("h", HANDLE), ("x", INT)])
        main.assign("h", new())
        branch = main.if_(not_nil("h"))
        branch.then.assign("x", 1)
        branch.otherwise.assign("x", 2)
        program, info = b.build_core()
        result = run_program(program, info)
        assert result.main_locals["x"] == 1

    def test_tree_building_program(self):
        b = ProgramBuilder("tiny_tree")
        main = b.procedure(
            "main", locals=[("root", HANDLE), ("l", HANDLE), ("r", HANDLE), ("s", INT)]
        )
        main.assign("root", new())
        main.assign(("root", "value"), 10)
        main.assign(("root", "left"), new())
        main.assign(("root", "right"), new())
        main.assign("l", field("root", "left"))
        main.assign("r", field("root", "right"))
        main.assign(("l", "value"), 20)
        main.assign(("r", "value"), 30)
        main.assign("s", add(field("root", "value"), add(field("l", "value"), field("r", "value"))))
        program, info = b.build_core()
        result = run_program(program, info)
        assert result.main_locals["s"] == 60

    def test_procedure_and_function_calls(self):
        b = ProgramBuilder("callers")
        main = b.procedure("main", locals=[("h", HANDLE), ("x", INT)])
        main.assign("h", new())
        main.call("bump", name("h"))
        main.call_assign("x", "read", name("h"))

        bump = b.procedure("bump", params=[("t", HANDLE)])
        bump.assign(("t", "value"), add(field("t", "value"), 5))

        read = b.function(
            "read", params=[("t", HANDLE)], locals=[("r", INT)], return_type=INT, return_var="r"
        )
        read.assign("r", field("t", "value"))

        program, info = b.build_core()
        result = run_program(program, info)
        assert result.main_locals["x"] == 5

    def test_explicit_parallel_statement(self):
        b = ProgramBuilder("par")
        main = b.procedure("main", locals=[("a", HANDLE), ("b", HANDLE)])
        main.assign("a", new())
        main.assign("b", new())
        main.parallel(
            ast.StoreValue(target="a", expr=ast.IntLit(1)),
            ast.StoreValue(target="b", expr=ast.IntLit(2)),
        )
        program, info = b.build_core()
        result = run_program(program, info)
        assert result.parallel_statements == 1
        assert result.race_free

    def test_local_added_after_creation(self):
        b = ProgramBuilder("late_local")
        main = b.procedure("main")
        main.local("x", INT)
        main.assign("x", 3)
        program, info = b.build_core()
        assert run_program(program, info).main_locals["x"] == 3

    def test_function_requires_return_var(self):
        b = ProgramBuilder("broken")
        b.procedure("main")
        f = b.function("f", return_type=INT, return_var="r")
        f.return_var = None
        with pytest.raises(ValueError):
            b.build()

    def test_surface_program_is_not_core(self):
        b = ProgramBuilder("surface")
        main = b.procedure("main", locals=[("a", HANDLE)])
        main.assign("a", new())
        program = b.build()
        check_program(program)
        assert not ast.program_is_core(program)
