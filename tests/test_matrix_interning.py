"""Invariants of the hash-consed path-matrix layer.

The incremental solver relies on two identity laws:

* **rows** — equal row contents are always the same :class:`MatrixRow`
  object, so "did this row change?" is a pointer check and unchanged rows
  survive copies/transfers/joins by reference;
* **matrices** — :meth:`PathMatrix.interned` maps equal contents (under
  equal limits) to one canonical sealed instance, so entry-matrix
  convergence, transfer-cache keying and absorbed-projection detection are
  pointer checks.

These tests pin the laws down, including the round trip through the
persistent cache codec (decode must return the *same* interned object) and
a subprocess check that interning-derived canonical encodings are
``PYTHONHASHSEED``-independent, mirroring ``test_cache_determinism.py``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.limits import DEFAULT_LIMITS, AnalysisLimits
from repro.analysis.matrix import MatrixRow, PathMatrix, row_delta
from repro.analysis.pathset import PathSet, intern_table_sizes
from repro.analysis.telemetry import WideningTally
from repro.analysis.transfer import TransferResult, apply_basic_statement
from repro.cache.codec import decode_entry, encode_entry, transfer_key
from repro.sil import ast

SRC = str(Path(__file__).resolve().parent.parent / "src")

SAMPLE_SETS = ["S", "S?", "L1", "R+", "S, L1", "S?, D+?", "L1R1, L2?", "D2+?"]
HANDLE_POOL = ["a", "b", "c", "h", "h*", "h**"]


def sample_matrix(entries, handles=HANDLE_POOL, limits=DEFAULT_LIMITS):
    matrix = PathMatrix(handles, limits)
    for source, target, text in entries:
        matrix.set(source, target, PathSet.parse(text))
    return matrix


class TestRowInterning:
    def test_identity_is_content_based(self):
        first = MatrixRow({"b": PathSet.parse("L1"), "c": PathSet.parse("R+")})
        second = MatrixRow({"c": PathSet.parse("R+"), "b": PathSet.parse("L1")})
        assert first is second
        assert hash(first) == hash(second)

    def test_empty_cells_dropped(self):
        assert MatrixRow({"b": PathSet.empty()}) is MatrixRow({})

    def test_with_cell_and_without_reintern(self):
        row = MatrixRow({"b": PathSet.parse("L1")})
        grown = row.with_cell("c", PathSet.parse("R1"))
        assert grown is MatrixRow({"b": PathSet.parse("L1"), "c": PathSet.parse("R1")})
        assert grown.without("c") is row
        assert row.with_cell("b", PathSet.parse("L1")) is row

    def test_matrix_mutation_shares_unchanged_rows(self):
        matrix = sample_matrix([("a", "b", "L1"), ("b", "c", "R1")])
        clone = matrix.copy()
        clone.set("b", "c", PathSet.parse("R2"))
        assert clone.row("a") is matrix.row("a")  # untouched row: same object
        assert clone.row("b") is not matrix.row("b")


class TestMatrixInterning:
    def test_interned_is_content_based_and_idempotent(self):
        first = sample_matrix([("a", "b", "L1")]).interned()
        second = sample_matrix([("a", "b", "L1")]).interned()
        assert first is second
        assert first.interned() is first
        assert first.is_interned and not sample_matrix([]).is_interned

    def test_intern_hits_counted(self):
        # Hold the canonical instance: the table is weak, so an unreferenced
        # interned matrix is collected and cannot be hit again.
        canonical = sample_matrix([("a", "c", "S?, D+?")]).interned()
        before = PathMatrix.intern_hits
        assert sample_matrix([("a", "c", "S?, D+?")]).interned() is canonical
        assert PathMatrix.intern_hits == before + 1

    def test_limits_distinguish(self):
        tight = AnalysisLimits(max_paths_per_entry=3)
        a = sample_matrix([("a", "b", "L1")]).interned()
        b = sample_matrix([("a", "b", "L1")], limits=tight).interned()
        assert a is not b

    def test_interned_is_sealed_and_hashable(self):
        matrix = sample_matrix([("a", "b", "L1")])
        with pytest.raises(TypeError):
            hash(matrix)  # mutable matrices stay unhashable
        canonical = matrix.interned()
        assert hash(canonical) == hash(canonical)
        with pytest.raises(ValueError):
            canonical.set("a", "c", PathSet.parse("R1"))
        # ...and the original is still freely mutable.
        matrix.set("a", "c", PathSet.parse("R1"))

    def test_handle_order_distinguishes(self):
        first = PathMatrix(["a", "b"]).interned()
        second = PathMatrix(["b", "a"]).interned()
        assert first is not second  # fingerprints are order-exact

    def test_canonical_form_cached_on_interned(self):
        matrix = sample_matrix([("a", "b", "L1, R1")]).interned()
        assert matrix.canonical_form() is matrix.canonical_form()
        handles, entries = matrix.canonical_form()
        assert handles == tuple(HANDLE_POOL)
        assert entries == (("a", "b", "L1, R1"),)

    def test_from_entries_returns_the_interned_instance(self):
        entries = [("a", "b", PathSet.parse("L1"))]
        first = PathMatrix.from_entries(["a", "b"], entries)
        second = PathMatrix.from_entries(["a", "b"], entries)
        assert first is second and first.is_interned

    def test_merge_delta_reports_changed_rows(self):
        base = sample_matrix([("a", "b", "L1")], handles=["a", "b"])
        other = sample_matrix([("a", "b", "L1"), ("b", "a", "S?")], handles=["a", "b"])
        merged, changed = base.merge_delta(other)
        assert merged == base.merge(other)
        assert changed == ("b",)
        assert merged.row("a") is base.row("a")  # unchanged row reused
        # Absorbing the same contents again changes nothing.
        again, rechanged = merged.merge_delta(other)
        assert rechanged == ()
        assert again.interned() is merged.interned()

    def test_merge_delta_counts_new_handles(self):
        base = PathMatrix(["a"])
        other = sample_matrix([("a", "b", "L1")], handles=["a", "b"])
        _, changed = base.merge_delta(other)
        assert set(changed) == {"a", "b"}

    def test_row_delta_pointer_diff(self):
        before = sample_matrix([("a", "b", "L1"), ("b", "c", "R1")])
        after = before.copy()
        assert row_delta(before, after) == (0, len(HANDLE_POOL))
        after.set("b", "c", PathSet.parse("R2"))
        assert row_delta(before, after) == (1, len(HANDLE_POOL))
        after.remove_handle("c")
        changed, full = row_delta(before, after)
        assert full == len(HANDLE_POOL) - 1 and changed >= 2

    def test_transfer_results_share_unchanged_rows(self):
        matrix = sample_matrix([("a", "b", "L1"), ("c", "b", "R1")]).interned()
        result = apply_basic_statement(matrix, ast.AssignNil(target="a"))
        assert result.matrix.row("c") is matrix.row("c")
        assert result.matrix.row("a") is None


class TestCodecRoundTripsToSameObject:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(HANDLE_POOL),
                st.sampled_from(HANDLE_POOL),
                st.sampled_from(SAMPLE_SETS),
            ),
            max_size=8,
        )
    )
    def test_from_entries_round_trips_through_the_codec(self, raw_entries):
        entries = [
            (source, target, PathSet.parse(text))
            for source, target, text in raw_entries
            if source != target
        ]
        matrix = PathMatrix.from_entries(HANDLE_POOL, entries)
        payload = encode_entry(TransferResult(matrix=matrix), WideningTally())
        decoded, _ = decode_entry(payload, DEFAULT_LIMITS)
        # Not merely equal: the *same* interned object.
        assert decoded.matrix is matrix
        # And decoding twice is stable too.
        redecoded, _ = decode_entry(payload, DEFAULT_LIMITS)
        assert redecoded.matrix is matrix

    def test_intern_tables_reported(self, intern_tables):
        # A path count this large appears nowhere else in the suite, so
        # interning this matrix must grow the tables; the held reference
        # keeps the weak entries alive across the growth read.
        held = sample_matrix([("a", "b", "L7901")]).interned()  # noqa: F841
        growth = intern_tables.growth()
        assert growth["matrices_interned"] >= 1
        assert growth["matrix_rows_interned"] >= 1
        tables = intern_tables.current()
        assert tables["matrices_interned"] > 0
        assert tables["matrix_rows_interned"] > 0


#: Builds a deterministic matrix population and prints a digest of every
#: canonical encoding and persistent transfer key, plus interning facts.
#: Runs in a subprocess under a controlled PYTHONHASHSEED.
_WORKER = """
import hashlib, json, sys
sys.path.insert(0, {src!r})

from repro.analysis.limits import DEFAULT_LIMITS
from repro.analysis.matrix import PathMatrix
from repro.analysis.pathset import PathSet
from repro.cache.codec import canonical_matrix, transfer_key
from repro.sil import ast

POOL = ["a", "b", "c", "h", "h*", "h**"]
SETS = ["S", "S?", "L1", "R+", "S, L1", "S?, D+?", "L1R1, L2?", "D2+?"]

documents = []
for spread in range(1, 5):
    matrix = PathMatrix(POOL, DEFAULT_LIMITS)
    for index, text in enumerate(SETS):
        source = POOL[index % len(POOL)]
        target = POOL[(index + spread) % len(POOL)]
        if source != target:
            matrix.set(source, target, PathSet.parse(text))
    canonical = matrix.interned()
    assert canonical is matrix.interned()  # identity law holds in-process
    documents.append(canonical_matrix(canonical))
    stmt = ast.CopyHandle(target="a", source="b")
    documents.append(transfer_key(stmt, DEFAULT_LIMITS, canonical))

digest = hashlib.sha256(
    json.dumps(documents, sort_keys=True, separators=(",", ":")).encode()
).hexdigest()
print(json.dumps({{"digest": digest, "documents": len(documents)}}))
"""


class TestHashSeedIndependence:
    def _run(self, hash_seed: str) -> dict:
        environment = dict(os.environ, PYTHONHASHSEED=hash_seed)
        completed = subprocess.run(
            [sys.executable, "-c", _WORKER.format(src=SRC)],
            capture_output=True,
            text=True,
            env=environment,
            check=True,
        )
        return json.loads(completed.stdout)

    def test_interned_encodings_are_hash_seed_independent(self):
        first = self._run("0")
        second = self._run("24862")
        assert first["documents"] > 0
        assert first == second
