"""Unit tests for path sets (path-matrix entries)."""

import pytest

from repro.analysis.limits import AnalysisLimits
from repro.analysis.paths import parse_path
from repro.analysis.pathset import PathSet


class TestConstruction:
    def test_empty_set(self):
        empty = PathSet.empty()
        assert empty.is_empty
        assert not empty
        assert len(empty) == 0
        assert empty.format() == ""

    def test_same_singleton(self):
        same = PathSet.same()
        assert same.has_same and same.has_definite_same
        assert not same.has_proper_path
        assert same.format() == "S"

    def test_possible_same(self):
        maybe = PathSet.same(definite=False)
        assert maybe.has_same and maybe.has_possible_same
        assert not maybe.has_definite_same

    def test_parse_round_trip(self):
        entry = PathSet.parse("S?, D+?")
        assert entry.format() == "S?, D+?"
        assert PathSet.parse("") .is_empty
        assert PathSet.parse("{}").is_empty

    def test_duplicate_paths_deduplicate_with_definite_dominating(self):
        entry = PathSet.of(parse_path("L1?"), parse_path("L1"))
        assert len(entry) == 1
        assert entry.format() == "L1"

    def test_subsumed_possible_paths_dropped(self):
        entry = PathSet.of(parse_path("L+?"), parse_path("L1?"), parse_path("L2?"))
        assert entry.format() == "L+?"

    def test_definite_path_survives_possible_subsumer(self):
        entry = PathSet.of(parse_path("L+?"), parse_path("L1"))
        rendered = entry.format()
        assert "L1" in rendered and "L+?" in rendered

    def test_same_is_never_subsumed_by_proper_paths(self):
        entry = PathSet.of(parse_path("S?"), parse_path("D+?"))
        assert entry.has_same and entry.has_proper_path

    def test_equality_and_hash(self):
        first = PathSet.parse("L1, R1")
        second = PathSet.of(parse_path("R1"), parse_path("L1"))
        assert first == second
        assert hash(first) == hash(second)
        assert first != PathSet.parse("L1")


class TestCombination:
    def test_union_accumulates(self):
        result = PathSet.parse("L1").union(PathSet.parse("R1"))
        assert result.format() == "L1, R1"

    def test_union_definite_dominates(self):
        result = PathSet.parse("L1?").union(PathSet.parse("L1"))
        assert result.format() == "L1"

    def test_union_with_empty(self):
        entry = PathSet.parse("L1")
        assert entry.union(PathSet.empty()) == entry
        assert PathSet.empty().union(entry) == entry

    def test_merge_demotes_one_sided_paths(self):
        result = PathSet.parse("S").merge(PathSet.parse("L1"))
        assert result.format() == "S?, L1?"

    def test_merge_keeps_definite_only_if_both_definite(self):
        assert PathSet.parse("L1").merge(PathSet.parse("L1")).format() == "L1"
        assert PathSet.parse("L1").merge(PathSet.parse("L1?")).format() == "L1?"

    def test_merge_is_commutative(self):
        first = PathSet.parse("S, L1")
        second = PathSet.parse("L1, R2?")
        assert first.merge(second) == second.merge(first)

    def test_weakened(self):
        weak = PathSet.parse("S, L1").weakened()
        assert weak.format() == "S?, L1?"

    def test_map_expands_paths(self):
        entry = PathSet.parse("L1, R1")
        doubled = entry.map(lambda p: [p, p.as_possible()])
        assert doubled == entry  # same segments; definite dominates

    def test_map_can_drop_paths(self):
        entry = PathSet.parse("L1, R1")
        lefts = entry.map(lambda p: [p] if p.segments[0].direction.value == "L" else [])
        assert lefts.format() == "L1"


class TestCollapseAndOrder:
    def test_collapse_respects_limit(self):
        limits = AnalysisLimits(max_paths_per_entry=3)
        entry = PathSet.of(
            parse_path("S?"),
            parse_path("L1R1"),
            parse_path("R1L1"),
            parse_path("L2R2"),
            parse_path("R2L2"),
        )
        collapsed = entry.collapse(limits)
        assert len(collapsed) <= 3
        assert collapsed.has_same

    def test_collapse_is_identity_when_small(self):
        entry = PathSet.parse("S, L1")
        assert entry.collapse() == entry

    def test_collapse_result_covers_original(self):
        from repro.analysis.paths import subsumes

        limits = AnalysisLimits(max_paths_per_entry=2)
        paths = [parse_path("L1R1"), parse_path("R1L1"), parse_path("L2R2")]
        collapsed = list(PathSet(paths).collapse(limits))
        proper = [p for p in collapsed if not p.is_same]
        assert len(proper) == 1
        assert all(subsumes(proper[0], original) for original in paths)

    def test_subset_order(self):
        small = PathSet.parse("L1")
        big = PathSet.parse("L1, R1")
        assert small.is_subset_of(big)
        assert not big.is_subset_of(small)
        assert PathSet.empty().is_subset_of(small)

    def test_iteration_yields_paths(self):
        entry = PathSet.parse("S?, L1")
        assert {p.is_same for p in entry} == {True, False}
