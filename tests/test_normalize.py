"""Unit tests for normalization (lowering to basic handle statements)."""

import pytest

from repro.sil import ast
from repro.sil.errors import NormalizationError
from repro.sil.normalize import normalize_program, parse_and_normalize
from repro.sil.parser import parse_program


def normalize(source):
    return parse_and_normalize(source)


def main_stmts(source):
    program, _ = normalize(source)
    return program.main.body.stmts


def wrap(body, locals_="a, b, t1, t2: handle; x, y: int"):
    return f"program p procedure main() {locals_} begin {body} end"


class TestBasicLowering:
    def test_nil_assignment(self):
        stmts = main_stmts(wrap("a := nil"))
        assert isinstance(stmts[0], ast.AssignNil)

    def test_new_assignment(self):
        stmts = main_stmts(wrap("a := new()"))
        assert isinstance(stmts[0], ast.AssignNew)

    def test_handle_copy(self):
        stmts = main_stmts(wrap("a := new(); b := a"))
        assert isinstance(stmts[1], ast.CopyHandle)
        assert stmts[1].source == "a"

    def test_load_field(self):
        stmts = main_stmts(wrap("a := new(); b := a.left"))
        assert isinstance(stmts[1], ast.LoadField)
        assert stmts[1].field_name is ast.Field.LEFT

    def test_store_field(self):
        stmts = main_stmts(wrap("a := new(); b := new(); a.right := b"))
        store = stmts[2]
        assert isinstance(store, ast.StoreField)
        assert store.field_name is ast.Field.RIGHT and store.source == "b"

    def test_store_field_nil(self):
        stmts = main_stmts(wrap("a := new(); a.left := nil"))
        store = stmts[1]
        assert isinstance(store, ast.StoreField)
        assert store.source is None

    def test_load_value(self):
        stmts = main_stmts(wrap("a := new(); x := a.value"))
        assert isinstance(stmts[1], ast.LoadValue)

    def test_store_value(self):
        stmts = main_stmts(wrap("a := new(); a.value := x + 1"))
        assert isinstance(stmts[1], ast.StoreValue)

    def test_scalar_assignment(self):
        stmts = main_stmts(wrap("x := 1 + 2 * y"))
        assert isinstance(stmts[0], ast.ScalarAssign)

    def test_result_is_core(self):
        program, _ = normalize(wrap("a := new(); a.left := new(); x := a.value + 1"))
        assert ast.program_is_core(program)


class TestChainedAccessLowering:
    def test_paper_example_complex_statement(self):
        """a.left.right := b.right becomes t1 := a.left; t2 := b.right; t1.right := t2."""
        stmts = main_stmts(wrap("a := new(); a.left := new(); b := new(); a.left.right := b.right"))
        tail = stmts[-3:]
        kinds = [type(s).__name__ for s in tail]
        assert kinds == ["LoadField", "LoadField", "StoreField"]
        load_a, load_b, store = tail
        assert load_a.source == "a" and load_a.field_name is ast.Field.LEFT
        assert load_b.source == "b" and load_b.field_name is ast.Field.RIGHT
        assert store.field_name is ast.Field.RIGHT
        assert store.target == load_a.target
        assert store.source == load_b.target

    def test_long_chain_on_rhs(self):
        stmts = main_stmts(
            wrap("a := new(); a.left := new(); a.left.left := new(); b := a.left.left.right")
        )
        kinds = [type(s).__name__ for s in stmts]
        # The final surface assignment becomes two loads feeding a third.
        assert kinds[-3:] == ["LoadField", "LoadField", "LoadField"]

    def test_temporaries_are_declared(self):
        program, info = normalize(wrap("a := new(); a.left := new(); b := a.left.right"))
        scope = info.for_procedure("main")
        temps = [name for name in scope.handle_variables() if name.startswith("_t")]
        assert temps, "expected at least one handle temporary"

    def test_temporaries_do_not_collide(self):
        source = "program p procedure main() a, _t1: handle begin a := new(); a.left := new(); _t1 := a.left.left end"
        program, info = normalize(source)
        names = info.for_procedure("main").handle_variables()
        assert len(names) == len(set(names))

    def test_value_read_of_simple_handle_kept_inline(self):
        """h.value := h.value + n stays a single StoreValue (Figure 7/8 shape)."""
        stmts = main_stmts(wrap("a := new(); a.value := a.value + 1"))
        assert len(stmts) == 2
        store = stmts[1]
        assert isinstance(store, ast.StoreValue)
        reads = [sub for sub in ast.walk_expr(store.expr) if isinstance(sub, ast.FieldAccess)]
        assert len(reads) == 1

    def test_value_read_through_chain_is_hoisted(self):
        stmts = main_stmts(wrap("a := new(); a.left := new(); x := a.left.value + 1"))
        kinds = [type(s).__name__ for s in stmts]
        assert "LoadField" in kinds
        assert isinstance(stmts[-1], ast.ScalarAssign)


class TestCallLowering:
    def test_handle_argument_must_become_name(self):
        source = (
            "program p procedure main() a: handle begin a := new(); a.left := new(); "
            "touch(a.left) end procedure touch(h: handle) begin end"
        )
        program, _ = normalize(source)
        stmts = program.main.body.stmts
        call = stmts[-1]
        assert isinstance(call, ast.ProcCall)
        assert isinstance(call.args[0], ast.Name)
        assert isinstance(stmts[-2], ast.LoadField)

    def test_nil_argument_allowed(self):
        source = (
            "program p procedure main() begin touch(nil) end "
            "procedure touch(h: handle) begin end"
        )
        program, _ = normalize(source)
        call = program.main.body.stmts[-1]
        assert isinstance(call.args[0], ast.NilLit)

    def test_function_call_becomes_func_assign(self):
        source = (
            "program p procedure main() x: int begin x := f(1) + 2 end "
            "function f(n: int): int r: int begin r := n end return (r)"
        )
        program, _ = normalize(source)
        kinds = [type(s).__name__ for s in program.main.body.stmts]
        assert kinds == ["FuncAssign", "ScalarAssign"]

    def test_nested_function_calls(self):
        source = (
            "program p procedure main() x: int begin x := f(f(1)) end "
            "function f(n: int): int r: int begin r := n + 1 end return (r)"
        )
        program, _ = normalize(source)
        kinds = [type(s).__name__ for s in program.main.body.stmts]
        assert kinds == ["FuncAssign", "FuncAssign"]

    def test_handle_function_result_assignment(self):
        source = (
            "program p procedure main() h: handle begin h := mk() end "
            "function mk(): handle t: handle begin t := new() end return (t)"
        )
        program, _ = normalize(source)
        assert isinstance(program.main.body.stmts[0], ast.FuncAssign)


class TestControlFlowLowering:
    def test_if_branches_normalized(self):
        stmts = main_stmts(wrap("a := new(); if a <> nil then a.left := a.right"))
        branch = stmts[1].then_branch
        assert isinstance(branch, ast.Block)
        assert all(ast.is_core_stmt(s) for s in ast.walk_stmt(branch))

    def test_while_body_normalized(self):
        stmts = main_stmts(wrap("a := new(); while a <> nil do a := a.left"))
        assert isinstance(stmts[1], ast.WhileStmt)
        assert isinstance(stmts[1].body, ast.LoadField)

    def test_function_call_in_condition_rejected(self):
        source = (
            "program p procedure main() x: int begin if f(1) > 0 then x := 1 end "
            "function f(n: int): int r: int begin r := n end return (r)"
        )
        with pytest.raises(NormalizationError):
            normalize(source)

    def test_new_in_condition_rejected(self):
        with pytest.raises(NormalizationError):
            normalize(wrap("if new() = nil then x := 1"))

    def test_parallel_statement_branches_normalized(self):
        stmts = main_stmts(wrap("a := new(); b := new(); a.value := 1 || b.value := 2"))
        par = stmts[2]
        assert isinstance(par, ast.ParallelStmt)
        assert all(isinstance(b, ast.StoreValue) for b in par.branches)

    def test_original_program_untouched(self):
        program = parse_program(wrap("a := new(); b := a.left"))
        before = ast.count_statements(program)
        normalize_program(program)
        assert ast.count_statements(program) == before
        assert not ast.program_is_core(program)

    def test_idempotent_on_core_programs(self, add_and_reverse):
        program, info = add_and_reverse
        again, _ = normalize_program(program, None)
        assert ast.count_statements(again) == ast.count_statements(program)
