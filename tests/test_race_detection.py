"""Unit tests for the dynamic race detector (parallel statement validation)."""

import pytest

from repro.runtime import run_source
from repro.runtime.trace import AccessSet, FieldLocation, VarLocation


def wrap(body, decls="a, b, c: handle; x, y: int"):
    return f"program p procedure main() {decls} begin {body} end"


class TestAccessSets:
    def test_conflict_requires_a_write(self):
        first, second = AccessSet(), AccessSet()
        location = FieldLocation(1, "value")
        first.record_read(location)
        second.record_read(location)
        assert not first.conflicts_with(second)

    def test_write_read_conflict(self):
        first, second = AccessSet(), AccessSet()
        location = VarLocation(1, "x")
        first.record_write(location)
        second.record_read(location)
        assert first.conflicts_with(second) == {location}
        assert second.conflicts_with(first) == {location}

    def test_write_write_conflict(self):
        first, second = AccessSet(), AccessSet()
        location = FieldLocation(2, "left")
        first.record_write(location)
        second.record_write(location)
        assert first.conflicts_with(second) == {location}

    def test_distinct_locations_do_not_conflict(self):
        first, second = AccessSet(), AccessSet()
        first.record_write(FieldLocation(1, "left"))
        second.record_write(FieldLocation(1, "right"))
        assert not first.conflicts_with(second)


class TestRaceFreePrograms:
    def test_disjoint_value_updates(self):
        result = run_source(wrap("a := new(); b := new(); a.value := 1 || b.value := 2"))
        assert result.race_free

    def test_disjoint_field_updates_on_same_node(self):
        # left and right of the same node are different locations.
        result = run_source(wrap("a := new(); b := new(); c := new(); a.left := b || a.right := c"))
        assert result.race_free

    def test_reads_of_shared_node_are_not_races(self):
        result = run_source(wrap("a := new(); a.value := 5; x := a.value || y := a.value"))
        assert result.race_free

    def test_parallel_calls_on_disjoint_subtrees(self):
        source = """
        program p
        procedure main()
          root, l, r: handle
        begin
          root := new();
          root.left := new();
          root.right := new();
          l := root.left;
          r := root.right;
          bump(l) || bump(r)
        end
        procedure bump(h: handle)
        begin
          h.value := h.value + 1
        end
        """
        result = run_source(source)
        assert result.race_free
        assert result.parallel_statements == 1


class TestRacyPrograms:
    def test_write_write_race_on_value(self):
        result = run_source(wrap("a := new(); b := a; a.value := 1 || b.value := 2"))
        assert not result.race_free
        assert len(result.races) == 1
        locations = {str(l) for l in result.races[0].locations}
        assert any(".value" in l for l in locations)

    def test_read_write_race_on_variable(self):
        result = run_source(wrap("x := 1; x := 2 || y := x"))
        assert not result.race_free

    def test_race_through_aliased_handles(self):
        result = run_source(
            wrap("a := new(); a.left := new(); b := a.left; c := a.left; b.value := 1 || c.value := 2")
        )
        assert not result.race_free

    def test_parallel_calls_on_overlapping_subtrees_race(self):
        source = """
        program p
        procedure main()
          root, l: handle
        begin
          root := new();
          root.left := new();
          l := root.left;
          bump(root) || bump(l)
        end
        procedure bump(h: handle)
          c: handle
        begin
          h.value := h.value + 1;
          c := h.left;
          if c <> nil then bump(c)
        end
        """
        result = run_source(source)
        assert not result.race_free

    def test_race_report_identifies_branches(self):
        result = run_source(wrap("a := new(); a.value := 1 || x := 2 || a.value := 3"))
        assert len(result.races) == 1
        assert result.races[0].branch_indices == (0, 2)

    def test_races_in_nested_parallel_statements(self):
        result = run_source(
            wrap("a := new(); b := new(); begin a.value := 1 || b.value := 2 end || a.value := 3")
        )
        assert not result.race_free

    def test_variable_race_between_branches(self):
        result = run_source(wrap("x := 1 || x := 2"))
        assert not result.race_free
        assert isinstance(next(iter(result.races[0].locations)), VarLocation)
