"""Invariants of the hash-consed path domain.

The analysis relies on interning for both speed (identity equality,
precomputed hashes, memoized operations) and correctness (the memo caches
key on object identity, which is only sound if equal values are always the
same object).  These tests pin down those laws.
"""

import pytest

from repro.analysis.limits import AnalysisLimits
from repro.analysis.matrix import PathMatrix
from repro.analysis.paths import (
    Direction,
    Path,
    PathSegment,
    MAYBE_SAME,
    SAME,
    parse_path,
    paths_may_intersect,
    subsumes,
)
from repro.analysis.pathset import PathSet, intern_table_sizes
from repro.analysis.transfer import (
    TransferCache,
    apply_basic_statement_cached,
)
from repro.sil import ast


SAMPLE_SETS = [
    "S",
    "S?",
    "L1",
    "R+",
    "S, L1",
    "S?, D+?",
    "L1, R1",
    "L+, R+?",
    "L1L+, R2",
    "D2+?",
    "L1R1, L2?",
    "",
]


def sets():
    return [PathSet.parse(text) for text in SAMPLE_SETS]


class TestSegmentInterning:
    def test_identity(self):
        a = PathSegment(Direction.LEFT, 2, True)
        b = PathSegment(Direction.LEFT, 2, True)
        assert a is b

    def test_distinct(self):
        assert PathSegment(Direction.LEFT, 2, True) is not PathSegment(
            Direction.LEFT, 2, False
        )

    def test_equality_hash_law(self):
        a = PathSegment(Direction.DOWN, 3, False)
        b = PathSegment(Direction.DOWN, 3, False)
        assert a == b and hash(a) == hash(b)

    def test_validation_still_applies(self):
        with pytest.raises(ValueError):
            PathSegment(Direction.LEFT, 0, True)

    def test_immutable(self):
        segment = PathSegment(Direction.LEFT, 1, True)
        with pytest.raises(AttributeError):
            segment.count = 5


class TestPathInterning:
    def test_identity(self):
        assert parse_path("L1R+") is parse_path("L1R+")

    def test_definiteness_distinguishes(self):
        assert parse_path("L1") is not parse_path("L1?")

    def test_module_constants_are_the_interned_instances(self):
        assert Path((), True) is SAME
        assert Path((), False) is MAYBE_SAME

    def test_equality_hash_law(self):
        a = parse_path("L1L+")
        b = Path(a.segments, a.definite)
        assert a is b and a == b and hash(a) == hash(b)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            parse_path("L1").definite = False

    def test_predicates_are_consistent_with_memoization(self):
        first, second = parse_path("L+"), parse_path("L2")
        # Memoized and repeated calls agree (and self-intersection holds).
        assert paths_may_intersect(first, second) is paths_may_intersect(first, second)
        assert paths_may_intersect(first, first)
        assert subsumes(first, second) is subsumes(first, second)
        assert subsumes(first, second)


class TestPathSetInterning:
    def test_identity_is_content_based(self):
        assert PathSet.parse("S?, D+?") is PathSet.parse("D+?, S?")

    def test_equality_hash_law(self):
        for a in sets():
            b = PathSet(list(a))
            assert a is b
            assert a == b and hash(a) == hash(b)

    def test_empty_singleton(self):
        assert PathSet.empty() is PathSet.parse("")

    def test_union_commutative_and_interned(self):
        for a in sets():
            for b in sets():
                assert a.union(b) is b.union(a)

    def test_union_idempotent(self):
        for a in sets():
            assert a.union(a) is a

    def test_union_associative(self):
        pool = sets()
        for a in pool:
            for b in pool:
                for c in pool:
                    assert a.union(b).union(c) is a.union(b.union(c))

    def test_merge_commutative_and_interned(self):
        for a in sets():
            for b in sets():
                assert a.merge(b) is b.merge(a)

    def test_merge_idempotent(self):
        for a in sets():
            assert a.merge(a) is a

    def test_merge_associative(self):
        pool = sets()
        for a in pool:
            for b in pool:
                for c in pool:
                    assert a.merge(b).merge(c) is a.merge(b.merge(c))

    def test_weakened_stable(self):
        for a in sets():
            weak = a.weakened()
            assert weak.weakened() is weak

    def test_collapse_memoized(self):
        limits = AnalysisLimits(max_paths_per_entry=1)
        big = PathSet.parse("L1, L2, R1")
        assert big.collapse(limits) is big.collapse(limits)

    def test_intern_tables_reported(self, intern_tables):
        # Counts this large appear nowhere else in the suite, so the parse
        # must intern fresh entries; the held reference keeps the weak
        # table rows alive across the growth read.
        # (>= 1, not an exact count: the tables are weak, so unrelated
        # entries may be collected between the snapshot and this read.)
        held = PathSet.parse("L6401, L6402, R6403")  # noqa: F841
        growth = intern_tables.growth()
        assert growth["paths_interned"] >= 1
        assert growth["pathsets_interned"] >= 1
        tables = intern_tables.current()
        assert tables["paths_interned"] > 0
        assert tables["pathsets_interned"] > 0


class TestMatrixFingerprint:
    def test_fingerprint_tracks_mutation(self):
        matrix = PathMatrix(["a", "b"])
        before = matrix.fingerprint()
        assert matrix.fingerprint() is before  # cached between mutations
        matrix.set("a", "b", PathSet.parse("L1"))
        assert matrix.fingerprint() != before

    def test_equal_contents_equal_fingerprints(self):
        first = PathMatrix(["a", "b"])
        first.set("a", "b", PathSet.parse("L1"))
        second = PathMatrix(["a", "b"])
        second.set("a", "b", PathSet.parse("L1"))
        assert first.fingerprint() == second.fingerprint()

    def test_copy_shares_fingerprint_value(self):
        matrix = PathMatrix(["a", "b"])
        matrix.set("a", "b", PathSet.parse("L+?"))
        assert matrix.copy().fingerprint() == matrix.fingerprint()


class TestTransferMemoization:
    def test_hit_returns_identical_result(self):
        cache = TransferCache(capacity=64)
        stmt = ast.CopyHandle(target="a", source="b")
        matrix = PathMatrix(["a", "b", "c"])
        matrix.set("b", "c", PathSet.parse("L1"))

        class Stats:
            transfer_cache_hits = 0
            transfer_cache_misses = 0

        stats = Stats()
        first = apply_basic_statement_cached(matrix, stmt, cache=cache, stats=stats)
        second = apply_basic_statement_cached(
            matrix.copy(), stmt, cache=cache, stats=stats
        )
        assert second is first  # identical TransferResult object
        assert stats.transfer_cache_hits == 1 and stats.transfer_cache_misses == 1

    def test_lru_bound_respected(self):
        cache = TransferCache(capacity=2)
        stmts = [ast.AssignNil(target=f"v{i}") for i in range(4)]
        matrix = PathMatrix([f"v{i}" for i in range(4)])
        for stmt in stmts:
            apply_basic_statement_cached(matrix, stmt, cache=cache)
        assert len(cache) == 2
