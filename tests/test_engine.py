"""Tests for the whole-program analysis engine (program points, entry matrices)."""

import pytest

from repro.analysis import analyze_program
from repro.analysis.limits import AnalysisLimits
from repro.sil import ast
from repro.sil.normalize import parse_and_normalize
from repro.workloads import load


class TestProgramPoints:
    def test_point_a_matches_figure_7(self, add_and_reverse_analysis):
        """pA: root -> lside = L1, root -> rside = R1, lside/rside unrelated."""
        analysis = add_and_reverse_analysis
        point_a = analysis.point_before_call("main", "add_n", 0)
        assert point_a.get("root", "lside").format() == "L1"
        assert point_a.get("root", "rside").format() == "R1"
        assert point_a.unrelated("lside", "rside")

    def test_point_b_recursive_calls_are_independent(self, add_and_reverse_analysis):
        """pB: the recursive add_n arguments l and r are unrelated."""
        point_b = add_and_reverse_analysis.point_before_call("add_n", "add_n", 0)
        assert point_b.get("h", "l").format() == "L1"
        assert point_b.get("h", "r").format() == "R1"
        assert point_b.unrelated("l", "r")

    def test_point_b_tracks_symbolic_handles(self, add_and_reverse_analysis):
        point_b = add_and_reverse_analysis.point_before_call("add_n", "add_n", 0)
        assert "h*" in point_b and "h**" in point_b
        # The original caller's argument is at or above the current handle.
        assert not point_b.get("h*", "h").is_empty
        # Stacked invocations' arguments are strict ancestors of the current handle.
        assert point_b.get("h**", "h").has_proper_path
        assert point_b.get("h", "h**").is_empty

    def test_point_c_in_reverse(self, add_and_reverse_analysis):
        point_c = add_and_reverse_analysis.point_before_call("reverse", "reverse", 0)
        assert point_c.unrelated("l", "r")

    def test_matrices_recorded_before_and_after_each_statement(self, add_and_reverse_analysis):
        analysis = add_and_reverse_analysis
        main = analysis.program.procedure("main")
        for stmt in main.body.stmts:
            before = analysis.matrix_before(stmt)
            after = analysis.matrix_after(stmt)
            assert before is not None and after is not None

    def test_lookup_of_foreign_statement_fails(self, add_and_reverse_analysis):
        with pytest.raises(KeyError):
            add_and_reverse_analysis.matrix_before(ast.SkipStmt())

    def test_point_before_call_bad_occurrence(self, add_and_reverse_analysis):
        with pytest.raises(KeyError):
            add_and_reverse_analysis.point_before_call("main", "add_n", 5)


class TestEntryMatrices:
    def test_reachable_procedures(self, add_and_reverse_analysis):
        assert set(add_and_reverse_analysis.reachable_procedures()) == {
            "main",
            "add_n",
            "reverse",
            "build",
        }

    def test_entry_matrix_of_recursive_procedure(self, add_and_reverse_analysis):
        entry = add_and_reverse_analysis.entry_matrix("add_n")
        assert set(entry.handles) >= {"h", "h*", "h**"}
        # The current argument can never be an ancestor of a stacked argument.
        assert entry.get("h", "h**").is_empty
        assert entry.get("h**", "h").has_proper_path

    def test_summary_accessor(self, add_and_reverse_analysis):
        assert add_and_reverse_analysis.summary("add_n").update_params == {"h"}

    def test_iterations_reported(self, add_and_reverse_analysis):
        assert add_and_reverse_analysis.iterations >= 2

    def test_statements_in_procedure(self, add_and_reverse_analysis):
        stmts = add_and_reverse_analysis.statements_in("reverse")
        assert any(isinstance(s, ast.StoreField) for s in stmts)


class TestWhileLoops:
    def test_figure3_list_walk_fixed_point(self):
        """The Figure 3 while loop stabilizes with h related to l via L+."""
        program, info = load("list_walk", depth=6)
        analysis = analyze_program(program, info)
        main = program.main
        loop = next(s for s in ast.walk_stmt(main.body) if isinstance(s, ast.WhileStmt))
        history = analysis.loop_history(loop)
        assert len(history) >= 3
        final = analysis.matrix_after(loop)
        entry = final.get("head", "l")
        # After any number of iterations l is the head itself or some number
        # of left links below it.
        assert entry.has_same
        assert any(not p.is_same and p.segments[0].direction.value == "L" for p in entry)
        # l never points above the head of the list.
        assert final.get("l", "head").format() in ("", "S?")

    def test_loop_history_is_monotone_in_handles(self):
        program, info = load("list_walk", depth=4)
        analysis = analyze_program(program, info)
        loop = next(
            s for s in ast.walk_stmt(program.main.body) if isinstance(s, ast.WhileStmt)
        )
        history = analysis.loop_history(loop)
        assert history[-1] == history[-2]  # reached a fixed point

    def test_bst_loop_terminates(self):
        program, info = load("bst_build", depth=8)
        analysis = analyze_program(program, info)
        assert "insert" in analysis.entry_matrices


class TestStructureDiagnostics:
    def test_reverse_reports_temporary_sharing(self, add_and_reverse_analysis):
        diagnostics = add_and_reverse_analysis.diagnostics_in("reverse")
        assert any(d.is_sharing for d in diagnostics)
        assert all(not d.is_cycle for d in diagnostics)

    def test_cycle_bug_program_reports_cycle(self):
        program, info = load("cycle_bug")
        analysis = analyze_program(program, info)
        assert any(d.is_cycle for d in analysis.diagnostics)

    def test_dag_sharing_program_reports_sharing_not_cycle(self):
        program, info = load("dag_sharing")
        analysis = analyze_program(program, info)
        assert any(d.is_sharing for d in analysis.diagnostics)
        assert not any(d.is_cycle for d in analysis.diagnostics)

    def test_tree_add_is_clean(self):
        program, info = load("tree_add", depth=3)
        analysis = analyze_program(program, info)
        assert not any(d.is_cycle for d in analysis.diagnostics)


class TestRobustness:
    def test_requires_core_program(self):
        from repro.sil.parser import parse_program

        surface = parse_program(
            "program p procedure main() a: handle begin a := new(); a.left.right := nil end"
        )
        with pytest.raises(ValueError):
            analyze_program(surface)

    def test_small_limits_still_terminate(self):
        program, info = load("add_and_reverse", depth=3)
        limits = AnalysisLimits(max_exact_count=2, max_segments=2, max_paths_per_entry=3)
        analysis = analyze_program(program, info, limits=limits)
        point_b = analysis.point_before_call("add_n", "add_n", 0)
        assert point_b.unrelated("l", "r")

    def test_all_workloads_analyze(self):
        from repro.workloads import WORKLOADS

        for name in WORKLOADS:
            program, info = load(name, depth=3)
            analysis = analyze_program(program, info)
            assert analysis.entry_matrices
