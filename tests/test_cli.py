"""End-to-end coverage for the ``python -m repro`` batch-analysis CLI."""

import json

import pytest

from repro.cli import main
from repro.sil.normalize import parse_and_normalize
from repro.workloads import WORKLOADS


class TestAnalyzeCommand:
    def test_analyze_named_workloads(self, capsys):
        assert main(["analyze", "tree_add", "list_walk"]) == 0
        out = capsys.readouterr().out
        assert "ok    tree_add" in out
        assert "ok    list_walk" in out
        assert "merged AnalysisStats" in out

    def test_analyze_defaults_to_all_workloads(self, capsys):
        assert main(["analyze", "--depth", "3"]) == 0
        out = capsys.readouterr().out
        for name in WORKLOADS:
            assert f"ok    {name}" in out

    def test_analyze_sharded_with_generated_and_census(self, capsys):
        assert main(
            ["analyze", "tree_add", "--generated", "3", "--shards", "2", "--census"]
        ) == 0
        out = capsys.readouterr().out
        assert "parallelism census" in out
        assert "shards (2)" in out

    def test_analyze_matrices_flag(self, capsys):
        assert main(["analyze", "add_and_reverse", "--matrices"]) == 0
        out = capsys.readouterr().out
        # The recursive procedures' entry matrices carry the h*/h** rows.
        assert "add_n: h* -> h" in out

    def test_analyze_unknown_workload_fails(self, capsys):
        assert main(["analyze", "nope"]) == 2
        assert "unknown workloads" in capsys.readouterr().err

    def test_analyze_duplicate_workload_fails_cleanly(self, capsys):
        assert main(["analyze", "tree_add", "tree_add"]) == 2
        assert "duplicate workloads" in capsys.readouterr().err

    def test_analyze_census_isolates_failures(self, capsys, monkeypatch):
        broken = "program broken\n\nprocedure main()\n  x: int\nbegin\n  x := y\nend\n"
        monkeypatch.setitem(WORKLOADS, "broken", broken)
        assert main(["analyze", "broken", "tree_add", "--census"]) == 1
        out = capsys.readouterr().out
        assert "FAIL  broken" in out
        assert "broken" in out and "TypeCheckError" in out
        # The census still reports the healthy workload.
        assert "tree_add" in out.split("parallelism census")[1]

    def test_analyze_list(self, capsys):
        assert main(["analyze", "--list"]) == 0
        out = capsys.readouterr().out
        assert "tree_add" in out and "mixed" in out
        # The DAG-heavy / deep-recursion families are advertised.
        assert "dag" in out and "deep" in out

    def test_analyze_prints_widening_telemetry(self, capsys):
        assert main(["analyze", "--generated", "2", "--family", "deep"]) == 0
        out = capsys.readouterr().out
        assert "widening telemetry" in out
        assert "segment_collapses=" in out

    def test_analyze_adaptive_escalates_on_deep_scenarios(self, capsys):
        assert main(
            ["analyze", "--generated", "2", "--family", "deep", "--adaptive"]
        ) == 0
        out = capsys.readouterr().out
        assert "[adaptive limits]" in out
        assert "adaptive_escalations=" in out


class TestCacheOptions:
    def test_analyze_reports_configured_cache_size(self, capsys):
        assert main(["analyze", "tree_add", "--cache-size", "512"]) == 0
        out = capsys.readouterr().out
        assert "transfer cache: size=512 policy=lru" in out

    def test_analyze_default_cache_line_without_persistent_tier(self, capsys):
        assert main(["analyze", "tree_add"]) == 0
        out = capsys.readouterr().out
        assert "transfer cache: size=4096 policy=lru persistent=none" in out

    def test_analyze_warm_rerun_against_cache_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(["analyze", "tree_add", "bst_build", "--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr().out
        assert "persistent=disk @" in cold
        assert "writes=" in cold

        assert main(["analyze", "tree_add", "bst_build", "--cache-dir", cache_dir]) == 0
        warm = capsys.readouterr().out
        assert "hit_rate=1.0000" in warm
        assert "writes=0" in warm

    def test_cache_policy_flag_accepted(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(
            ["analyze", "tree_add", "--cache-dir", cache_dir, "--cache-policy", "lfu"]
        ) == 0
        assert "policy=lfu" in capsys.readouterr().out
        # The store records the policy it was written under; stats reports
        # it even though the stats subcommand opens with the default.
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["policy"] == "lfu"

    def test_cache_policy_applies_without_persistent_tier(self, capsys):
        # --cache-policy governs the in-memory layer on its own: no
        # --cache-dir/--cache-backend needed for an lru-vs-lfu comparison.
        assert main(["analyze", "tree_add", "--cache-policy", "lfu"]) == 0
        assert "policy=lfu persistent=none" in capsys.readouterr().out

    def test_disk_backend_without_dir_fails_cleanly(self, capsys):
        assert main(["analyze", "tree_add", "--cache-backend", "disk"]) == 2
        assert "requires a directory" in capsys.readouterr().err

    def test_memory_backend_with_multiple_shards_warns(self, tmp_path, capsys):
        from repro.cache import reset_memory_backends

        reset_memory_backends()
        try:
            assert main(
                ["analyze", "tree_add", "bst_build", "--cache-backend", "memory",
                 "--shards", "2"]
            ) == 0
            err = capsys.readouterr().err
            assert "process-local" in err and "--cache-dir" in err
        finally:
            reset_memory_backends()

    def test_memory_backend_needs_no_dir(self, capsys):
        from repro.cache import reset_memory_backends

        reset_memory_backends()
        try:
            assert main(["analyze", "tree_add", "--cache-backend", "memory"]) == 0
            assert "persistent=memory" in capsys.readouterr().out
            # Same process, fresh run: the shared memory store is warm.
            assert main(["analyze", "tree_add", "--cache-backend", "memory"]) == 0
            assert "hit_rate=1.0000" in capsys.readouterr().out
        finally:
            reset_memory_backends()


class TestCacheSubcommand:
    def test_stats_on_missing_store(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "nope")]) == 0
        assert "no transfer-cache store" in capsys.readouterr().out

    def test_stats_and_clear_round_trip(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(["analyze", "tree_add", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "writes" in out

        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] > 0 and stats["backend"] == "disk"

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0


class TestGenerateCommand:
    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "--count", "2", "--family", "tree"]) == 0
        out = capsys.readouterr().out
        assert out.count("program tree_s") == 2

    def test_generate_to_directory_parses_back(self, tmp_path):
        out_dir = tmp_path / "scenarios"
        assert main(["generate", "--count", "4", "--out", str(out_dir)]) == 0
        files = sorted(out_dir.glob("*.sil"))
        assert len(files) == 4
        for path in files:
            program, _ = parse_and_normalize(path.read_text())
            assert program.name == path.stem

    def test_generate_verify_cross_checks(self, capsys):
        assert main(["generate", "--count", "2", "--depth", "2", "--verify"]) == 0
        assert "cross-checked 2 scenarios" in capsys.readouterr().err


class TestBenchCommand:
    def test_bench_end_to_end_writes_merged_artifact(self, tmp_path, capsys):
        artifact_path = tmp_path / "BENCH_analysis.json"
        assert main(
            ["bench", "--shards", "2", "--seeds", "5", "--output", str(artifact_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "bit-identical to single process: True" in out

        artifact = json.loads(artifact_path.read_text())
        assert artifact["verified_identical"] is True
        assert artifact["population"]["generated_scenarios"] == 5
        # Merged stats carry counters only — no parent-process intern sizes.
        assert "pathsets_interned" not in artifact["sharded"]["stats"]
        assert artifact["sharded"]["workloads_analyzed"] == len(WORKLOADS) + 5
        shards = artifact["sharded"]["shards"]
        assert len(shards) == 2
        merged = artifact["sharded"]["stats"]
        for counter in ("worklist_pops", "programs_analyzed", "statements_visited"):
            assert merged[counter] == sum(shard["stats"][counter] for shard in shards)

    def test_bench_no_verify_skips_reference_run(self, tmp_path, capsys):
        artifact_path = tmp_path / "bench.json"
        assert main(
            ["bench", "--shards", "1", "--seeds", "2", "--no-verify",
             "--output", str(artifact_path)]
        ) == 0
        artifact = json.loads(artifact_path.read_text())
        assert "verified_identical" not in artifact
        assert "single-process reference" not in capsys.readouterr().out

    def test_bench_artifact_carries_per_workload_widening_telemetry(self, tmp_path):
        artifact_path = tmp_path / "bench.json"
        assert main(
            ["bench", "--shards", "2", "--seeds", "4", "--family", "deep",
             "--adaptive", "--output", str(artifact_path)]
        ) == 0
        artifact = json.loads(artifact_path.read_text())
        assert artifact["population"]["adaptive_limits"] is True
        assert artifact["verified_identical"] is True  # sharded == single process
        widening = artifact["sharded"]["widening"]
        assert len(widening) == len(WORKLOADS) + 4
        deep_rows = [row for name, row in widening.items() if name.startswith("deep_")]
        assert deep_rows and all(row["segment_collapses"] > 0 for row in deep_rows)
        assert all(row["adaptive_escalations"] >= 1 for row in deep_rows)
        # The safety net never fires; the final rung is recorded per workload.
        assert all(row["iteration_guard_trips"] == 0 for row in widening.values())
        assert all("max_segments" in row["final_limits"] for row in widening.values())
        merged = artifact["sharded"]["stats"]
        for counter in ("segment_collapses", "path_set_collapses", "adaptive_escalations"):
            assert counter in merged

    def test_bench_artifact_records_cache_section_and_digest(self, tmp_path):
        artifact_path = tmp_path / "bench.json"
        cache_dir = str(tmp_path / "store")
        assert main(
            ["bench", "--shards", "2", "--seeds", "3", "--cache-dir", cache_dir,
             "--cache-policy", "lfu", "--cache-size", "2048",
             "--output", str(artifact_path)]
        ) == 0
        artifact = json.loads(artifact_path.read_text())
        cache = artifact["cache"]
        assert cache["backend"] == "disk" and cache["directory"] == cache_dir
        assert cache["policy"] == "lfu"
        assert cache["transfer_cache_size"] == 2048
        assert cache["persistent"]["writes"] > 0
        assert artifact["verified_identical"] is True
        digest = artifact["sharded"]["results_digest"]
        assert len(digest) == 64

        # A warm rerun is bit-identical (same digest) with a full hit rate.
        warm_path = tmp_path / "warm.json"
        assert main(
            ["bench", "--shards", "2", "--seeds", "3", "--cache-dir", cache_dir,
             "--cache-policy", "lfu", "--cache-size", "2048",
             "--output", str(warm_path)]
        ) == 0
        warm = json.loads(warm_path.read_text())
        assert warm["sharded"]["results_digest"] == digest
        assert warm["cache"]["persistent"]["hit_rate"] == 1.0
        assert warm["cache"]["persistent"]["writes"] == 0

    def test_bench_without_cache_reports_null_backend(self, tmp_path):
        artifact_path = tmp_path / "bench.json"
        assert main(
            ["bench", "--shards", "1", "--seeds", "2", "--no-verify",
             "--output", str(artifact_path)]
        ) == 0
        cache = json.loads(artifact_path.read_text())["cache"]
        assert cache["backend"] is None
        assert cache["persistent"]["hits"] == 0

    def test_bench_artifact_records_effective_clamped_knobs(self, tmp_path):
        artifact_path = tmp_path / "bench.json"
        assert main(
            ["bench", "--shards", "1", "--seeds", "2", "--no-verify",
             "--depth", "20", "--procedures", "10", "--output", str(artifact_path)]
        ) == 0
        generator = json.loads(artifact_path.read_text())["population"]["generator"]
        assert generator["depth"] == 8  # clamped, not the raw CLI value
        assert generator["procedures"] == 4


class TestReanalyzeCommand:
    def test_generated_pair_verifies_against_cold(self, capsys):
        assert main(
            ["reanalyze", "--family", "deep", "--seed", "3", "--depth", "6",
             "--edits", "1", "--edit-kind", "insert", "--target", "main"]
        ) == 0
        out = capsys.readouterr().out
        assert "verified against cold solve: True" in out
        assert "re-analyzed 1/" in out

    def test_json_payload_shape(self, capsys):
        assert main(
            ["reanalyze", "--family", "dag", "--seed", "1", "--edits", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        for key in ("delta", "dirty_seed", "procedures_reanalyzed",
                    "procedures_total", "summaries_reused", "digest",
                    "verified", "cold_digest", "edit_script"):
            assert key in payload
        assert payload["verified"] is True
        assert payload["digest"] == payload["cold_digest"]

    def test_file_pair_mode(self, tmp_path, capsys):
        from repro.workloads import generate_edited_pair, generate_scenario
        from repro.workloads.generators import GeneratorConfig

        scenario = generate_scenario(0, GeneratorConfig(family="list"))
        pair = generate_edited_pair(scenario.source, 0, edits=1)
        old = tmp_path / "old.sil"
        new = tmp_path / "new.sil"
        old.write_text(pair.old_source)
        new.write_text(pair.new_source)
        assert main(["reanalyze", str(old), str(new)]) == 0
        assert "verified against cold solve: True" in capsys.readouterr().out

    def test_one_file_without_the_other_fails(self, tmp_path, capsys):
        lonely = tmp_path / "old.sil"
        lonely.write_text("program p procedure main() begin end")
        assert main(["reanalyze", str(lonely)]) == 2
        assert capsys.readouterr().err

    def test_output_artifact(self, tmp_path):
        artifact = tmp_path / "reanalysis.json"
        assert main(
            ["reanalyze", "--family", "deep", "--edits", "1",
             "--edit-kind", "insert", "--output", str(artifact)]
        ) == 0
        payload = json.loads(artifact.read_text())
        assert payload["verified"] is True


class TestCacheCompactCommand:
    def test_compact_missing_store_is_graceful(self, tmp_path, capsys):
        assert main(["cache", "compact", "--cache-dir", str(tmp_path / "nope")]) == 0
        assert "nothing to compact" in capsys.readouterr().out

    def test_compact_populated_store(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(["analyze", "tree_add", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "compact", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "swept 0 stale entries" in out
        assert main(
            ["cache", "compact", "--cache-dir", cache_dir, "--max-age", "0", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["compact"]["remaining"] == 0
        assert payload["stats"]["compactions"] == 2
