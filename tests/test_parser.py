"""Unit tests for the SIL parser."""

import pytest

from repro.sil import ast
from repro.sil.errors import ParseError
from repro.sil.parser import parse_expression, parse_program, parse_statement

MINIMAL = """
program p
procedure main()
begin
end
"""


class TestProgramStructure:
    def test_minimal_program(self):
        program = parse_program(MINIMAL)
        assert program.name == "p"
        assert program.main.name == "main"
        assert program.main.body.stmts == []

    def test_program_without_main_is_rejected(self):
        with pytest.raises(ParseError):
            parse_program("program p procedure other() begin end")

    def test_procedure_parameters_grouped_by_type(self):
        program = parse_program(
            "program p procedure main() begin end "
            "procedure q(a, b: handle; n: int) begin end"
        )
        q = program.procedure("q")
        assert [p.name for p in q.params] == ["a", "b", "n"]
        assert [p.type for p in q.params] == [
            ast.SilType.HANDLE,
            ast.SilType.HANDLE,
            ast.SilType.INT,
        ]

    def test_locals_declared_before_begin(self):
        program = parse_program(
            "program p procedure main() x, y: int; h: handle begin end"
        )
        main = program.main
        assert main.local_names == ["x", "y", "h"]
        assert main.declared_type("h") is ast.SilType.HANDLE

    def test_function_with_return_clause(self):
        program = parse_program(
            "program p procedure main() begin end "
            "function f(n: int): int r: int begin r := n end return (r)"
        )
        f = program.function("f")
        assert isinstance(f, ast.Function)
        assert f.return_type is ast.SilType.INT
        assert f.return_var == "r"

    def test_handle_returning_function(self):
        program = parse_program(
            "program p procedure main() begin end "
            "function mk(): handle t: handle begin t := new() end return (t)"
        )
        assert program.function("mk").return_type is ast.SilType.HANDLE

    def test_lookup_of_missing_procedure_raises(self):
        program = parse_program(MINIMAL)
        with pytest.raises(KeyError):
            program.procedure("nope")
        assert not program.has_callable("nope")


class TestStatements:
    def test_simple_assignment(self):
        stmt = parse_statement("a := b")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.lhs, ast.Name) and stmt.lhs.ident == "a"
        assert isinstance(stmt.rhs, ast.Name) and stmt.rhs.ident == "b"

    def test_field_assignment_lhs_chain(self):
        stmt = parse_statement("a.left.right := nil")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.lhs, ast.FieldAccess)
        assert stmt.lhs.field_name is ast.Field.RIGHT
        assert isinstance(stmt.lhs.base, ast.FieldAccess)
        assert stmt.lhs.base.field_name is ast.Field.LEFT

    def test_new_assignment(self):
        stmt = parse_statement("a := new()")
        assert isinstance(stmt.rhs, ast.NewExpr)

    def test_procedure_call(self):
        stmt = parse_statement("add_n(lside, 1)")
        assert isinstance(stmt, ast.ProcCall)
        assert stmt.name == "add_n"
        assert len(stmt.args) == 2

    def test_call_with_no_arguments(self):
        stmt = parse_statement("tick()")
        assert isinstance(stmt, ast.ProcCall)
        assert stmt.args == []

    def test_if_then_else(self):
        stmt = parse_statement("if h <> nil then x := 1 else x := 2")
        assert isinstance(stmt, ast.IfStmt)
        assert isinstance(stmt.then_branch, ast.Assign)
        assert isinstance(stmt.else_branch, ast.Assign)

    def test_dangling_else_binds_to_nearest_if(self):
        stmt = parse_statement("if a > 0 then if b > 0 then x := 1 else x := 2")
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.else_branch is None
        inner = stmt.then_branch
        assert isinstance(inner, ast.IfStmt)
        assert inner.else_branch is not None

    def test_while_loop(self):
        stmt = parse_statement("while l.left <> nil do l := l.left")
        assert isinstance(stmt, ast.WhileStmt)
        assert isinstance(stmt.body, ast.Assign)

    def test_nested_blocks(self):
        stmt = parse_statement("begin x := 1; begin y := 2 end; z := 3 end")
        assert isinstance(stmt, ast.Block)
        assert len(stmt.stmts) == 3
        assert isinstance(stmt.stmts[1], ast.Block)

    def test_trailing_semicolon_allowed(self):
        stmt = parse_statement("begin x := 1; y := 2; end")
        assert isinstance(stmt, ast.Block)
        assert len(stmt.stmts) == 2

    def test_skip_statement(self):
        assert isinstance(parse_statement("skip"), ast.SkipStmt)

    def test_parallel_statement(self):
        stmt = parse_statement("l := h.left || r := h.right || add_n(l, 1)")
        assert isinstance(stmt, ast.ParallelStmt)
        assert len(stmt.branches) == 3
        assert isinstance(stmt.branches[2], ast.ProcCall)

    def test_statement_error_reports_location(self):
        with pytest.raises(ParseError):
            parse_statement("if then")


class TestExpressions:
    def test_precedence_multiplication_over_addition(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinOp) and expr.right.op == "*"

    def test_parentheses_override_precedence(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.BinOp) and expr.left.op == "+"

    def test_comparison_with_nil(self):
        expr = parse_expression("h <> nil")
        assert expr.op == "<>"
        assert isinstance(expr.right, ast.NilLit)

    def test_boolean_connectives(self):
        expr = parse_expression("a > 0 and not (b = 0) or c < 1")
        assert expr.op == "or"
        assert expr.left.op == "and"
        assert isinstance(expr.left.right, ast.UnOp)

    def test_negative_literal_folded(self):
        expr = parse_expression("-5")
        assert isinstance(expr, ast.IntLit)
        assert expr.value == -5

    def test_unary_minus_on_variable(self):
        expr = parse_expression("-x")
        assert isinstance(expr, ast.UnOp) and expr.op == "-"

    def test_field_access_chain_expression(self):
        expr = parse_expression("a.left.right.value")
        assert isinstance(expr, ast.FieldAccess)
        assert expr.field_name is ast.Field.VALUE

    def test_function_call_expression(self):
        expr = parse_expression("build(d - 1)")
        assert isinstance(expr, ast.CallExpr)
        assert expr.name == "build"

    def test_div_and_mod_keywords(self):
        expr = parse_expression("a div 2 mod 3")
        assert expr.op == "mod"
        assert expr.left.op == "div"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra")

    def test_bad_field_name_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("a.middle := b")


class TestFigure7Program:
    """The running example of the paper parses into the expected shape."""

    def test_add_and_reverse_parses(self):
        from repro.workloads import source

        program = parse_program(source("add_and_reverse", depth=3))
        assert {p.name for p in program.procedures} == {"main", "add_n", "reverse"}
        assert {f.name for f in program.functions} == {"build"}
        add_n = program.procedure("add_n")
        assert add_n.handle_params == ["h"]
        # Body: a single if statement guarding the recursive case.
        assert len(add_n.body.stmts) == 1
        assert isinstance(add_n.body.stmts[0], ast.IfStmt)
