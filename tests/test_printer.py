"""Unit tests for the SIL pretty printer (including round-tripping)."""

import pytest

from repro.sil import ast
from repro.sil.normalize import parse_and_normalize
from repro.sil.parser import parse_expression, parse_program, parse_statement
from repro.sil.printer import format_expr, format_procedure, format_program, format_stmt
from repro.sil.typecheck import check_program
from repro.workloads import WORKLOADS, source


class TestExpressionFormatting:
    def test_literals(self):
        assert format_expr(ast.IntLit(42)) == "42"
        assert format_expr(ast.NilLit()) == "nil"
        assert format_expr(ast.NewExpr()) == "new()"

    def test_field_chain(self):
        assert format_expr(parse_expression("a.left.right.value")) == "a.left.right.value"

    def test_minimal_parentheses(self):
        assert format_expr(parse_expression("1 + 2 * 3")) == "1 + 2 * 3"
        assert format_expr(parse_expression("(1 + 2) * 3")) == "(1 + 2) * 3"

    def test_comparison_and_logic(self):
        text = format_expr(parse_expression("h <> nil and x < 3"))
        assert text == "h <> nil and x < 3"

    def test_round_trip_expression(self):
        for text in ("1 + 2 * (3 - x)", "a.left.value + b.right.value", "not (x = 0) or y > 1"):
            formatted = format_expr(parse_expression(text))
            assert format_expr(parse_expression(formatted)) == formatted


class TestStatementFormatting:
    def test_basic_statements(self):
        assert format_stmt(ast.AssignNil(target="a")) == "a := nil"
        assert format_stmt(ast.AssignNew(target="a")) == "a := new()"
        assert format_stmt(ast.CopyHandle(target="a", source="b")) == "a := b"
        assert (
            format_stmt(ast.LoadField(target="a", source="b", field_name=ast.Field.RIGHT))
            == "a := b.right"
        )
        assert (
            format_stmt(ast.StoreField(target="a", field_name=ast.Field.LEFT, source=None))
            == "a.left := nil"
        )
        assert format_stmt(ast.LoadValue(target="x", source="a")) == "x := a.value"

    def test_parallel_statement_single_line(self):
        stmt = parse_statement("l := h.left || r := h.right")
        assert format_stmt(stmt) == "l := h.left || r := h.right"

    def test_block_indentation(self):
        stmt = parse_statement("begin x := 1; y := 2 end")
        text = format_stmt(stmt)
        assert text.splitlines()[0] == "begin"
        assert text.splitlines()[1] == "  x := 1;"
        assert text.splitlines()[-1] == "end"

    def test_if_else_layout(self):
        stmt = parse_statement("if h <> nil then x := 1 else x := 2")
        lines = format_stmt(stmt).splitlines()
        assert lines[0] == "if h <> nil then"
        assert "else" in lines

    def test_while_layout(self):
        stmt = parse_statement("while l.left <> nil do l := l.left")
        lines = format_stmt(stmt).splitlines()
        assert lines[0] == "while l.left <> nil do"


class TestProgramRoundTrip:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workload_round_trips(self, name):
        """format(parse(x)) parses back to an equivalent, type-correct program."""
        original = parse_program(source(name, depth=3))
        text = format_program(original)
        reparsed = parse_program(text)
        check_program(reparsed)
        assert {p.name for p in reparsed.all_callables} == {
            p.name for p in original.all_callables
        }
        assert format_program(reparsed) == text

    def test_core_program_round_trips(self):
        core, _ = parse_and_normalize(source("add_and_reverse", depth=3))
        text = format_program(core)
        reparsed = parse_program(text)
        check_program(reparsed)
        assert format_program(reparsed) == text

    def test_parallel_program_round_trips(self, add_and_reverse_parallel):
        result, _ = add_and_reverse_parallel
        text = format_program(result.program)
        reparsed = parse_program(text)
        check_program(reparsed)
        assert "||" in text

    def test_procedure_header_includes_types(self):
        program = parse_program(source("add_and_reverse", depth=3))
        text = format_procedure(program.procedure("add_n"))
        assert text.startswith("procedure add_n(h: handle; n: int)")

    def test_function_header_and_return(self):
        program = parse_program(source("tree_add", depth=3))
        text = format_procedure(program.function("build"))
        assert text.startswith("function build(d: int): handle")
        assert text.rstrip().endswith("return (t)")
