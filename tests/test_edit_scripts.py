"""Tests for seeded edit scripts and the edit-replay bench scenario.

Edit scripts are the workload side of incremental re-analysis: small,
deterministic, front-end-validated mutations of generated programs.  The
bench scenario builds the one program shape where program size and edit
blast radius are independent axes.
"""

import pytest

from repro.sil.delta import diff_programs, dirty_seed
from repro.sil.normalize import parse_and_normalize
from repro.workloads import generate_scenario
from repro.workloads.generators import (
    EDIT_KINDS,
    FAMILIES,
    GeneratorConfig,
    apply_edit_script,
    generate_edit_script,
    generate_edited_pair,
    make_edit_bench_scenario,
)


def scenario_source(family="deep", seed=3, procedures=2, depth=5):
    return generate_scenario(
        seed, GeneratorConfig(family=family, procedures=procedures, depth=depth)
    ).source


class TestDeterminism:
    def test_same_seed_same_script(self):
        source = scenario_source()
        first = generate_edit_script(source, 42, edits=3)
        second = generate_edit_script(source, 42, edits=3)
        assert first == second
        assert apply_edit_script(source, first) == apply_edit_script(source, second)

    def test_different_seeds_usually_differ(self):
        source = scenario_source()
        scripts = {generate_edit_script(source, seed, edits=3) for seed in range(6)}
        assert len(scripts) > 1

    def test_replay_matches_generated_pair(self):
        source = scenario_source(family="tree", seed=1)
        pair = generate_edited_pair(source, 9, edits=2)
        assert apply_edit_script(source, pair.script) == pair.new_source
        assert pair.new_source != pair.old_source


class TestValidation:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_every_family_yields_valid_edited_programs(self, family):
        source = scenario_source(family=family, seed=0, procedures=2, depth=4)
        pair = generate_edited_pair(source, 5, edits=3)
        assert len(pair.script) == 3
        # The edited program passes the full front end.
        parse_and_normalize(pair.new_source)

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            generate_edit_script(scenario_source(), 0, kinds=("transmogrify",))

    def test_unknown_target_rejected(self):
        with pytest.raises(Exception):
            generate_edit_script(scenario_source(), 0, target_procedure="nope")

    def test_all_kinds_are_exposed(self):
        assert set(EDIT_KINDS) == {"insert", "delete", "swap", "relink", "add_call"}


class TestTargetedEdits:
    def test_insert_lands_on_the_target_procedure(self):
        source = scenario_source()
        script = generate_edit_script(
            source, 0, edits=2, kinds=("insert",), target_procedure="main"
        )
        assert all(step.procedure == "main" for step in script.steps)
        assert all(step.kind == "insert" for step in script.steps)

    def test_step_payloads_replay_without_rng(self):
        # as_dict carries everything replay needs: kind, procedure,
        # position and payload.
        source = scenario_source()
        script = generate_edit_script(source, 1, edits=2)
        for step in script.steps:
            row = step.as_dict()
            assert set(row) >= {"kind", "procedure", "position"}


class TestEditBenchScenario:
    def test_scenario_size_scales_with_procedures(self):
        small = make_edit_bench_scenario(4)
        large = make_edit_bench_scenario(16)
        small_program, _ = parse_and_normalize(small.source)
        large_program, _ = parse_and_normalize(large.source)
        assert len(list(large_program.all_callables)) > len(
            list(small_program.all_callables)
        )

    def test_edit_blast_radius_is_constant_in_program_size(self):
        # The defining property: an edit inside one walker dirties only
        # {that walker, main}, no matter how many walkers the program has.
        for procedures in (4, 12):
            scenario = make_edit_bench_scenario(procedures)
            pair = generate_edited_pair(
                scenario.source, 0, edits=1, kinds=("insert",), target_procedure="walk1"
            )
            old_program, _ = parse_and_normalize(pair.old_source)
            new_program, _ = parse_and_normalize(pair.new_source)
            delta = diff_programs(old_program, new_program)
            assert dirty_seed(delta, new_program) == frozenset({"walk1", "main"})


class TestEditReplayBench:
    def test_tiny_grid_verifies_every_cell(self):
        from repro.workloads import format_edit_replay, measure_edit_replay

        report = measure_edit_replay(sizes=(2, 4), edit_counts=(1,), reps=1)
        assert sorted(report["cells"]) == ["n2_k1", "n4_k1"]
        for cell in report["cells"].values():
            assert cell["verified"] is True
            assert cell["summaries_reused"] > 0
            assert cell["procedures_reanalyzed"] < cell["procedures_total"]
        rendering = format_edit_replay(report)
        assert "n4_k1" in rendering
