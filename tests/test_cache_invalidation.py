"""Targeted invalidation and compaction of the persistent transfer stores.

Both backends must honor the delete-by-statement-label contract that
incremental re-analysis relies on: rows keyed by statements an edit
removed are reclaimed, everything else stays warm, and rows written
without labels (pre-label-tracking stores) are never matched.  The disk
backend additionally supports generation-based compaction with VACUUM.
"""

import sqlite3

from repro.cache import STORE_FILENAME, DiskBackend
from repro.cache.memory import MemoryBackend


def populate(backend):
    backend.write(
        {"key-a": "payload-a", "key-b": "payload-b", "key-c": "payload-c"},
        labels={"key-a": "Assign|x := nil", "key-b": "Assign|x := nil", "key-c": "Load|y := x.left"},
    )


class TestMemoryInvalidation:
    def test_invalidate_drops_only_matching_labels(self):
        backend = MemoryBackend()
        populate(backend)
        dropped = backend.invalidate({"Assign|x := nil"})
        assert dropped == 2
        assert backend.get("key-a") is None
        assert backend.get("key-b") is None
        assert backend.get("key-c") == "payload-c"
        assert backend.stats()["invalidations"] == 2

    def test_unlabeled_rows_never_match(self):
        backend = MemoryBackend()
        backend.write({"bare": "payload"})
        assert backend.invalidate({"Assign|x := nil"}) == 0
        assert backend.get("bare") == "payload"

    def test_empty_label_set_is_a_noop(self):
        backend = MemoryBackend()
        populate(backend)
        assert backend.invalidate(set()) == 0
        assert len(backend) == 3


class TestDiskInvalidation:
    def test_invalidate_drops_only_matching_labels(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        try:
            populate(backend)
            assert backend.invalidate({"Load|y := x.left"}) == 1
            assert backend.get("key-c") is None
            assert backend.get("key-a") == "payload-a"
            assert backend.stats()["invalidations"] == 1
        finally:
            backend.close()

    def test_invalidations_persist_across_reopens(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        populate(backend)
        backend.invalidate({"Assign|x := nil"})
        backend.close()
        reopened = DiskBackend(str(tmp_path))
        try:
            assert reopened.get("key-a") is None
            assert reopened.get("key-c") == "payload-c"
            assert reopened.stats()["invalidations"] == 2
        finally:
            reopened.close()

    def test_old_schema_store_migrates_in_place(self, tmp_path):
        # A store written before label tracking has no stmt column; opening
        # it adds the column, and its rows simply never match a sweep.
        path = tmp_path / STORE_FILENAME
        connection = sqlite3.connect(str(path))
        connection.executescript(
            """
            CREATE TABLE entries (
                key TEXT PRIMARY KEY,
                payload TEXT NOT NULL,
                created INTEGER NOT NULL,
                last_used INTEGER NOT NULL,
                hits INTEGER NOT NULL DEFAULT 0
            );
            CREATE TABLE meta (key TEXT PRIMARY KEY, value INTEGER NOT NULL);
            INSERT INTO entries (key, payload, created, last_used)
                VALUES ('legacy', 'old-payload', 1, 1);
            """
        )
        connection.commit()
        connection.close()
        backend = DiskBackend(str(tmp_path))
        try:
            assert backend.get("legacy") == "old-payload"
            assert backend.invalidate({"Assign|x := nil"}) == 0
            assert backend.get("legacy") == "old-payload"
        finally:
            backend.close()


class TestDiskCompaction:
    def test_compact_sweeps_only_stale_generations(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        try:
            populate(backend)
            # Age the clock: each write bumps the store's flush generation.
            for generation in range(6):
                backend.write({f"fresh-{generation}": "payload"})
            report = backend.compact(max_age=4)
            assert report["swept"] > 0
            assert report["remaining"] == len(backend)
            # Recently-written entries survive.
            assert backend.get("fresh-5") == "payload"
            stats = backend.stats()
            assert stats["compactions"] == 1
            assert stats["swept"] == report["swept"]
        finally:
            backend.close()

    def test_compact_on_fresh_store_sweeps_nothing(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        try:
            populate(backend)
            report = backend.compact(max_age=8)
            assert report["swept"] == 0
            assert report["remaining"] == 3
        finally:
            backend.close()

    def test_compact_max_age_zero_sweeps_everything_stale(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        try:
            populate(backend)
            backend.write({"later": "payload"})  # bump the clock past 0
            report = backend.compact(max_age=0)
            assert report["remaining"] < 4
        finally:
            backend.close()
