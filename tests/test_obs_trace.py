"""The flight recorder: span tracing over the instrumented analysis layers.

Covers the tracer's three contracts:

* **disabled is free** — with no tracer installed, :func:`repro.obs.span`
  returns one shared no-op object (identity-equal across calls, so the
  hot paths allocate nothing) and nothing is recorded;
* **recording** — spans nest, carry their args, measure on the monotonic
  clock, and ship across process boundaries as plain dicts
  (``drain``/``absorb``), with ``reset`` clearing a forked worker's
  inherited copy;
* **export** — the Chrome trace-event document is valid JSON with
  ``"X"`` complete events, per-pid ``process_name`` metadata, and is
  produced end to end by analyzing a real workload (parse, passes,
  solver visits, cache flush all appear).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.obs.trace import (
    Tracer,
    _NULL_SPAN,
    current_tracer,
    install_tracer,
    instant,
    span,
    stopwatch,
    tracing_enabled,
    uninstall_tracer,
)


@pytest.fixture
def tracer():
    """A fresh installed tracer; uninstalled (and cleared) afterwards."""
    handle = install_tracer(Tracer())
    yield handle
    uninstall_tracer()


@pytest.fixture(autouse=True)
def _no_leftover_tracer():
    yield
    uninstall_tracer()


class TestDisabled:
    def test_disabled_by_default(self):
        assert not tracing_enabled()
        assert current_tracer() is None

    def test_span_is_the_shared_null_object(self):
        # Identity, not just equality: the disabled path must not allocate.
        assert span("anything") is _NULL_SPAN
        assert span("other", {"k": "v"}) is _NULL_SPAN

    def test_null_span_is_a_context_manager(self):
        with span("ignored") as handle:
            assert handle is _NULL_SPAN

    def test_instant_is_a_noop(self):
        instant("marker")  # must not raise

    def test_stopwatch_still_measures(self):
        clock = stopwatch("bracket")
        with clock:
            pass
        assert clock.seconds >= 0.0


class TestRecording:
    def test_span_records_complete_event(self, tracer):
        with span("unit", {"detail": 3}):
            pass
        (event,) = tracer.events()
        assert event["ph"] == "X"
        assert event["name"] == "unit"
        assert event["args"] == {"detail": 3}
        assert event["dur"] >= 0
        assert event["pid"] > 0

    def test_spans_nest(self, tracer):
        with span("outer"):
            with span("inner"):
                pass
        names = [event["name"] for event in tracer.events()]
        # Inner exits (and records) first.
        assert names == ["inner", "outer"]
        inner, outer = tracer.events()
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_stopwatch_records_and_measures(self, tracer):
        clock = stopwatch("both")
        with clock:
            pass
        assert clock.seconds >= 0.0
        assert [event["name"] for event in tracer.events()] == ["both"]

    def test_instant_event(self, tracer):
        instant("marker", {"shard": 2})
        (event,) = tracer.events()
        assert event["ph"] == "i"
        assert event["args"] == {"shard": 2}

    def test_drain_absorb_reset(self, tracer):
        with span("a"):
            pass
        shipped = tracer.drain()
        assert len(tracer) == 0
        assert [event["name"] for event in shipped] == ["a"]
        tracer.absorb(shipped)
        assert [event["name"] for event in tracer.events()] == ["a"]
        tracer.reset()
        assert len(tracer) == 0

    def test_install_reuses_existing_tracer(self, tracer):
        with span("kept"):
            pass
        again = install_tracer()
        assert again is tracer
        assert len(again) == 1


class TestChromeExport:
    def test_document_shape(self, tracer, tmp_path):
        with span("outer"):
            with span("inner"):
                pass
        path = tmp_path / "trace.json"
        spans = tracer.write_chrome(str(path))
        assert spans == 2
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        metadata = [event for event in events if event["ph"] == "M"]
        assert [m["name"] for m in metadata] == ["process_name"]
        complete = [event for event in events if event["ph"] == "X"]
        assert {event["name"] for event in complete} == {"outer", "inner"}
        for event in complete:
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}

    def test_jsonl_export(self, tracer, tmp_path):
        with span("one"):
            pass
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(str(path)) == 1
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["name"] == "one"

    def test_real_workload_produces_the_span_taxonomy(self, tracer, tmp_path):
        from repro.analysis.engine import BatchAnalyzer
        from repro.sil.normalize import parse_and_normalize
        from repro.workloads.suite import source

        batch = BatchAnalyzer()
        with span("sil.parse"):
            program, info = parse_and_normalize(source("tree_add", depth=3))
        batch.analyze(program, info)
        batch.close()

        names = {event["name"] for event in tracer.events()}
        assert {"sil.parse", "analysis.typecheck", "analysis.solve",
                "solve.visit", "cache.flush"} <= names
        # And the document round-trips through the Chrome export.
        path = tmp_path / "real.json"
        assert tracer.write_chrome(str(path)) == len(tracer)
        json.loads(path.read_text())
