"""Unit tests for path expressions and their algebra."""

import pytest

from repro.analysis.limits import AnalysisLimits
from repro.analysis.paths import (
    Direction,
    Path,
    PathSegment,
    append_link,
    cancel_first,
    concat,
    format_path,
    generalize_pair,
    link_path,
    make_path,
    parse_path,
    paths_may_intersect,
    subsumes,
)
from repro.sil.ast import Field


def seg(direction, count=1, exact=True):
    return PathSegment(Direction(direction), count, exact)


class TestConstructionAndFormatting:
    def test_same_path(self):
        assert format_path(parse_path("S")) == "S"
        assert parse_path("S").is_same
        assert parse_path("S?").definite is False

    def test_simple_segments(self):
        assert format_path(parse_path("L1")) == "L1"
        assert format_path(parse_path("R+")) == "R+"
        assert format_path(parse_path("D2+")) == "D2+"
        assert format_path(parse_path("L1R1")) == "L1R1"

    def test_possible_suffix(self):
        path = parse_path("D+?")
        assert not path.definite
        assert format_path(path) == "D+?"

    def test_bare_letter_means_one_edge(self):
        assert parse_path("L") == parse_path("L1")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_path("X3")

    def test_segment_requires_positive_count(self):
        with pytest.raises(ValueError):
            PathSegment(Direction.LEFT, 0, True)

    def test_min_length(self):
        assert parse_path("L1R2D+").min_length == 4
        assert parse_path("S").min_length == 0

    def test_paper_notation_l1_lplus_l1(self):
        """The paper's L^1 L+ L^1 normalizes to 'at least three left edges'."""
        path = make_path([seg("L"), seg("L", 1, False), seg("L")])
        assert format_path(path) == "L3+"
        assert path.min_length == 3


class TestNormalizationLimits:
    def test_adjacent_same_direction_segments_merge(self):
        path = make_path([seg("L", 2), seg("L", 3)])
        assert path.segments == (seg("L", 5),)

    def test_exact_count_clamps_to_open(self):
        limits = AnalysisLimits(max_exact_count=4)
        path = make_path([seg("L", 9)], limits=limits)
        assert path.segments[0].exact is False
        assert path.segments[0].count == 4

    def test_segment_count_clamps_via_down_collapse(self):
        limits = AnalysisLimits(max_segments=2)
        path = make_path([seg("L"), seg("R"), seg("L"), seg("R")], limits=limits)
        assert len(path.segments) <= 2
        assert path.segments[-1].direction is Direction.DOWN

    def test_collapse_preserves_min_length_bound(self):
        limits = AnalysisLimits(max_segments=2)
        original = [seg("L"), seg("R"), seg("L"), seg("R")]
        path = make_path(original, limits=limits)
        assert path.min_length <= sum(s.count for s in original)
        assert path.min_length >= 1


class TestConcatAndAppend:
    def test_concat_with_same(self):
        left = parse_path("L1")
        assert concat(parse_path("S"), left) == left
        assert concat(left, parse_path("S")) == left

    def test_concat_merges_directions(self):
        assert format_path(concat(parse_path("L1"), parse_path("L+"))) == "L2+"
        assert format_path(concat(parse_path("R1"), parse_path("D+"))) == "R1D+"

    def test_concat_definiteness(self):
        result = concat(parse_path("L1"), parse_path("R1?"))
        assert not result.definite
        result = concat(parse_path("L1"), parse_path("R1"))
        assert result.definite

    def test_append_link(self):
        assert format_path(append_link(parse_path("S"), Field.LEFT)) == "L1"
        assert format_path(append_link(parse_path("R1"), Field.RIGHT)) == "R2"
        assert format_path(append_link(parse_path("D+"), Field.LEFT)) == "D+L1"

    def test_link_path(self):
        assert format_path(link_path(Field.LEFT)) == "L1"
        assert format_path(link_path(Field.RIGHT, definite=False)) == "R1?"


class TestCancelFirst:
    """The core of the a := b.f transfer function (Figure 2)."""

    def test_cancel_exact_single_edge(self):
        [result] = cancel_first(Field.RIGHT, parse_path("R1D+"))
        assert format_path(result) == "D+"
        assert result.definite

    def test_cancel_wrong_direction_gives_nothing(self):
        assert cancel_first(Field.RIGHT, parse_path("L1R1")) == []
        assert cancel_first(Field.LEFT, parse_path("R+")) == []

    def test_cancel_exact_multi_edge(self):
        [result] = cancel_first(Field.LEFT, parse_path("L3"))
        assert format_path(result) == "L2"

    def test_cancel_single_edge_to_same(self):
        [result] = cancel_first(Field.LEFT, parse_path("L1"))
        assert result.is_same and result.definite

    def test_cancel_open_count_splits_into_possibilities(self):
        results = cancel_first(Field.LEFT, parse_path("L+"))
        rendered = sorted(format_path(p) for p in results)
        assert rendered == ["L+?", "S?"]

    def test_cancel_down_segment_is_possible(self):
        """Figure 2(c): cancelling L from D+ gives {S?, D+?}."""
        results = cancel_first(Field.LEFT, parse_path("D+"))
        rendered = sorted(format_path(p) for p in results)
        assert rendered == ["D+?", "S?"]

    def test_cancel_exact_down_edge(self):
        results = cancel_first(Field.RIGHT, parse_path("D2"))
        assert [format_path(p) for p in results] == ["D1?"]

    def test_cancel_from_same_gives_nothing(self):
        assert cancel_first(Field.LEFT, parse_path("S")) == []

    def test_cancel_preserves_possibility(self):
        [result] = cancel_first(Field.LEFT, parse_path("L2?"))
        assert not result.definite


class TestSubsumption:
    def test_identical_paths(self):
        assert subsumes(parse_path("L1R1"), parse_path("L1R1"))

    def test_open_segment_subsumes_specifics(self):
        assert subsumes(parse_path("L+"), parse_path("L1"))
        assert subsumes(parse_path("L+"), parse_path("L3"))
        assert subsumes(parse_path("D+"), parse_path("L1R2"))
        assert subsumes(parse_path("D2+"), parse_path("L1R2"))

    def test_open_segment_does_not_subsume_shorter(self):
        assert not subsumes(parse_path("L2+"), parse_path("L1"))

    def test_specific_does_not_subsume_general(self):
        assert not subsumes(parse_path("L1"), parse_path("L+"))
        assert not subsumes(parse_path("L+"), parse_path("D+"))

    def test_same_only_subsumed_by_same(self):
        assert subsumes(parse_path("S"), parse_path("S"))
        assert not subsumes(parse_path("D+"), parse_path("S"))
        assert not subsumes(parse_path("S"), parse_path("L1"))

    def test_segmentwise_subsumption(self):
        assert subsumes(parse_path("D1L+"), parse_path("R1L2"))
        assert not subsumes(parse_path("D1L+"), parse_path("R1R2"))


class TestIntersection:
    def test_same_intersects_only_same(self):
        assert paths_may_intersect(parse_path("S"), parse_path("S"))
        assert not paths_may_intersect(parse_path("S"), parse_path("L1"))

    def test_identical_expressions_intersect(self):
        assert paths_may_intersect(parse_path("L1R1"), parse_path("L1R1"))

    def test_disjoint_first_edges(self):
        assert not paths_may_intersect(parse_path("L1"), parse_path("R1"))
        assert not paths_may_intersect(parse_path("L1D+"), parse_path("R1D+"))

    def test_down_overlaps_both_sides(self):
        assert paths_may_intersect(parse_path("D+"), parse_path("L1"))
        assert paths_may_intersect(parse_path("D2"), parse_path("R1L1"))

    def test_length_mismatch_excludes_intersection(self):
        assert not paths_may_intersect(parse_path("L1"), parse_path("L2"))
        assert not paths_may_intersect(parse_path("D2"), parse_path("L1R1L1"))

    def test_open_lengths_can_match(self):
        assert paths_may_intersect(parse_path("L+"), parse_path("L3"))
        assert paths_may_intersect(parse_path("L2+"), parse_path("L+"))
        assert not paths_may_intersect(parse_path("L2+"), parse_path("L1"))

    def test_mixed_segments(self):
        assert paths_may_intersect(parse_path("L1D+"), parse_path("L1R2"))
        assert not paths_may_intersect(parse_path("L1D+"), parse_path("L1"))


class TestGeneralization:
    def test_identical_paths_unchanged(self):
        path = parse_path("L1")
        assert generalize_pair(path, path) == path

    def test_same_segments_merge_definiteness(self):
        result = generalize_pair(parse_path("L1"), parse_path("L1?"))
        assert format_path(result) == "L1?"

    def test_different_paths_widen_to_open_segment(self):
        result = generalize_pair(parse_path("L1"), parse_path("L3"))
        assert subsumes(result, parse_path("L1"))
        assert subsumes(result, parse_path("L3"))

    def test_mixed_directions_widen_to_down(self):
        result = generalize_pair(parse_path("L2"), parse_path("R1"))
        assert result.segments[0].direction is Direction.DOWN
        assert subsumes(result, parse_path("L2"))
        assert subsumes(result, parse_path("R1"))

    def test_same_cannot_generalize_with_proper_path(self):
        with pytest.raises(ValueError):
            generalize_pair(parse_path("S"), parse_path("L1"))
