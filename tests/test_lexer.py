"""Unit tests for the SIL lexer."""

import pytest

from repro.sil.errors import LexError
from repro.sil.lexer import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_empty_source_gives_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifiers_and_keywords(self):
        tokens = tokenize("program foo begin end")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.KEYWORD,
            TokenKind.IDENT,
            TokenKind.KEYWORD,
            TokenKind.KEYWORD,
        ]

    def test_integer_literal(self):
        tokens = tokenize("12345")
        assert tokens[0].kind is TokenKind.INT
        assert tokens[0].text == "12345"

    def test_identifier_with_underscore_and_digits(self):
        tokens = tokenize("add_n2")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "add_n2"

    def test_field_names_are_identifiers_not_keywords(self):
        for name in ("left", "right", "value"):
            assert tokenize(name)[0].kind is TokenKind.IDENT

    def test_all_keywords_recognised(self):
        for word in ("procedure", "function", "if", "then", "else", "while", "do",
                     "nil", "new", "int", "handle", "and", "or", "not", "div", "mod",
                     "return", "skip"):
            assert tokenize(word)[0].kind is TokenKind.KEYWORD, word


class TestSymbols:
    def test_assignment_symbol(self):
        assert texts("a := b") == ["a", ":=", "b"]

    def test_parallel_symbol(self):
        assert texts("a || b") == ["a", "||", "b"]

    def test_comparison_symbols(self):
        assert texts("< <= > >= = <>") == ["<", "<=", ">", ">=", "=", "<>"]

    def test_not_equal_alias(self):
        # != is accepted and normalized to <>.
        assert texts("a != b") == ["a", "<>", "b"]

    def test_colon_is_distinct_from_assign(self):
        assert texts("x: int") == ["x", ":", "int"]

    def test_field_access_dots(self):
        assert texts("a.left.right") == ["a", ".", "left", ".", "right"]

    def test_arithmetic_symbols(self):
        assert texts("1 + 2 * 3 - 4") == ["1", "+", "2", "*", "3", "-", "4"]


class TestCommentsAndWhitespace:
    def test_brace_comments_are_skipped(self):
        assert texts("a { this is a comment } b") == ["a", "b"]

    def test_multiline_comment(self):
        assert texts("a {\n comment \n spanning lines \n} b") == ["a", "b"]

    def test_line_comment(self):
        assert texts("a // rest of line\nb") == ["a", "b"]

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a { never closed")

    def test_whitespace_variants(self):
        assert texts("a\t\r\n  b") == ["a", "b"]


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a :=\n  b")
        assert tokens[0].location.line == 1 and tokens[0].location.column == 1
        assert tokens[2].location.line == 2 and tokens[2].location.column == 3

    def test_location_after_comment(self):
        tokens = tokenize("{ comment }\nx")
        assert tokens[0].location.line == 2


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("a $ b")
        assert "$" in str(excinfo.value)

    def test_error_carries_location(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("ab\n  @")
        assert excinfo.value.location.line == 2


class TestTokenHelpers:
    def test_is_keyword_and_is_symbol(self):
        token = tokenize("begin")[0]
        assert token.is_keyword("begin")
        assert not token.is_keyword("end")
        assert not token.is_symbol("begin")
        symbol = tokenize(":=")[0]
        assert symbol.is_symbol(":=")
        assert not symbol.is_keyword(":=")
