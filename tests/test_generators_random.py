"""Property-style coverage for the seeded random SIL scenario generator."""

import pytest

from repro.analysis import AnalysisLimits, analyze_program, analyze_program_adaptive
from repro.runtime import run_program
from repro.sil import ast
from repro.workloads import (
    FAMILIES,
    UNTRUNCATED_FAMILIES,
    GeneratorConfig,
    cross_check_scenario,
    generate_scenario,
    generate_scenarios,
)

#: The property loops cover at least this many seeds (satellite requirement).
SEED_COUNT = 56


class TestScenarioProperties:
    def test_every_seed_parses_typechecks_and_analyzes(self):
        """≥50 seeds over every family: parse + typecheck + analyze.

        Loading goes through the real parser/typechecker/normalizer (a
        front-end rejection raises here).  Whatever widening the analysis
        needed, the ``max_iterations`` safety net must never fire — the
        finite domain converges on its own.
        """
        scenarios = generate_scenarios(SEED_COUNT, base_seed=0)
        assert len(scenarios) == SEED_COUNT
        for scenario in scenarios:
            program, info = scenario.load()
            assert ast.program_is_core(program)
            result = analyze_program(program, info)
            assert "main" in result.entry_matrices
            assert result.stats.iteration_guard_trips == 0

    def test_untruncated_families_never_lose_segment_structure(self):
        """The legacy families stay inside the lossy ``max_segments`` bound.

        Per-run widening counters (which replaced the old process-global
        ``segment_truncation_count``) must show zero segment collapses at
        default sizes for every ``UNTRUNCATED_FAMILIES`` scenario;
        loop-convergence widening (count clamps, oversized-entry collapse)
        is the domain's intended fixed-point mechanism and stays allowed.
        """
        scenarios = generate_scenarios(
            SEED_COUNT, base_seed=0, families=UNTRUNCATED_FAMILIES
        )
        for scenario in scenarios:
            result = analyze_program(*scenario.load())
            assert result.stats.segment_collapses == 0, scenario.name

    def test_dag_and_deep_families_exercise_widening(self):
        """The new families are built to make the domain limits bite."""
        deep_fired = dag_fired = False
        for seed in range(6):
            deep = analyze_program(
                *generate_scenario(seed, GeneratorConfig(family="deep", depth=5)).load()
            )
            dag = analyze_program(
                *generate_scenario(seed, GeneratorConfig(family="dag", depth=4)).load()
            )
            deep_fired = deep_fired or deep.stats.segment_collapses > 0
            dag_fired = dag_fired or dag.stats.path_set_collapses > 0
        assert deep_fired, "deep scenarios never hit the max_segments collapse"
        assert dag_fired, "dag scenarios never hit the max_paths_per_entry collapse"

    def test_dag_and_deep_analyze_under_adaptive_limits(self):
        """Adaptive limits absorb the new families without safety-net trips.

        Cross-checks against the reference engine still pass at the base
        rung, escalation is recorded on the stats, and the final rung's
        bounds are what the result reports.
        """
        for family in ("dag", "deep"):
            for seed in range(4):
                scenario = generate_scenario(
                    seed, GeneratorConfig(family=family, depth=4, procedures=2)
                )
                assert cross_check_scenario(scenario), scenario.name
                result = analyze_program_adaptive(
                    *scenario.load(), policy=AnalysisLimits.adaptive()
                )
                assert result.stats.iteration_guard_trips == 0
                if result.stats.adaptive_escalations:
                    # Escalation stepped the domain bounds up from the base.
                    assert result.limits.max_segments > AnalysisLimits().max_segments

    def test_every_family_is_generated_round_robin(self):
        scenarios = generate_scenarios(len(FAMILIES) * 2, base_seed=5)
        assert [s.family for s in scenarios] == list(FAMILIES) * 2
        assert len({s.name for s in scenarios}) == len(scenarios)

    def test_generation_is_deterministic_in_the_seed(self):
        config = GeneratorConfig(family="tree", procedures=3, aliasing=0.8)
        first = generate_scenario(42, config)
        second = generate_scenario(42, config)
        assert first == second
        assert generate_scenario(43, config).source != first.source

    def test_cross_check_against_reference_engine_small_sizes(self):
        """Generated-population analogue of the named-workload golden tests."""
        config = GeneratorConfig(depth=2, procedures=2)
        for scenario in generate_scenarios(12, base_seed=64, config=config):
            assert cross_check_scenario(scenario), scenario.name

    def test_generated_scenarios_execute(self):
        """Every family is runnable end to end (depth kept small)."""
        config = GeneratorConfig(depth=3, procedures=2, aliasing=0.5)
        for scenario in generate_scenarios(8, base_seed=11, config=config):
            program, info = scenario.load()
            result = run_program(program, info)
            assert result.work > 0

    def test_aliasing_zero_never_aliases_list_cursors(self):
        config = GeneratorConfig(family="list", procedures=3, aliasing=0.0)
        for seed in range(6):
            source = generate_scenario(seed, config).source
            assert "c0 := head.left" in source

    def test_config_clamping(self):
        clamped = GeneratorConfig(procedures=99, depth=0, aliasing=7.0).clamped()
        assert clamped.procedures == 4
        assert clamped.depth == 1
        assert clamped.aliasing == 1.0

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario family"):
            generate_scenario(0, GeneratorConfig(family="graph"))
        with pytest.raises(KeyError, match="unknown scenario family"):
            generate_scenarios(2, families=["graph"])

    def test_scenarios_are_picklable(self):
        """Scenarios travel to shard workers as plain data."""
        import pickle

        scenario = generate_scenario(3, GeneratorConfig(family="web"))
        assert pickle.loads(pickle.dumps(scenario)) == scenario
