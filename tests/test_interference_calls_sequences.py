"""Tests for Sections 5.2 (procedure-call) and 5.3 (statement-sequence) interference."""

import pytest

from repro.analysis import analyze_program
from repro.analysis.matrix import PathMatrix
from repro.analysis.pathset import PathSet
from repro.interference import (
    calls_independent,
    calls_interfere,
    live_in_handles,
    matrices_along,
    relative_alias_set,
    relative_locations_overlap,
    relative_field_location,
    relative_var_location,
    sequences_independent,
    sequences_interfere,
)
from repro.sil import ast
from repro.sil.ast import Field
from repro.workloads import load
from tests.conftest import analysis_for


def find_call(program, procedure, callee, occurrence=0):
    count = 0
    for stmt in ast.walk_stmt(program.callable(procedure).body):
        if isinstance(stmt, (ast.ProcCall, ast.FuncAssign)) and stmt.name == callee:
            if count == occurrence:
                return stmt
            count += 1
    raise AssertionError("call not found")


class TestCallInterference:
    def test_add_n_calls_in_main_are_independent(self):
        analysis = analysis_for("add_and_reverse", 4)
        program = analysis.program
        first = find_call(program, "main", "add_n", 0)
        second = find_call(program, "main", "add_n", 1)
        matrix = analysis.matrix_before(first)
        report = calls_interfere(first, second, matrix, program, analysis.summaries)
        assert report.independent
        assert "unrelated" in report.reason

    def test_recursive_add_n_calls_are_independent(self):
        analysis = analysis_for("add_and_reverse", 4)
        program = analysis.program
        first = find_call(program, "add_n", "add_n", 0)
        second = find_call(program, "add_n", "add_n", 1)
        matrix = analysis.matrix_before(first)
        assert calls_independent(first, second, matrix, program, analysis.summaries)

    def test_recursive_reverse_calls_are_independent(self):
        analysis = analysis_for("add_and_reverse", 4)
        program = analysis.program
        first = find_call(program, "reverse", "reverse", 0)
        second = find_call(program, "reverse", "reverse", 1)
        matrix = analysis.matrix_before(first)
        assert calls_independent(first, second, matrix, program, analysis.summaries)

    def test_calls_on_related_handles_interfere(self):
        analysis = analysis_for("add_and_reverse", 4)
        program = analysis.program
        add_call = find_call(program, "main", "add_n", 0)
        reverse_call = find_call(program, "main", "reverse", 0)
        # Evaluate both at the point before the first add_n call, where
        # lside and root are related (root is lside's parent).
        matrix = analysis.matrix_before(add_call)
        report = calls_interfere(add_call, reverse_call, matrix, program, analysis.summaries)
        assert report.interferes
        assert report.related_handle_pairs

    def test_readonly_refinement_allows_reader_next_to_reader(self):
        program, info = load("tree_add", depth=3)
        analysis = analyze_program(program, info)
        first = find_call(program, "sum", "sum", 0)
        second = find_call(program, "sum", "sum", 1)
        matrix = analysis.matrix_before(first)
        assert calls_independent(first, second, matrix, program, analysis.summaries)

    def test_refinement_matters_for_same_subtree_readers(self):
        source = """
        program p
        procedure main()
          root: handle; x, y: int
        begin
          root := new();
          root.value := 1;
          x := peek(root);
          y := peek(root)
        end
        function peek(t: handle): int
          r: int
        begin
          r := t.value
        end
        return (r)
        """
        from repro.sil.normalize import parse_and_normalize

        program, info = parse_and_normalize(source)
        analysis = analyze_program(program, info)
        first = find_call(program, "main", "peek", 0)
        second = find_call(program, "main", "peek", 1)
        matrix = analysis.matrix_before(first)
        # Same handle passed twice, but peek is read-only: with the update
        # refinement the calls do not interfere through the heap...
        with_refinement = calls_interfere(
            first, second, matrix, program, analysis.summaries, use_update_refinement=True
        )
        without_refinement = calls_interfere(
            first, second, matrix, program, analysis.summaries, use_update_refinement=False
        )
        # ...although these particular calls still conflict on the result
        # variables only if they shared one (they do not).
        assert with_refinement.related_handle_pairs == []
        assert without_refinement.related_handle_pairs != []

    def test_result_variable_conflict(self):
        source = """
        program p
        procedure main()
          a, b: handle; x: int
        begin
          a := new();
          b := new();
          x := peek(a);
          x := peek(b)
        end
        function peek(t: handle): int
          r: int
        begin
          r := t.value
        end
        return (r)
        """
        from repro.sil.normalize import parse_and_normalize

        program, info = parse_and_normalize(source)
        analysis = analyze_program(program, info)
        first = find_call(program, "main", "peek", 0)
        second = find_call(program, "main", "peek", 1)
        matrix = analysis.matrix_before(first)
        report = calls_interfere(first, second, matrix, program, analysis.summaries)
        assert report.interferes
        assert report.variable_conflicts

    def test_non_call_statement_rejected(self):
        analysis = analysis_for("add_and_reverse", 4)
        with pytest.raises(TypeError):
            calls_interfere(
                ast.SkipStmt(), ast.SkipStmt(), PathMatrix(), analysis.program, analysis.summaries
            )


class TestLiveInHandles:
    def test_used_before_defined(self):
        first = [ast.LoadField(target="l", source="h", field_name=Field.LEFT)]
        second = [ast.LoadField(target="r", source="g", field_name=Field.RIGHT)]
        assert live_in_handles(first, second) == ["h", "g"]

    def test_defined_then_used_is_not_live_in(self):
        sequence = [
            ast.AssignNew(target="t"),
            ast.StoreField(target="t", field_name=Field.LEFT, source="h"),
        ]
        assert live_in_handles(sequence) == ["h"]

    def test_matrices_along_tracks_evolution(self):
        matrix = PathMatrix(["h"])
        sequence = [
            ast.LoadField(target="l", source="h", field_name=Field.LEFT),
            ast.StoreValue(target="l", expr=ast.IntLit(1)),
        ]
        matrices = matrices_along(sequence, matrix)
        assert len(matrices) == 2
        assert matrices[0].get("h", "l").is_empty
        assert matrices[1].get("h", "l").format() == "L1"


class TestRelativeLocations:
    def test_relative_alias_set_anchors_at_live_handles(self):
        matrix = PathMatrix(["h", "l"])
        matrix.set("h", "l", PathSet.parse("L1"))
        aliases = relative_alias_set("l", Field.VALUE, ["h"], matrix)
        assert len(aliases) == 1
        location = next(iter(aliases))
        assert location.name == "h" and location.path_set.format() == "L1"

    def test_overlap_same_anchor_same_path(self):
        matrix = PathMatrix(["h"])
        first = relative_field_location("h", Field.VALUE, PathSet.parse("L1"))
        second = relative_field_location("h", Field.VALUE, PathSet.parse("L1"))
        third = relative_field_location("h", Field.VALUE, PathSet.parse("R1"))
        assert relative_locations_overlap(first, second, matrix)
        assert not relative_locations_overlap(first, third, matrix)

    def test_overlap_different_fields_never(self):
        matrix = PathMatrix(["h"])
        first = relative_field_location("h", Field.LEFT, PathSet.parse("L1"))
        second = relative_field_location("h", Field.RIGHT, PathSet.parse("L1"))
        assert not relative_locations_overlap(first, second, matrix)

    def test_overlap_var_locations(self):
        matrix = PathMatrix()
        assert relative_locations_overlap(
            relative_var_location("x"), relative_var_location("x"), matrix
        )
        assert not relative_locations_overlap(
            relative_var_location("x"), relative_var_location("y"), matrix
        )

    def test_overlap_through_anchor_relationship(self):
        matrix = PathMatrix(["root", "l"])
        matrix.set("root", "l", PathSet.parse("L1"))
        via_root = relative_field_location("root", Field.VALUE, PathSet.parse("L1R1"))
        via_l = relative_field_location("l", Field.VALUE, PathSet.parse("R1"))
        assert relative_locations_overlap(via_root, via_l, matrix)
        other = relative_field_location("l", Field.VALUE, PathSet.parse("L1"))
        assert not relative_locations_overlap(via_root, other, matrix)

    def test_unrelated_anchors_never_overlap(self):
        matrix = PathMatrix(["a", "b"])
        first = relative_field_location("a", Field.VALUE, PathSet.parse("D+"))
        second = relative_field_location("b", Field.VALUE, PathSet.parse("D+"))
        assert not relative_locations_overlap(first, second, matrix)


class TestSequenceInterference:
    def left_sequence(self):
        return [
            ast.LoadField(target="l", source="h", field_name=Field.LEFT),
            ast.StoreValue(target="l", expr=ast.IntLit(1)),
        ]

    def right_sequence(self):
        return [
            ast.LoadField(target="r", source="h", field_name=Field.RIGHT),
            ast.StoreValue(target="r", expr=ast.IntLit(2)),
        ]

    def test_disjoint_subtree_sequences_are_independent(self):
        matrix = PathMatrix(["h"])
        report = sequences_interfere(self.left_sequence(), self.right_sequence(), matrix)
        assert report.independent
        assert report.live_handles == ["h"]

    def test_same_subtree_sequences_interfere(self):
        matrix = PathMatrix(["h"])
        other = [
            ast.LoadField(target="r", source="h", field_name=Field.LEFT),
            ast.StoreValue(target="r", expr=ast.IntLit(2)),
        ]
        report = sequences_interfere(self.left_sequence(), other, matrix)
        assert report.interferes
        assert report.conflicts

    def test_variable_conflict_between_sequences(self):
        matrix = PathMatrix(["h"])
        first = [ast.ScalarAssign(target="x", expr=ast.IntLit(1))]
        second = [ast.ScalarAssign(target="x", expr=ast.IntLit(2))]
        assert not sequences_independent(first, second, matrix)

    def test_read_only_sequences_do_not_interfere(self):
        matrix = PathMatrix(["h"])
        first = [ast.LoadValue(target="x", source="h")]
        second = [ast.LoadValue(target="y", source="h")]
        assert sequences_independent(first, second, matrix)

    def test_structure_update_vs_reader(self):
        matrix = PathMatrix(["h"])
        updater = [
            ast.LoadField(target="l", source="h", field_name=Field.LEFT),
            ast.StoreField(target="h", field_name=Field.LEFT, source=None),
        ]
        reader = [ast.LoadField(target="m", source="h", field_name=Field.LEFT)]
        assert not sequences_independent(updater, reader, matrix)

    def test_deeper_sequences_on_disjoint_subtrees(self):
        matrix = PathMatrix(["t"])
        first = [
            ast.LoadField(target="a", source="t", field_name=Field.LEFT),
            ast.LoadField(target="al", source="a", field_name=Field.LEFT),
            ast.StoreValue(target="al", expr=ast.IntLit(1)),
        ]
        second = [
            ast.LoadField(target="b", source="t", field_name=Field.RIGHT),
            ast.LoadField(target="bl", source="b", field_name=Field.LEFT),
            ast.StoreValue(target="bl", expr=ast.IntLit(2)),
        ]
        assert sequences_independent(first, second, matrix)

    def test_interfering_deep_sequences(self):
        matrix = PathMatrix(["t"])
        first = [
            ast.LoadField(target="a", source="t", field_name=Field.LEFT),
            ast.StoreValue(target="a", expr=ast.IntLit(1)),
        ]
        second = [
            ast.LoadField(target="b", source="t", field_name=Field.LEFT),
            ast.LoadField(target="bl", source="b", field_name=Field.LEFT),
            ast.StoreValue(target="bl", expr=ast.IntLit(2)),
        ]
        # Both sequences touch t.left (one writes its value, the other reads
        # the node to reach below it) — wait: first writes t.left.value,
        # second reads t.left (the link) and writes t.left.left.value; the
        # value fields differ, so they are actually independent.
        assert sequences_independent(first, second, matrix)
        # But writing the same leaf conflicts:
        third = [
            ast.LoadField(target="c", source="t", field_name=Field.LEFT),
            ast.StoreValue(target="c", expr=ast.IntLit(3)),
        ]
        assert not sequences_independent(first, third, matrix)
