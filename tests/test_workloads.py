"""Integration tests for the workload suite and generators."""

import pytest

from repro.runtime import classify_structure, run_program
from repro.sil import ast
from repro.workloads import (
    TREE_PRESERVING,
    WORKLOADS,
    load,
    make_handle_web_program,
    make_independent_loads_program,
    make_recursive_walker_program,
    perfect_tree_values,
    random_tree_spec,
    source,
    with_depth,
)


class TestSuiteLoading:
    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            load("no_such_program")

    def test_with_depth_substitution(self):
        assert "build(7)" in with_depth(WORKLOADS["add_and_reverse"], 7)
        assert "{DEPTH}" not in source("tree_add", depth=5)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_workload_is_core_after_loading(self, name):
        program, info = load(name, depth=3)
        assert ast.program_is_core(program)
        assert info.for_procedure("main") is not None

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_workload_runs(self, name):
        depth = 12 if name == "bst_build" else 4
        program, info = load(name, depth=depth)
        result = run_program(program, info)
        assert result.work > 0
        assert result.race_free


class TestWorkloadSemantics:
    def test_add_and_reverse_adds_and_mirrors(self):
        program, info = load("add_and_reverse", depth=3)
        result = run_program(program, info)
        heap = result.heap
        root = result.main_locals["root"]
        node = heap.node(root)
        # After add_n(+1 / -1) and reverse, the (reversed) left subtree is the
        # old right subtree with every value decremented.
        assert heap.node(node.left).value == 2 - 1
        assert heap.node(node.right).value == 2 + 1

    def test_tree_add_total(self):
        program, info = load("tree_add", depth=6)
        result = run_program(program, info)
        assert result.main_locals["total"] == 2 ** 6 - 1

    def test_tree_mirror_swaps_children(self):
        program, info = load("tree_mirror", depth=3)
        result = run_program(program, info)
        heap = result.heap
        original = heap.extract(result.main_locals["root"])

        def mirrored(spec):
            if spec is None or isinstance(spec, int):
                return spec
            value, left, right = spec
            return (value, mirrored(right), mirrored(left))

        # Mirroring twice gives back the build() shape (values encode depth).
        rebuilt_program, rebuilt_info = load("tree_mirror", depth=3)
        fresh = run_program(rebuilt_program, rebuilt_info)
        assert original == heap.extract(result.main_locals["root"])
        assert mirrored(mirrored(original)) == original
        assert fresh.heap.extract(fresh.main_locals["root"]) == original

    def test_bst_build_is_search_tree(self):
        program, info = load("bst_build", depth=24)
        result = run_program(program, info)
        values = result.heap.values_inorder(result.main_locals["root"])
        assert values == sorted(values)
        assert result.main_locals["total"] == sum(values)

    def test_list_walk_count(self):
        program, info = load("list_walk", depth=9)
        result = run_program(program, info)
        assert result.main_locals["count"] == 8

    def test_bitonic_sorts_leaves(self):
        program, info = load("bitonic_sort", depth=6)
        result = run_program(program, info)
        heap, root = result.heap, result.main_locals["root"]
        leaves = [heap.node(ref).value for ref in heap.reachable_from([root]) if heap.node(ref).left is None]
        inorder = heap.values_inorder(root)
        leaf_sequence = [v for v in inorder if v != 0]
        assert sorted(leaves) == sorted(perfect_tree_values(6))
        assert leaf_sequence == sorted(leaf_sequence)

    @pytest.mark.parametrize("name", TREE_PRESERVING)
    def test_tree_preserving_workloads_end_as_trees(self, name):
        depth = 12 if name == "bst_build" else 3
        program, info = load(name, depth=depth)
        result = run_program(program, info)
        roots = [v for v in result.main_locals.values() if v is None or hasattr(v, "node_id")]
        report = classify_structure(result.heap, [r for r in roots if r is not None])
        assert report.is_tree

    def test_dag_sharing_creates_a_dag(self):
        program, info = load("dag_sharing")
        result = run_program(program, info)
        roots = [result.main_locals["x"], result.main_locals["y"]]
        assert classify_structure(result.heap, roots).is_dag

    def test_cycle_bug_creates_a_cycle(self):
        program, info = load("cycle_bug")
        result = run_program(program, info)
        report = classify_structure(result.heap, [result.main_locals["root"]])
        assert report.is_cyclic


class TestGenerators:
    def test_random_tree_spec_depth_bound(self):
        import random

        rng = random.Random(7)
        for _ in range(20):
            spec = random_tree_spec(rng, max_depth=4)
            from repro.runtime import Heap

            heap = Heap()
            root = heap.build(spec)
            assert heap.height(root) <= 4

    def test_independent_loads_program_scales(self):
        program, info = make_independent_loads_program(5)
        assert ast.program_is_core(program)
        result = run_program(program, info)
        assert len(result.heap) == 1 + 2 * 5

    def test_handle_web_program(self):
        program, info = make_handle_web_program(6)
        result = run_program(program, info)
        assert len(result.heap) == 7

    def test_recursive_walker_update_flag(self):
        reader, reader_info = make_recursive_walker_program(depth=3, update=False)
        updater, updater_info = make_recursive_walker_program(depth=3, update=True)
        from repro.analysis import compute_summaries

        assert compute_summaries(reader, reader_info)["walk"].readonly_params() == ["h"]
        assert compute_summaries(updater, updater_info)["walk"].update_params == {"h"}
        assert run_program(updater, updater_info).race_free

    def test_perfect_tree_values_count(self):
        assert len(perfect_tree_values(5)) == 2 ** 4
