"""Property-based tests (hypothesis): path algebra, analysis soundness, end-to-end.

Three layers of properties:

1. algebraic invariants of path expressions;
2. **soundness of the abstract transfer functions** against concrete heap
   execution: every concrete path between two handles must be described by
   the path matrix, and definite ``S`` claims must be true;
3. **end-to-end safety of the parallelizer**: a randomly generated
   straight-line handle program, parallelized with the path-matrix oracle,
   runs without dynamic races and computes the same heap as the sequential
   version.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.matrix import PathMatrix
from repro.analysis.paths import (
    Direction,
    Path,
    PathSegment,
    concat,
    format_path,
    generalize_pair,
    make_path,
    parse_path,
    paths_may_intersect,
    subsumes,
)
from repro.analysis.transfer import apply_basic_statement
from repro.parallel import parallelize_program
from repro.runtime import Heap, run_program
from repro.sil import ast, check_program
from repro.sil.builder import HANDLE, INT, ProgramBuilder
from repro.sil.normalize import normalize_program

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

directions = st.sampled_from([Direction.LEFT, Direction.RIGHT, Direction.DOWN])
segments = st.builds(
    PathSegment,
    direction=directions,
    count=st.integers(min_value=1, max_value=3),
    exact=st.booleans(),
)
paths = st.builds(
    lambda segs, definite: make_path(segs, definite),
    st.lists(segments, min_size=0, max_size=3),
    st.booleans(),
)


class TestPathAlgebraProperties:
    @given(paths)
    def test_format_parse_round_trip(self, path):
        assert parse_path(format_path(path)) == path

    @given(paths)
    def test_concat_with_same_is_identity(self, path):
        same = Path((), True)
        assert concat(same, path) == path
        assert concat(path, same) == path

    @given(paths, paths)
    def test_concat_min_length_is_bounded_by_sum(self, first, second):
        result = concat(first, second)
        assert result.min_length <= first.min_length + second.min_length
        assert result.min_length >= min(first.min_length, second.min_length)

    @given(paths)
    def test_subsumption_is_reflexive(self, path):
        assert subsumes(path, path)

    @given(paths)
    def test_path_intersects_itself(self, path):
        assert paths_may_intersect(path, path)

    @given(paths, paths)
    def test_intersection_is_symmetric(self, first, second):
        assert paths_may_intersect(first, second) == paths_may_intersect(second, first)

    @given(paths, paths)
    def test_subsumption_implies_intersection(self, first, second):
        if subsumes(first, second):
            assert paths_may_intersect(first, second)

    @given(paths, paths)
    def test_generalize_pair_covers_both(self, first, second):
        if first.is_same != second.is_same:
            return  # S cannot be generalized with a proper path
        general = generalize_pair(first, second)
        assert subsumes(general, first) or general == first
        assert subsumes(general, second) or general == second


# ---------------------------------------------------------------------------
# Soundness of transfer functions against a concrete heap
# ---------------------------------------------------------------------------

HANDLES = ["h0", "h1", "h2", "h3"]

#: One abstract operation: (kind, handle index, handle index, field selector).
operations = st.lists(
    st.tuples(
        st.sampled_from(["new", "copy", "load", "store", "cut"]),
        st.integers(min_value=0, max_value=len(HANDLES) - 1),
        st.integers(min_value=0, max_value=len(HANDLES) - 1),
        st.sampled_from([ast.Field.LEFT, ast.Field.RIGHT]),
    ),
    min_size=1,
    max_size=25,
)


def _concrete_paths(heap: Heap, source, target, limit: int = 200) -> List[List[str]]:
    """All simple edge-label paths from node ``source`` to node ``target``."""
    results: List[List[str]] = []

    def walk(current, labels, visited):
        if len(results) >= limit:
            return
        if current.node_id == target.node_id and labels:
            results.append(list(labels))
        node = heap.node(current)
        for label, child in (("L", node.left), ("R", node.right)):
            if child is not None and child.node_id not in visited:
                walk(child, labels + [label], visited | {child.node_id})

    walk(source, [], {source.node_id})
    return results


def _path_expression(labels: List[str]) -> Path:
    segments = [PathSegment(Direction.LEFT if l == "L" else Direction.RIGHT, 1, True) for l in labels]
    return make_path(segments)


class TestTransferSoundness:
    @settings(max_examples=60, deadline=None)
    @given(operations)
    def test_abstract_matrix_covers_concrete_paths(self, ops):
        heap = Heap()
        concrete: Dict[str, Optional[object]] = {name: None for name in HANDLES}
        matrix = PathMatrix(HANDLES)

        def apply(stmt: ast.BasicStmt) -> None:
            nonlocal matrix
            matrix = apply_basic_statement(matrix, stmt).matrix

        for kind, i, j, field in ops:
            a, b = HANDLES[i], HANDLES[j]
            if kind == "new":
                concrete[a] = heap.allocate()
                apply(ast.AssignNew(target=a))
            elif kind == "copy":
                concrete[a] = concrete[b]
                apply(ast.CopyHandle(target=a, source=b))
            elif kind == "load":
                if concrete[b] is None:
                    continue  # would be a runtime error; skip both sides
                concrete[a] = heap.read_link(concrete[b], field)
                apply(ast.LoadField(target=a, source=b, field_name=field))
            elif kind == "store":
                if concrete[a] is None or concrete[b] is None:
                    continue
                # Keep the structure a TREE (the discipline the analysis is
                # designed for, Section 3.1): skip stores that would close a
                # cycle or give the linked node a second parent.
                if concrete[a].node_id in {
                    r.node_id for r in heap.reachable_from([concrete[b]])
                }:
                    continue
                if heap.parents().get(concrete[b].node_id):
                    continue
                heap.write_link(concrete[a], field, concrete[b])
                apply(ast.StoreField(target=a, field_name=field, source=b))
            elif kind == "cut":
                if concrete[a] is None:
                    continue
                heap.write_link(concrete[a], field, None)
                apply(ast.StoreField(target=a, field_name=field, source=None))

            # --- soundness checks after every step -----------------------
            for first in HANDLES:
                for second in HANDLES:
                    if first == second:
                        continue
                    node_a, node_b = concrete[first], concrete[second]
                    if node_a is None or node_b is None:
                        continue
                    entry = matrix.get(first, second)
                    if node_a.node_id == node_b.node_id:
                        assert entry.has_same, (
                            f"{first} and {second} name the same node but "
                            f"p[{first},{second}] = {{{entry.format()}}}"
                        )
                    for labels in _concrete_paths(heap, node_a, node_b):
                        exact = _path_expression(labels)
                        assert any(paths_may_intersect(exact, p) for p in entry), (
                            f"concrete path {''.join(labels)} from {first} to {second} "
                            f"is not covered by p[{first},{second}] = {{{entry.format()}}}"
                        )

    @settings(max_examples=40, deadline=None)
    @given(operations)
    def test_definite_same_claims_are_true(self, ops):
        heap = Heap()
        concrete: Dict[str, Optional[object]] = {name: None for name in HANDLES}
        matrix = PathMatrix(HANDLES)

        for kind, i, j, field in ops:
            a, b = HANDLES[i], HANDLES[j]
            if kind == "new":
                concrete[a] = heap.allocate()
                stmt = ast.AssignNew(target=a)
            elif kind == "copy":
                concrete[a] = concrete[b]
                stmt = ast.CopyHandle(target=a, source=b)
            elif kind == "load":
                if concrete[b] is None:
                    continue
                concrete[a] = heap.read_link(concrete[b], field)
                stmt = ast.LoadField(target=a, source=b, field_name=field)
            else:
                continue
            matrix = apply_basic_statement(matrix, stmt).matrix

            for first in HANDLES:
                for second in HANDLES:
                    if first == second:
                        continue
                    if matrix.get(first, second).has_definite_same:
                        node_a, node_b = concrete[first], concrete[second]
                        if node_a is not None and node_b is not None:
                            assert node_a.node_id == node_b.node_id


# ---------------------------------------------------------------------------
# End-to-end: random straight-line programs parallelize safely
# ---------------------------------------------------------------------------


def _build_random_program(ops) -> Tuple[ast.Program, object]:
    """Turn a decision stream into a valid straight-line SIL program."""
    builder = ProgramBuilder("random_straightline")
    handle_names = [f"h{i}" for i in range(4)]
    int_names = [f"x{i}" for i in range(2)]
    main = builder.procedure(
        "main",
        locals=[(n, HANDLE) for n in handle_names] + [(n, INT) for n in int_names],
    )
    # Mirror the concrete state during generation so every emitted statement
    # is guaranteed to execute without a nil dereference.
    heap = Heap()
    concrete: Dict[str, Optional[object]] = {name: None for name in handle_names}

    main.assign(handle_names[0], ast.NewExpr())
    concrete[handle_names[0]] = heap.allocate()

    for kind, i, j, field in ops:
        a, b = handle_names[i], handle_names[j]
        field_name = "left" if field is ast.Field.LEFT else "right"
        if kind == "new":
            main.assign(a, ast.NewExpr())
            concrete[a] = heap.allocate()
        elif kind == "copy":
            main.assign(a, ast.Name(b))
            concrete[a] = concrete[b]
        elif kind == "load":
            if concrete[b] is None:
                continue
            main.assign(a, ast.FieldAccess(ast.Name(b), field))
            concrete[a] = heap.read_link(concrete[b], field)
        elif kind == "store":
            if concrete[a] is None or concrete[b] is None:
                continue
            if concrete[a].node_id in {r.node_id for r in heap.reachable_from([concrete[b]])}:
                continue
            main.assign((a, field_name), ast.Name(b))
            heap.write_link(concrete[a], field, concrete[b])
        elif kind == "cut":
            if concrete[a] is None:
                continue
            main.assign((a, field_name), ast.NilLit())
            heap.write_link(concrete[a], field, None)
        # Sprinkle in value updates and reads through live handles.
        if concrete[a] is not None and kind in ("new", "copy", "load"):
            main.assign((a, "value"), ast.BinOp("+", ast.FieldAccess(ast.Name(a), ast.Field.VALUE), ast.IntLit(i + 1)))

    program = builder.build()
    return normalize_program(program)


class TestEndToEndParallelizationSafety:
    @settings(max_examples=25, deadline=None)
    @given(operations)
    def test_parallelized_random_program_is_race_free_and_equivalent(self, ops):
        program, info = _build_random_program(ops)
        sequential = run_program(program, info)

        result = parallelize_program(program, info)
        parallel_info = check_program(result.program)
        parallel = run_program(result.program, parallel_info)

        assert parallel.race_free, [str(r) for r in parallel.races]
        assert parallel.work == sequential.work
        for name, value in sequential.main_locals.items():
            par_value = parallel.main_locals[name]
            if value is None or hasattr(value, "node_id"):
                seq_shape = sequential.heap.extract(value) if value is not None else None
                par_shape = parallel.heap.extract(par_value) if par_value is not None else None
                assert seq_shape == par_shape
            else:
                assert value == par_value
