"""Packed representations & lazy interning (the cold-path kernel rewrite).

Covers the invariants the packed-kernel / lazy-interning change must hold:

* the packed segment encoding round-trips over its *whole* domain —
  direction × count × exact, including the limit-boundary counts the
  widening logic produces (property-based, hypothesis);
* scratch (mutable) and sealed matrices with equal contents produce
  **byte-identical** cache-codec keys and canonical forms — laziness must
  be invisible to the persistent store and the sharded digests;
* codec keys are ``PYTHONHASHSEED``-independent (fresh subprocesses with
  different seeds agree byte for byte);
* the measured-lazy counters actually fire: analyzing the widening-heavy
  dag/deep families elides scratch matrices, defers interns, and runs the
  packed kernels;
* the interning-table report covers the new packed-segment/symbol/memo
  tables, so table growth stays observable after the representation change.
"""

import json
import os
import subprocess
import sys
from pathlib import Path as FilePath

from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_program
from repro.analysis.limits import DEFAULT_LIMITS
from repro.analysis.matrix import PathMatrix
from repro.analysis.paths import (
    Direction,
    PathSegment,
    pack_segment,
    unpack_segment,
)
from repro.analysis.pathset import PathSet, intern_table_sizes
from repro.cache.codec import transfer_key
from repro.sil import ast
from repro.sil.normalize import parse_and_normalize
from repro.workloads import generate_scenarios

SRC = str(FilePath(__file__).resolve().parent.parent / "src")

#: Counts the widening logic actually produces: zero (open-ended ``*``),
#: everything up to the default bounds, the exact boundary values where
#: ``max_exact_count`` / ``max_open_count`` widen, and far beyond.
BOUNDARY_COUNTS = sorted(
    {
        0,
        1,
        2,
        DEFAULT_LIMITS.max_exact_count - 1,
        DEFAULT_LIMITS.max_exact_count,
        DEFAULT_LIMITS.max_exact_count + 1,
        DEFAULT_LIMITS.max_open_count,
        DEFAULT_LIMITS.max_open_count + 1,
        63,
        64,
        1 << 20,
    }
)

directions = st.sampled_from(list(Direction))
counts = st.one_of(st.sampled_from(BOUNDARY_COUNTS), st.integers(min_value=0, max_value=1 << 24))
exacts = st.booleans()


class TestPackedSegmentEncoding:
    @given(direction=directions, count=counts, exact=exacts)
    @settings(max_examples=300)
    def test_pack_unpack_round_trips_over_the_full_domain(self, direction, count, exact):
        packed = pack_segment(direction, count, exact)
        assert unpack_segment(packed) == (direction, count, exact)

    @given(direction=directions, count=counts.filter(lambda n: n >= 1), exact=exacts)
    @settings(max_examples=200)
    def test_packed_value_matches_the_interned_segment(self, direction, count, exact):
        # Segment *objects* require at least one edge; only the raw packed
        # encoding spans count zero (open-ended repetitions).
        segment = PathSegment(direction, count, exact)
        assert segment.packed == pack_segment(direction, count, exact)
        assert (segment.direction, segment.count, segment.exact) == unpack_segment(
            segment.packed
        )

    def test_encoding_is_injective_across_the_boundary_grid(self):
        grid = {
            pack_segment(direction, count, exact)
            for direction in Direction
            for count in BOUNDARY_COUNTS
            for exact in (False, True)
        }
        assert len(grid) == len(Direction) * len(BOUNDARY_COUNTS) * 2


def _scratch_matrix() -> PathMatrix:
    """A matrix built through the mutable (scratch-row) write path."""
    matrix = PathMatrix(["a", "b", "c"])
    matrix.set("a", "b", PathSet.parse("L1"))
    matrix.set("a", "c", PathSet.parse("R1, L1 R1"))
    matrix.set("b", "c", PathSet.parse("D+?"))
    return matrix


class TestScratchSealedCodecIdentity:
    def test_scratch_and_sealed_codec_keys_are_byte_identical(self):
        stmt = ast.CopyHandle(target="a", source="b")
        scratch = _scratch_matrix()
        scratch_key = transfer_key(stmt, DEFAULT_LIMITS, scratch)

        sealed = _scratch_matrix().seal()
        interned = _scratch_matrix().interned()
        assert transfer_key(stmt, DEFAULT_LIMITS, sealed) == scratch_key
        assert transfer_key(stmt, DEFAULT_LIMITS, interned) == scratch_key

    def test_scratch_and_sealed_canonical_forms_agree(self):
        scratch = _scratch_matrix()
        assert scratch.canonical_form() == _scratch_matrix().seal().canonical_form()
        assert scratch.canonical_form() == _scratch_matrix().interned().canonical_form()

    def test_sealed_matrices_hash_by_content(self):
        first = _scratch_matrix().seal()
        second = _scratch_matrix().seal()
        assert first is not second
        assert first == second and hash(first) == hash(second)
        # Mutable matrices stay unhashable: a key that could change under
        # a memo dict would silently corrupt every later probe.
        import pytest

        with pytest.raises(TypeError):
            hash(_scratch_matrix())


#: Prints the codec key of a fixed transfer application; run under
#: controlled ``PYTHONHASHSEED`` values to prove hash-seed independence.
_KEY_WORKER = """
import sys
sys.path.insert(0, {src!r})
from repro.analysis.limits import DEFAULT_LIMITS
from repro.analysis.matrix import PathMatrix
from repro.analysis.pathset import PathSet
from repro.cache.codec import transfer_key
from repro.sil import ast

matrix = PathMatrix(["a", "b", "c"])
matrix.set("a", "b", PathSet.parse("L1"))
matrix.set("a", "c", PathSet.parse("R1, L1 R1"))
matrix.set("b", "c", PathSet.parse("D+?"))
print(transfer_key(ast.CopyHandle(target="a", source="b"), DEFAULT_LIMITS, matrix))
"""


class TestHashSeedIndependence:
    def test_codec_keys_identical_across_hash_seeds(self):
        keys = []
        for seed in ("0", "4242"):
            completed = subprocess.run(
                [sys.executable, "-c", _KEY_WORKER.format(src=SRC)],
                capture_output=True,
                text=True,
                env=dict(os.environ, PYTHONHASHSEED=seed),
                check=True,
            )
            keys.append(completed.stdout.strip())
        assert keys[0] == keys[1] and len(keys[0]) == 64


class TestLazyInterningCounters:
    def test_dag_and_deep_families_elide_scratch_matrices(self):
        from repro.analysis.context import AnalysisContext
        from repro.analysis.transfer import TransferCache

        for family in ("dag", "deep"):
            scenario = generate_scenarios(1, base_seed=0, families=[family])[0]
            program, info = parse_and_normalize(scenario.source)
            # A private transfer cache, so the transfers genuinely compute
            # even when the process-global cache is warm from other tests.
            context = AnalysisContext(
                program=program, info=info, transfer_cache=TransferCache()
            )
            result = analyze_program(program, info, context=context)
            stats = result.stats
            assert stats.scratch_matrices_elided > 0, family
            assert stats.lazy_intern_deferrals > 0, family
            assert stats.packed_segment_ops > 0, family
            # Laziness may not cost correctness: the reference comparison
            # is covered elsewhere; here we pin that elision dominates —
            # far fewer matrices reach the global intern table than the
            # transfer layer produced.
            assert stats.scratch_matrices_elided >= stats.matrix_intern_hits, family

    def test_intern_table_report_covers_the_new_tables(self, intern_tables):
        sizes = intern_tables.current()
        for table in (
            "segments_interned",
            "symbols_interned",
            "append_memo",
            "cancel_memo",
            "matrices_interned",
            "matrix_rows_interned",
        ):
            assert table in sizes and sizes[table] >= 0, table
        # The snapshot fixture sees the same vocabulary — the report is
        # stable within a process, wherever in the run it is read.
        assert set(intern_tables.before) == set(sizes)
        # A segment count this large appears nowhere else in the suite:
        # fresh interning work is visible as growth even on a cold start.
        held = PathSet.parse("D6779")  # noqa: F841
        assert intern_tables.growth()["segments_interned"] >= 1
