"""Satellite: cache keys and payloads are byte-identical across processes.

The persistent store is only sound if the canonical keys and encodings are
process-independent — in particular independent of ``PYTHONHASHSEED``,
which reorders every ``set`` and ``dict``-hash-dependent iteration in the
interpreter.  These tests launch real subprocesses with *different* hash
seeds, populate a fresh disk store in each, and require the stores to be
byte-identical row for row — plus identical analysis stats, covering the
fresh-process widening-replay path end to end.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Populates a store and prints a digest of its full contents plus the
#: run's counters.  Runs in a subprocess under a controlled hash seed.
_WORKER = """
import hashlib, json, sqlite3, sys
sys.path.insert(0, {src!r})
sys.setrecursionlimit(100_000)

from repro.analysis.engine import BatchAnalyzer
from repro.cache import CacheConfig, STORE_FILENAME
from repro.sil.normalize import parse_and_normalize
from repro.workloads import generate_scenarios
from repro.workloads.suite import source

directory = sys.argv[1]
batch = BatchAnalyzer(cache=CacheConfig(backend="disk", directory=directory))
sources = [source(name, depth=3) for name in ("add_and_reverse", "bst_build")]
sources += [s.source for s in generate_scenarios(2, base_seed=11, families=["deep"])]
for text in sources:
    program, info = parse_and_normalize(text)
    batch.analyze(program, info)
batch.close()

rows = sqlite3.connect(directory + "/" + STORE_FILENAME).execute(
    "SELECT key, payload FROM entries ORDER BY key").fetchall()
digest = hashlib.sha256(
    json.dumps(rows, sort_keys=True, separators=(",", ":")).encode()).hexdigest()
print(json.dumps({{
    "rows": len(rows),
    "digest": digest,
    "widening": batch.stats.widening_counters(),
    "writes": batch.stats.persistent_cache_writes,
}}, sort_keys=True))
"""


def _run_worker(directory: Path, hash_seed: str) -> dict:
    environment = dict(os.environ, PYTHONHASHSEED=hash_seed)
    completed = subprocess.run(
        [sys.executable, "-c", _WORKER.format(src=SRC), str(directory)],
        capture_output=True,
        text=True,
        env=environment,
        check=True,
    )
    return json.loads(completed.stdout)


class TestHashSeedIndependence:
    def test_stores_are_byte_identical_across_hash_seeds(self, tmp_path):
        first = _run_worker(tmp_path / "seed0", "0")
        second = _run_worker(tmp_path / "seed12345", "12345")
        assert first["rows"] > 0
        # Same keys, same payloads, byte for byte — under different hash
        # seeds in different interpreter processes.
        assert first == second

    def test_rerun_in_same_directory_is_stable(self, tmp_path):
        directory = tmp_path / "store"
        first = _run_worker(directory, "1")
        # A warm rerun with yet another hash seed: every lookup must hit
        # (writes == 0) and the store must not change.
        second = _run_worker(directory, "999")
        assert second["writes"] == 0
        assert second["digest"] == first["digest"]
        # Fresh-process replay: the warm run reports the cold run's exact
        # widening telemetry without recomputing any transfer.
        assert second["widening"] == first["widening"]
