"""Path expressions — the atoms of the path-matrix abstract domain.

Section 4 of the paper: the relationship between two handles ``a`` and ``b``
is a set of *paths*.  A path is either ``S`` (the two handles refer to the
same node) or a *path expression*, a non-empty sequence of links:

* ``L^i`` — exactly *i* left edges,   ``L+`` — one or more left edges,
* ``R^i`` — exactly *i* right edges,  ``R+`` — one or more right edges,
* ``D^i`` — exactly *i* down edges (left or right), ``D+`` — one or more.

Each path is *definite* (guaranteed to exist) or *possible* (may exist),
written with a trailing ``?`` in the paper (``S?``, ``D+?``).

This module represents paths in a canonical, finite form
(:class:`PathSegment` sequences bounded by :class:`~repro.analysis.limits.
AnalysisLimits`) and implements the algebra the transfer functions need:

* :func:`concat` — path composition (x→b composed with b→y gives x→y);
* :func:`append_link` — extend a path by one explicit ``left``/``right`` edge
  (used for ``a := b.f``: every path x→b extends to a path x→a);
* :func:`cancel_first` — remove one leading ``left``/``right`` edge from a
  path (used for ``a := b.f``: a path b→x whose first edge *is* the ``f``
  edge leaves a remainder a→x; uncertain first edges yield possible paths);
* :func:`generalize_pair` — the widening used when path sets grow.

**Packed representation.**  Every segment also carries a *packed* integer
encoding — direction code in bits 0–1, the exact flag in bit 2, the edge
count from bit 3 up (:func:`pack_segment` / :func:`unpack_segment`) — and
every path carries the tuple of its segments' packed values plus the
definite flag folded into a precomputed intern tag.  The hot-loop kernels
(normalization, :func:`concat`, :func:`append_link`, :func:`cancel_first`,
:func:`subsumes`) run entirely on those integers: merging two adjacent
segments, clamping a count or comparing directions are shifts and masks,
interning probes hash machine ints instead of enum/tuple objects, and no
intermediate :class:`PathSegment` objects are allocated.  The segment
objects themselves are materialized lazily, only for paths that actually
get interned.
"""

from __future__ import annotations

import enum
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sil.ast import Field
from . import telemetry
from .limits import DEFAULT_LIMITS, AnalysisLimits


class Direction(enum.Enum):
    """The direction of a path segment: left, right, or down (either)."""

    LEFT = "L"
    RIGHT = "R"
    DOWN = "D"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @staticmethod
    def of_field(field: Field) -> "Direction":
        if field is Field.LEFT:
            return Direction.LEFT
        if field is Field.RIGHT:
            return Direction.RIGHT
        raise ValueError(f"{field} is not a link field")

    def could_match(self, field: Field) -> bool:
        """Can an edge in this direction be the given concrete link field?"""
        if self is Direction.DOWN:
            return True
        return self is Direction.of_field(field)

    def certainly_matches(self, field: Field) -> bool:
        """Is an edge in this direction *guaranteed* to be the given field?"""
        return self is not Direction.DOWN and self is Direction.of_field(field)

    def join(self, other: "Direction") -> "Direction":
        """The least direction covering both (L join R = D)."""
        if self is other:
            return self
        return Direction.DOWN


# ---------------------------------------------------------------------------
# Packed segment encoding
# ---------------------------------------------------------------------------

#: Direction codes for the packed encoding (bits 0–1 of a packed segment).
DIR_CODES: Dict[Direction, int] = {Direction.LEFT: 0, Direction.RIGHT: 1, Direction.DOWN: 2}
#: Inverse of :data:`DIR_CODES`, indexed by code.
DIR_BY_CODE: Tuple[Direction, ...] = (Direction.LEFT, Direction.RIGHT, Direction.DOWN)

_DIR_MASK = 0b11
_DOWN_CODE = 2
_EXACT = 0b100
_COUNT_SHIFT = 3

#: Packed codes for the concrete link fields (used by the transfer kernels).
_FIELD_CODE: Dict[Field, int] = {Field.LEFT: 0, Field.RIGHT: 1}

#: Count of packed-segment kernel operations performed process-wide
#: (normalizations count one op per segment handled; ``cancel_first`` counts
#: one per invocation).  Snapshot-diffed into ``AnalysisStats.
#: packed_segment_ops`` by the pipeline, mirroring ``PathMatrix.allocations``.
_PACKED_OPS = 0


def packed_segment_ops() -> int:
    """The process-wide packed-kernel operation counter (monotone)."""
    return _PACKED_OPS


def pack_segment(direction: Direction, count: int, exact: bool) -> int:
    """Encode ``(direction, count, exact)`` as one integer.

    Layout: bits 0–1 the direction code (L=0, R=1, D=2), bit 2 the exact
    flag, bits 3+ the count.  Every valid segment (``count >= 1``) packs to
    an integer ``>= 8``, so packed values can double as collision-free
    intern keys and hashes.
    """
    return DIR_CODES[direction] | (_EXACT if exact else 0) | (count << _COUNT_SHIFT)


def unpack_segment(packed: int) -> Tuple[Direction, int, bool]:
    """Decode a packed segment back to ``(direction, count, exact)``."""
    return DIR_BY_CODE[packed & _DIR_MASK], packed >> _COUNT_SHIFT, bool(packed & _EXACT)


class PathSegment:
    """``count`` edges in ``direction``; exactly ``count`` if ``exact`` else at least.

    Instances are *hash-consed*: constructing the same (direction, count,
    exact) triple twice yields the **same** object, so equality is an identity
    check and the hash is precomputed.  The intern table is keyed by the
    packed integer encoding (:func:`pack_segment`), which is also the
    object's hash — probing the table hashes one machine int rather than an
    ``(enum, int, bool)`` tuple.  Interned instances are immutable and live
    for the lifetime of the process; the whole abstract domain is finite
    (see :mod:`repro.analysis.limits`), so the table stays small.
    """

    __slots__ = ("direction", "count", "exact", "packed")

    _intern: Dict[int, "PathSegment"] = {}

    def __new__(cls, direction: Direction, count: int, exact: bool) -> "PathSegment":
        packed = DIR_CODES[direction] | (_EXACT if exact else 0) | (count << _COUNT_SHIFT)
        cached = cls._intern.get(packed)
        if cached is not None:
            return cached
        if count < 1:
            raise ValueError("a path segment must contain at least one edge")
        self = object.__new__(cls)
        object.__setattr__(self, "direction", direction)
        object.__setattr__(self, "count", count)
        object.__setattr__(self, "exact", bool(exact))
        object.__setattr__(self, "packed", packed)
        cls._intern[packed] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("PathSegment is immutable (interned)")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("PathSegment is immutable (interned)")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PathSegment):
            return NotImplemented
        # Interning makes distinct instances unequal by construction; this
        # fallback only matters for exotic cases (e.g. unpickled copies from
        # another process image, which __reduce__ re-interns anyway).
        return self.packed == other.packed

    def __hash__(self) -> int:
        return self.packed

    def __reduce__(self):
        return (PathSegment, (self.direction, self.count, self.exact))

    @property
    def min_length(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PathSegment({self.direction!r}, {self.count!r}, {self.exact!r})"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return format_segment(self)


def _segment_of_packed(packed: int) -> PathSegment:
    """The interned segment for a packed encoding (decoding on first sight)."""
    cached = PathSegment._intern.get(packed)
    if cached is not None:
        return cached
    return PathSegment(
        DIR_BY_CODE[packed & _DIR_MASK], packed >> _COUNT_SHIFT, bool(packed & _EXACT)
    )


def format_segment(segment: PathSegment) -> str:
    """``L1``, ``R+``, ``D2+`` (the paper's ``L^1``, ``R+``, superscripts flattened)."""
    base = segment.direction.value
    if segment.exact:
        return f"{base}{segment.count}"
    if segment.count == 1:
        return f"{base}+"
    return f"{base}{segment.count}+"


class Path:
    """A single path: ``S`` (empty segment tuple) or a path expression.

    ``definite`` is True for paths guaranteed to exist, False for paths that
    may exist (displayed with a trailing ``?``).

    Like :class:`PathSegment`, paths are hash-consed: the same (segments,
    definite) pair always yields the same object, equality is identity, and
    the hash is precomputed.  The intern key is the tuple of the segments'
    *packed* integers with the definite flag folded in as a trailing tag —
    an all-int tuple that hashes from machine ints, never touching the
    segment objects.  ``min_length`` is precomputed at construction, and the
    opposite-definiteness variant of every path is cached after first use,
    so flipping definiteness (the single most common path operation in
    joins) is a slot load.
    """

    __slots__ = ("segments", "packed", "definite", "min_length", "_hash", "_alt")

    _intern: Dict[Tuple[int, ...], "Path"] = {}

    def __new__(
        cls, segments: Iterable["PathSegment"] = (), definite: bool = True
    ) -> "Path":
        segments = tuple(segments)
        return cls._of_packed(
            tuple(segment.packed for segment in segments), bool(definite), segments
        )

    @classmethod
    def _of_packed(
        cls,
        packed: Tuple[int, ...],
        definite: bool,
        segments: Optional[Tuple["PathSegment", ...]] = None,
    ) -> "Path":
        """Intern a path from its packed encoding (the kernel fast path).

        ``segments`` may be supplied when the caller already holds the
        segment objects; otherwise they are materialized from the packed
        values only on an intern miss.
        """
        key = packed + (1,) if definite else packed + (0,)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        if segments is None:
            segments = tuple(_segment_of_packed(value) for value in packed)
        self = object.__new__(cls)
        object.__setattr__(self, "segments", segments)
        object.__setattr__(self, "packed", packed)
        object.__setattr__(self, "definite", definite)
        object.__setattr__(
            self, "min_length", sum(value >> _COUNT_SHIFT for value in packed)
        )
        object.__setattr__(self, "_hash", hash(key))
        object.__setattr__(self, "_alt", None)
        cls._intern[key] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Path is immutable (interned)")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("Path is immutable (interned)")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Path):
            return NotImplemented
        return self.packed == other.packed and self.definite == other.definite

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Path, (self.segments, self.definite))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Path({self.segments!r}, definite={self.definite!r})"

    @property
    def is_same(self) -> bool:
        """True for the ``S`` path ("the two handles name the same node")."""
        return not self.packed

    @property
    def is_exact_length(self) -> bool:
        """True if every segment has an exact count."""
        return all(value & _EXACT for value in self.packed)

    def as_definite(self) -> "Path":
        return self if self.definite else self._variant()

    def as_possible(self) -> "Path":
        return self._variant() if self.definite else self

    def with_definite(self, definite: bool) -> "Path":
        return self if bool(definite) == self.definite else self._variant()

    def _variant(self) -> "Path":
        """The same segments with flipped definiteness (cached both ways)."""
        alt = self._alt
        if alt is None:
            alt = Path._of_packed(self.packed, not self.definite, self.segments)
            object.__setattr__(self, "_alt", alt)
            object.__setattr__(alt, "_alt", self)
        return alt

    def __str__(self) -> str:  # pragma: no cover - trivial
        return format_path(self)


#: The definite ``S`` path.
SAME = Path((), True)
#: The possible ``S?`` path.
MAYBE_SAME = Path((), False)


def format_path(path: Path) -> str:
    """Render a path in the paper's notation, e.g. ``L1L+``, ``S?``, ``D+?``."""
    if path.is_same:
        text = "S"
    else:
        text = "".join(format_segment(segment) for segment in path.segments)
    return text if path.definite else text + "?"


_SEGMENT_RE = re.compile(r"([LRDS])(\d*)(\+?)")


def parse_path(text: str) -> Path:
    """Parse the notation produced by :func:`format_path` (used in tests).

    Examples: ``"S"``, ``"S?"``, ``"L1"``, ``"R+"``, ``"L1L+L1"``, ``"R1D+?"``,
    ``"D2+"``.  Whitespace and ``.`` separators are ignored.
    """
    cleaned = text.strip().replace(" ", "").replace(".", "")
    definite = True
    if cleaned.endswith("?"):
        definite = False
        cleaned = cleaned[:-1]
    if cleaned == "S":
        return Path((), definite)
    segments: List[PathSegment] = []
    position = 0
    while position < len(cleaned):
        match = _SEGMENT_RE.match(cleaned, position)
        if not match or match.group(1) == "S":
            raise ValueError(f"cannot parse path expression {text!r} at {cleaned[position:]!r}")
        letter, digits, plus = match.groups()
        direction = Direction(letter)
        count = int(digits) if digits else 1
        exact = plus == ""
        if digits == "" and plus == "":
            # A bare letter such as "L" means one exact edge (same as "L1").
            count, exact = 1, True
        segments.append(PathSegment(direction, count, exact))
        position = match.end()
    return make_path(segments, definite)


# ---------------------------------------------------------------------------
# Canonicalization
# ---------------------------------------------------------------------------


def make_path(
    segments: Iterable[PathSegment],
    definite: bool = True,
    limits: AnalysisLimits = DEFAULT_LIMITS,
) -> Path:
    """Build a canonical path from raw segments, applying the domain limits."""
    packed = _normalize_packed([segment.packed for segment in segments], limits)
    return Path._of_packed(tuple(packed), bool(definite))


def _normalize_packed(packed: Sequence[int], limits: AnalysisLimits) -> List[int]:
    """Canonicalize a packed segment sequence under the domain limits.

    The integer mirror of the three normalization steps the segment-object
    implementation used: merge adjacent same-direction segments, clamp
    counts (firing the widening telemetry), bound the segment count by
    collapsing the tail into one generalized segment.
    """
    global _PACKED_OPS
    _PACKED_OPS += len(packed)

    # 1. Merge adjacent segments with the same direction: counts add, the
    #    merged segment is exact only when both halves are.
    merged: List[int] = []
    for segment in packed:
        if merged:
            previous = merged[-1]
            if not ((previous ^ segment) & _DIR_MASK):
                merged[-1] = (
                    (segment & _DIR_MASK)
                    | (previous & segment & _EXACT)
                    | (((previous >> _COUNT_SHIFT) + (segment >> _COUNT_SHIFT)) << _COUNT_SHIFT)
                )
                continue
        merged.append(segment)

    # 2. Clamp counts.
    max_exact = limits.max_exact_count
    max_open = limits.max_open_count
    clamped: List[int] = []
    for segment in merged:
        count = segment >> _COUNT_SHIFT
        exact = segment & _EXACT
        if exact and count > max_exact:
            count, exact = max_exact, 0
            telemetry.note_exact_widening()
        if not exact and count > max_open:
            count = max_open
        clamped.append((segment & _DIR_MASK) | exact | (count << _COUNT_SHIFT))

    # 3. Bound the number of segments by collapsing the tail into one
    #    open-or-exact DOWN segment (a strictly more general description).
    if len(clamped) > limits.max_segments:
        telemetry.note_segment_collapse()
        keep = limits.max_segments - 1
        head, tail = clamped[:keep], clamped[keep:]
        total = sum(segment >> _COUNT_SHIFT for segment in tail)
        all_exact = all(segment & _EXACT for segment in tail)
        direction = tail[0] & _DIR_MASK
        for segment in tail[1:]:
            if (segment & _DIR_MASK) != direction:
                direction = _DOWN_CODE
        collapsed = (
            direction
            | (_EXACT if (all_exact and total <= max_exact) else 0)
            | (min(total, max_open) << _COUNT_SHIFT)
        )
        head.append(collapsed)
        # Re-merge in case the collapsed segment matches its neighbour.
        return _normalize_packed(head, limits)
    return clamped


# ---------------------------------------------------------------------------
# Algebra
# ---------------------------------------------------------------------------


def concat(first: Path, second: Path, limits: AnalysisLimits = DEFAULT_LIMITS) -> Path:
    """Compose a path x→b with a path b→y into a path x→y."""
    definite = first.definite and second.definite
    if not first.packed:
        return second.with_definite(definite)
    if not second.packed:
        return first.with_definite(definite)
    normalized = _normalize_packed(first.packed + second.packed, limits)
    return Path._of_packed(tuple(normalized), definite)


def _link_code(field: Field) -> int:
    code = _FIELD_CODE.get(field)
    if code is None:
        raise ValueError(f"{field} is not a link field")
    return code


#: Memo for :func:`append_link` — the load-field transfer extends the same
#: interned paths by the same edge at every re-analysis, and path/limits
#: keys hash from precomputed ints.  Each entry stores the widening tally
#: captured while the call computed (``None`` when nothing fired) so memo
#: hits replay the exact telemetry of a fresh computation.
_APPEND_CACHE: Dict[Tuple[Path, Field, AnalysisLimits], Tuple[Path, object]] = {}


def append_link(path: Path, field: Field, limits: AnalysisLimits = DEFAULT_LIMITS) -> Path:
    """Extend a path x→b by one explicit edge ``b.field`` giving x→(b.field)."""
    # Count the kernel op *before* the memo probe (like cancel_first), so
    # ``packed_segment_ops`` reads the same whether the memo is warm or
    # cold — deterministic per application, like every other counter.
    global _PACKED_OPS
    _PACKED_OPS += 1
    key = (path, field, limits)
    cached = _APPEND_CACHE.get(key)
    if cached is not None:
        result, tally = cached
        if tally is not None:
            telemetry.replay(tally)
        return result
    link = _link_code(field) | _EXACT | (1 << _COUNT_SHIFT)
    with telemetry.widening_scope(telemetry.WideningTally()) as tally:
        normalized = _normalize_packed(path.packed + (link,), limits)
        result = Path._of_packed(tuple(normalized), path.definite)
    if len(_APPEND_CACHE) >= _PREDICATE_CACHE_CAP:  # pragma: no cover - bound
        _APPEND_CACHE.clear()
    if tally.fired:
        _APPEND_CACHE[key] = (result, tally)
        telemetry.replay(tally)
    else:
        _APPEND_CACHE[key] = (result, None)
    return result


def link_path(field: Field, definite: bool = True) -> Path:
    """The one-edge path ``L1`` or ``R1``."""
    return Path((PathSegment(Direction.of_field(field), 1, True),), definite)


#: Memo for :func:`cancel_first` (same traffic shape and tally-replay
#: discipline as ``_APPEND_CACHE``).
_CANCEL_CACHE: Dict[Tuple[Path, Field, AnalysisLimits], Tuple[Tuple[Path, ...], object]] = {}


def cancel_first(
    field: Field, path: Path, limits: AnalysisLimits = DEFAULT_LIMITS
) -> List[Path]:
    """Remove one leading ``field`` edge from ``path``.

    Given ``a := b.f`` and a path ``b →p→ x``, the possible paths ``a → x``
    are exactly the remainders of ``p`` after its first edge, *when that
    first edge can be the ``f`` edge out of ``b``*.  Returns the (possibly
    empty) list of remainder paths; an empty list means ``a`` and ``x``
    cannot be related through ``p``.

    Definiteness: the remainder is definite only when the original path was
    definite *and* the first edge is certainly the ``f`` edge *and* there is
    no length uncertainty about whether the first segment is consumed.
    """
    if path.is_same:
        # b and x are the same node; the child a=b.f has no *downward* path
        # back to x (paths in the matrix are directed down the structure).
        return []
    global _PACKED_OPS
    _PACKED_OPS += 1
    key = (path, field, limits)
    cached = _CANCEL_CACHE.get(key)
    if cached is not None:
        results, tally = cached
        if tally is not None:
            telemetry.replay(tally)
        return list(results)

    first, rest = path.packed[0], path.packed[1:]
    direction = first & _DIR_MASK
    if direction != _DOWN_CODE and direction != _link_code(field):
        _CANCEL_CACHE[key] = ((), None)
        return []
    direction_certain = direction != _DOWN_CODE and direction == _link_code(field)
    base_definite = path.definite and direction_certain
    count = first >> _COUNT_SHIFT

    results: List[Path] = []
    with telemetry.widening_scope(telemetry.WideningTally()) as tally:
        if first & _EXACT:
            if count == 1:
                shortened = rest
            else:
                shortened = (direction | _EXACT | ((count - 1) << _COUNT_SHIFT),) + rest
            results.append(
                Path._of_packed(tuple(_normalize_packed(shortened, limits)), base_definite)
            )
        else:
            if count == 1:
                # "one or more" edges: after removing one, either zero remain
                # (remainder is `rest`, i.e. S if rest is empty) or one-or-more
                # remain.  Each alternative is only possible.
                results.append(
                    Path._of_packed(tuple(_normalize_packed(rest, limits)), False)
                )
                reopened = (direction | (1 << _COUNT_SHIFT),) + rest
                results.append(
                    Path._of_packed(tuple(_normalize_packed(reopened, limits)), False)
                )
            else:
                shortened = (direction | ((count - 1) << _COUNT_SHIFT),) + rest
                results.append(
                    Path._of_packed(
                        tuple(_normalize_packed(shortened, limits)), base_definite
                    )
                )
    if len(_CANCEL_CACHE) >= _PREDICATE_CACHE_CAP:  # pragma: no cover - bound
        _CANCEL_CACHE.clear()
    if tally.fired:
        _CANCEL_CACHE[key] = (tuple(results), tally)
        telemetry.replay(tally)
    else:
        _CANCEL_CACHE[key] = (tuple(results), None)
    return results


def starts_with_field(path: Path, field: Field) -> bool:
    """Could the first edge of ``path`` be the concrete ``field`` edge?

    Used by the destructive-update transfer function (``a.f := b``) to
    decide which existing relationships might be severed by overwriting the
    ``f`` field of ``a``.
    """
    if path.is_same:
        return False
    direction = path.packed[0] & _DIR_MASK
    return direction == _DOWN_CODE or direction == _link_code(field)


def generalize_pair(first: Path, second: Path, limits: AnalysisLimits = DEFAULT_LIMITS) -> Path:
    """Widen two paths into one path describing both (used to collapse sets).

    The result is possible (not definite) unless the two paths are equal,
    and uses open-ended counts / joined directions so that both inputs are
    instances of it.
    """
    if first is second:
        return first
    if first.packed == second.packed:
        return first.with_definite(first.definite and second.definite)
    if not first.packed or not second.packed:
        # S cannot be generalized with a non-empty path into a single path
        # expression; callers keep them separate (e.g. {S?, D+?}).
        raise ValueError("cannot generalize S with a non-S path into one path")

    min_length = min(first.min_length, second.min_length)
    direction = first.packed[0] & _DIR_MASK
    for segment in first.packed[1:] + second.packed:
        if (segment & _DIR_MASK) != direction:
            direction = _DOWN_CODE
            break
    count = max(1, min(min_length, limits.max_open_count))
    return Path._of_packed((direction | (count << _COUNT_SHIFT),), False)


def paths_equivalent(first: Path, second: Path) -> bool:
    """Equality ignoring the definite/possible attribute."""
    return first.packed == second.packed


def _segment_covers(general: PathSegment, specific: PathSegment) -> bool:
    """Does every edge sequence matching ``specific`` also match ``general``?"""
    return _packed_covers(general.packed, specific.packed)


def _packed_covers(general: int, specific: int) -> bool:
    direction = general & _DIR_MASK
    if direction != _DOWN_CODE and direction != (specific & _DIR_MASK):
        return False
    if general & _EXACT:
        return bool(specific & _EXACT) and (specific >> _COUNT_SHIFT) == (
            general >> _COUNT_SHIFT
        )
    # general means "at least general.count edges"; specific must guarantee
    # at least that many edges.
    return (specific >> _COUNT_SHIFT) >= (general >> _COUNT_SHIFT)


def _path_nfa(path: Path) -> Tuple[List[dict], int]:
    """Compile a path expression into a tiny NFA over the alphabet {'L', 'R'}.

    Returns ``(transitions, accepting_state)`` where ``transitions[state]``
    maps each symbol to a list of successor states.  ``D`` edges accept both
    symbols; an open-ended segment adds a self-loop on its last state.
    """
    transitions: List[dict] = [{"L": [], "R": []}]
    current = 0
    for segment in path.segments:
        symbols = (
            ["L", "R"]
            if segment.direction is Direction.DOWN
            else [segment.direction.value]
        )
        for _ in range(segment.count):
            transitions.append({"L": [], "R": []})
            new_state = len(transitions) - 1
            for symbol in symbols:
                transitions[current][symbol].append(new_state)
            current = new_state
        if not segment.exact:
            for symbol in symbols:
                transitions[current][symbol].append(current)
    return transitions, current


#: Memo tables for the two quadratic path predicates.  Keys hold strong
#: references to interned paths (which live forever anyway), so entries can
#: never go stale; the domain is finite, so the tables are bounded.
_INTERSECT_CACHE: Dict[Tuple[Path, Path], bool] = {}
_SUBSUMES_CACHE: Dict[Tuple[Path, Path], bool] = {}
_PREDICATE_CACHE_CAP = 1 << 16


def paths_may_intersect(first: Path, second: Path) -> bool:
    """Could the two path expressions (from a common origin) describe the same path?

    In a TREE a node is reached from a given origin by exactly one edge
    sequence, so two accesses anchored at the same handle can touch the same
    node only if the *languages* of their path expressions intersect.  This
    is decided exactly with a product construction over the two (tiny) NFAs.
    Definiteness is ignored (a possible path still describes a possibility).
    The result is memoized over the interned path pair.
    """
    if first.is_same or second.is_same:
        return first.is_same and second.is_same
    if first is second:
        # A path expression's language is never empty, so it intersects itself.
        return True
    key = (first, second)
    cached = _INTERSECT_CACHE.get(key)
    if cached is not None:
        return cached
    result = _paths_may_intersect(first, second)
    if len(_INTERSECT_CACHE) >= _PREDICATE_CACHE_CAP:  # pragma: no cover - bound
        _INTERSECT_CACHE.clear()
    _INTERSECT_CACHE[key] = result
    _INTERSECT_CACHE[(second, first)] = result
    return result


def _paths_may_intersect(first: Path, second: Path) -> bool:

    first_nfa, first_accept = _path_nfa(first)
    second_nfa, second_accept = _path_nfa(second)

    start = (0, 0)
    seen = {start}
    frontier = [start]
    while frontier:
        state_a, state_b = frontier.pop()
        if state_a == first_accept and state_b == second_accept:
            return True
        for symbol in ("L", "R"):
            for next_a in first_nfa[state_a][symbol]:
                for next_b in second_nfa[state_b][symbol]:
                    pair = (next_a, next_b)
                    if pair not in seen:
                        seen.add(pair)
                        frontier.append(pair)
    # The start state pair is accepting only if both paths are S, handled above.
    return False


def subsumes(general: Path, specific: Path) -> bool:
    """Sound (sufficient) test that ``general`` describes every path ``specific`` does.

    Used to keep path sets small: a path subsumed by a more general member
    of the same set adds no new possibilities.  ``S`` is only subsumed by
    ``S``.  Two sufficient cases are recognised:

    * ``general`` is a single open-ended segment whose direction covers all
      of ``specific``'s directions and whose minimum length is not larger;
    * the two paths have the same number of segments and each of
      ``general``'s segments covers the corresponding one of ``specific``.

    Definiteness is ignored; the result is memoized over the interned pair.
    """
    key = (general, specific)
    cached = _SUBSUMES_CACHE.get(key)
    if cached is not None:
        return cached
    result = _subsumes(general, specific)
    if len(_SUBSUMES_CACHE) >= _PREDICATE_CACHE_CAP:  # pragma: no cover - bound
        _SUBSUMES_CACHE.clear()
    _SUBSUMES_CACHE[key] = result
    return result


def _subsumes(general: Path, specific: Path) -> bool:
    general_packed, specific_packed = general.packed, specific.packed
    if not specific_packed or not general_packed:
        return not specific_packed and not general_packed

    if len(general_packed) == 1 and not (general_packed[0] & _EXACT):
        segment = general_packed[0]
        direction = segment & _DIR_MASK
        if direction != _DOWN_CODE:
            for value in specific_packed:
                if (value & _DIR_MASK) != direction:
                    return False
        return specific.min_length >= (segment >> _COUNT_SHIFT)

    if len(general_packed) == len(specific_packed):
        for general_value, specific_value in zip(general_packed, specific_packed):
            if not _packed_covers(general_value, specific_value):
                return False
        return True
    return False
