"""Path expressions — the atoms of the path-matrix abstract domain.

Section 4 of the paper: the relationship between two handles ``a`` and ``b``
is a set of *paths*.  A path is either ``S`` (the two handles refer to the
same node) or a *path expression*, a non-empty sequence of links:

* ``L^i`` — exactly *i* left edges,   ``L+`` — one or more left edges,
* ``R^i`` — exactly *i* right edges,  ``R+`` — one or more right edges,
* ``D^i`` — exactly *i* down edges (left or right), ``D+`` — one or more.

Each path is *definite* (guaranteed to exist) or *possible* (may exist),
written with a trailing ``?`` in the paper (``S?``, ``D+?``).

This module represents paths in a canonical, finite form
(:class:`PathSegment` sequences bounded by :class:`~repro.analysis.limits.
AnalysisLimits`) and implements the algebra the transfer functions need:

* :func:`concat` — path composition (x→b composed with b→y gives x→y);
* :func:`append_link` — extend a path by one explicit ``left``/``right`` edge
  (used for ``a := b.f``: every path x→b extends to a path x→a);
* :func:`cancel_first` — remove one leading ``left``/``right`` edge from a
  path (used for ``a := b.f``: a path b→x whose first edge *is* the ``f``
  edge leaves a remainder a→x; uncertain first edges yield possible paths);
* :func:`generalize_pair` — the widening used when path sets grow.
"""

from __future__ import annotations

import enum
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sil.ast import Field
from . import telemetry
from .limits import DEFAULT_LIMITS, AnalysisLimits


class Direction(enum.Enum):
    """The direction of a path segment: left, right, or down (either)."""

    LEFT = "L"
    RIGHT = "R"
    DOWN = "D"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @staticmethod
    def of_field(field: Field) -> "Direction":
        if field is Field.LEFT:
            return Direction.LEFT
        if field is Field.RIGHT:
            return Direction.RIGHT
        raise ValueError(f"{field} is not a link field")

    def could_match(self, field: Field) -> bool:
        """Can an edge in this direction be the given concrete link field?"""
        if self is Direction.DOWN:
            return True
        return self is Direction.of_field(field)

    def certainly_matches(self, field: Field) -> bool:
        """Is an edge in this direction *guaranteed* to be the given field?"""
        return self is not Direction.DOWN and self is Direction.of_field(field)

    def join(self, other: "Direction") -> "Direction":
        """The least direction covering both (L join R = D)."""
        if self is other:
            return self
        return Direction.DOWN


class PathSegment:
    """``count`` edges in ``direction``; exactly ``count`` if ``exact`` else at least.

    Instances are *hash-consed*: constructing the same (direction, count,
    exact) triple twice yields the **same** object, so equality is an identity
    check and the hash is precomputed once.  Interned instances are immutable
    and live for the lifetime of the process; the whole abstract domain is
    finite (see :mod:`repro.analysis.limits`), so the table stays small.
    """

    __slots__ = ("direction", "count", "exact", "_hash")

    _intern: Dict[Tuple[Direction, int, bool], "PathSegment"] = {}

    def __new__(cls, direction: Direction, count: int, exact: bool) -> "PathSegment":
        key = (direction, count, exact)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        if count < 1:
            raise ValueError("a path segment must contain at least one edge")
        self = object.__new__(cls)
        object.__setattr__(self, "direction", direction)
        object.__setattr__(self, "count", count)
        object.__setattr__(self, "exact", exact)
        object.__setattr__(self, "_hash", hash(key))
        cls._intern[key] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("PathSegment is immutable (interned)")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("PathSegment is immutable (interned)")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PathSegment):
            return NotImplemented
        # Interning makes distinct instances unequal by construction; this
        # fallback only matters for exotic cases (e.g. unpickled copies from
        # another process image, which __reduce__ re-interns anyway).
        return (
            self.direction is other.direction
            and self.count == other.count
            and self.exact == other.exact
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (PathSegment, (self.direction, self.count, self.exact))

    @property
    def min_length(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PathSegment({self.direction!r}, {self.count!r}, {self.exact!r})"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return format_segment(self)


def format_segment(segment: PathSegment) -> str:
    """``L1``, ``R+``, ``D2+`` (the paper's ``L^1``, ``R+``, superscripts flattened)."""
    base = segment.direction.value
    if segment.exact:
        return f"{base}{segment.count}"
    if segment.count == 1:
        return f"{base}+"
    return f"{base}{segment.count}+"


class Path:
    """A single path: ``S`` (empty segment tuple) or a path expression.

    ``definite`` is True for paths guaranteed to exist, False for paths that
    may exist (displayed with a trailing ``?``).

    Like :class:`PathSegment`, paths are hash-consed: the same (segments,
    definite) pair always yields the same object, equality is identity, and
    the hash is precomputed.  This makes the path sets and matrices built on
    top of them near-pointer structures.
    """

    __slots__ = ("segments", "definite", "_hash")

    _intern: Dict[Tuple[Tuple[PathSegment, ...], bool], "Path"] = {}

    def __new__(
        cls, segments: Iterable[PathSegment] = (), definite: bool = True
    ) -> "Path":
        segments = tuple(segments)
        definite = bool(definite)
        key = (segments, definite)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "segments", segments)
        object.__setattr__(self, "definite", definite)
        object.__setattr__(self, "_hash", hash(key))
        cls._intern[key] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Path is immutable (interned)")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("Path is immutable (interned)")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Path):
            return NotImplemented
        return self.segments == other.segments and self.definite == other.definite

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Path, (self.segments, self.definite))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Path({self.segments!r}, definite={self.definite!r})"

    @property
    def is_same(self) -> bool:
        """True for the ``S`` path ("the two handles name the same node")."""
        return not self.segments

    @property
    def min_length(self) -> int:
        """The minimum number of edges this path can describe."""
        return sum(segment.count for segment in self.segments)

    @property
    def is_exact_length(self) -> bool:
        """True if every segment has an exact count."""
        return all(segment.exact for segment in self.segments)

    def as_definite(self) -> "Path":
        return Path(self.segments, True)

    def as_possible(self) -> "Path":
        return Path(self.segments, False)

    def with_definite(self, definite: bool) -> "Path":
        return Path(self.segments, definite)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return format_path(self)


#: The definite ``S`` path.
SAME = Path((), True)
#: The possible ``S?`` path.
MAYBE_SAME = Path((), False)


def format_path(path: Path) -> str:
    """Render a path in the paper's notation, e.g. ``L1L+``, ``S?``, ``D+?``."""
    if path.is_same:
        text = "S"
    else:
        text = "".join(format_segment(segment) for segment in path.segments)
    return text if path.definite else text + "?"


_SEGMENT_RE = re.compile(r"([LRDS])(\d*)(\+?)")


def parse_path(text: str) -> Path:
    """Parse the notation produced by :func:`format_path` (used in tests).

    Examples: ``"S"``, ``"S?"``, ``"L1"``, ``"R+"``, ``"L1L+L1"``, ``"R1D+?"``,
    ``"D2+"``.  Whitespace and ``.`` separators are ignored.
    """
    cleaned = text.strip().replace(" ", "").replace(".", "")
    definite = True
    if cleaned.endswith("?"):
        definite = False
        cleaned = cleaned[:-1]
    if cleaned == "S":
        return Path((), definite)
    segments: List[PathSegment] = []
    position = 0
    while position < len(cleaned):
        match = _SEGMENT_RE.match(cleaned, position)
        if not match or match.group(1) == "S":
            raise ValueError(f"cannot parse path expression {text!r} at {cleaned[position:]!r}")
        letter, digits, plus = match.groups()
        direction = Direction(letter)
        count = int(digits) if digits else 1
        exact = plus == ""
        if digits == "" and plus == "":
            # A bare letter such as "L" means one exact edge (same as "L1").
            count, exact = 1, True
        segments.append(PathSegment(direction, count, exact))
        position = match.end()
    return make_path(segments, definite)


# ---------------------------------------------------------------------------
# Canonicalization
# ---------------------------------------------------------------------------


def make_path(
    segments: Iterable[PathSegment],
    definite: bool = True,
    limits: AnalysisLimits = DEFAULT_LIMITS,
) -> Path:
    """Build a canonical path from raw segments, applying the domain limits."""
    normalized = _normalize_segments(list(segments), limits)
    return Path(tuple(normalized), definite)


def _normalize_segments(
    segments: List[PathSegment], limits: AnalysisLimits
) -> List[PathSegment]:
    # 1. Merge adjacent segments with the same direction.
    merged: List[PathSegment] = []
    for segment in segments:
        if merged and merged[-1].direction is segment.direction:
            previous = merged[-1]
            merged[-1] = PathSegment(
                direction=segment.direction,
                count=previous.count + segment.count,
                exact=previous.exact and segment.exact,
            )
        else:
            merged.append(segment)

    # 2. Clamp counts.
    clamped: List[PathSegment] = []
    for segment in merged:
        count, exact = segment.count, segment.exact
        if exact and count > limits.max_exact_count:
            count, exact = limits.max_exact_count, False
            telemetry.note_exact_widening()
        if not exact and count > limits.max_open_count:
            count = limits.max_open_count
        clamped.append(PathSegment(segment.direction, count, exact))

    # 3. Bound the number of segments by collapsing the tail into one
    #    open-or-exact DOWN segment (a strictly more general description).
    if len(clamped) > limits.max_segments:
        telemetry.note_segment_collapse()
        keep = limits.max_segments - 1
        head, tail = clamped[:keep], clamped[keep:]
        total = sum(segment.count for segment in tail)
        all_exact = all(segment.exact for segment in tail)
        direction = tail[0].direction
        for segment in tail[1:]:
            direction = direction.join(segment.direction)
        collapsed = PathSegment(direction, min(total, limits.max_open_count), all_exact and total <= limits.max_exact_count)
        clamped = head + [collapsed]
        # Re-merge in case the collapsed segment matches its neighbour.
        clamped = _normalize_segments(clamped, limits)
    return clamped


# ---------------------------------------------------------------------------
# Algebra
# ---------------------------------------------------------------------------


def concat(first: Path, second: Path, limits: AnalysisLimits = DEFAULT_LIMITS) -> Path:
    """Compose a path x→b with a path b→y into a path x→y."""
    definite = first.definite and second.definite
    if first.is_same:
        return second.with_definite(definite)
    if second.is_same:
        return first.with_definite(definite)
    return make_path(first.segments + second.segments, definite, limits)


def append_link(path: Path, field: Field, limits: AnalysisLimits = DEFAULT_LIMITS) -> Path:
    """Extend a path x→b by one explicit edge ``b.field`` giving x→(b.field)."""
    link = PathSegment(Direction.of_field(field), 1, True)
    return make_path(path.segments + (link,), path.definite, limits)


def link_path(field: Field, definite: bool = True) -> Path:
    """The one-edge path ``L1`` or ``R1``."""
    return Path((PathSegment(Direction.of_field(field), 1, True),), definite)


def cancel_first(
    field: Field, path: Path, limits: AnalysisLimits = DEFAULT_LIMITS
) -> List[Path]:
    """Remove one leading ``field`` edge from ``path``.

    Given ``a := b.f`` and a path ``b →p→ x``, the possible paths ``a → x``
    are exactly the remainders of ``p`` after its first edge, *when that
    first edge can be the ``f`` edge out of ``b``*.  Returns the (possibly
    empty) list of remainder paths; an empty list means ``a`` and ``x``
    cannot be related through ``p``.

    Definiteness: the remainder is definite only when the original path was
    definite *and* the first edge is certainly the ``f`` edge *and* there is
    no length uncertainty about whether the first segment is consumed.
    """
    if path.is_same:
        # b and x are the same node; the child a=b.f has no *downward* path
        # back to x (paths in the matrix are directed down the structure).
        return []

    first, rest = path.segments[0], path.segments[1:]
    if not first.direction.could_match(field):
        return []
    direction_certain = first.direction.certainly_matches(field)
    base_definite = path.definite and direction_certain

    results: List[Path] = []
    if first.exact:
        if first.count == 1:
            results.append(make_path(rest, base_definite, limits))
        else:
            shortened = (PathSegment(first.direction, first.count - 1, True),) + rest
            results.append(make_path(shortened, base_definite, limits))
    else:
        if first.count == 1:
            # "one or more" edges: after removing one, either zero remain
            # (remainder is `rest`, i.e. S if rest is empty) or one-or-more
            # remain.  Each alternative is only possible.
            results.append(make_path(rest, False, limits))
            results.append(
                make_path((PathSegment(first.direction, 1, False),) + rest, False, limits)
            )
        else:
            shortened = (PathSegment(first.direction, first.count - 1, False),) + rest
            results.append(make_path(shortened, base_definite, limits))
    return results


def starts_with_field(path: Path, field: Field) -> bool:
    """Could the first edge of ``path`` be the concrete ``field`` edge?

    Used by the destructive-update transfer function (``a.f := b``) to
    decide which existing relationships might be severed by overwriting the
    ``f`` field of ``a``.
    """
    if path.is_same:
        return False
    return path.segments[0].direction.could_match(field)


def generalize_pair(first: Path, second: Path, limits: AnalysisLimits = DEFAULT_LIMITS) -> Path:
    """Widen two paths into one path describing both (used to collapse sets).

    The result is possible (not definite) unless the two paths are equal,
    and uses open-ended counts / joined directions so that both inputs are
    instances of it.
    """
    if first == second:
        return first
    if first.segments == second.segments:
        return Path(first.segments, first.definite and second.definite)
    if first.is_same or second.is_same:
        # S cannot be generalized with a non-empty path into a single path
        # expression; callers keep them separate (e.g. {S?, D+?}).
        raise ValueError("cannot generalize S with a non-S path into one path")

    min_length = min(first.min_length, second.min_length)
    direction = first.segments[0].direction
    for segment in first.segments[1:] + second.segments:
        direction = direction.join(segment.direction)
    count = max(1, min(min_length, limits.max_open_count))
    return Path((PathSegment(direction, count, False),), False)


def paths_equivalent(first: Path, second: Path) -> bool:
    """Equality ignoring the definite/possible attribute."""
    return first.segments == second.segments


def _segment_covers(general: PathSegment, specific: PathSegment) -> bool:
    """Does every edge sequence matching ``specific`` also match ``general``?"""
    if general.direction is not Direction.DOWN and general.direction is not specific.direction:
        return False
    if general.exact:
        return specific.exact and specific.count == general.count
    # general means "at least general.count edges"; specific must guarantee
    # at least that many edges.
    return specific.count >= general.count


def _path_nfa(path: Path) -> Tuple[List[dict], int]:
    """Compile a path expression into a tiny NFA over the alphabet {'L', 'R'}.

    Returns ``(transitions, accepting_state)`` where ``transitions[state]``
    maps each symbol to a list of successor states.  ``D`` edges accept both
    symbols; an open-ended segment adds a self-loop on its last state.
    """
    transitions: List[dict] = [{"L": [], "R": []}]
    current = 0
    for segment in path.segments:
        symbols = (
            ["L", "R"]
            if segment.direction is Direction.DOWN
            else [segment.direction.value]
        )
        for _ in range(segment.count):
            transitions.append({"L": [], "R": []})
            new_state = len(transitions) - 1
            for symbol in symbols:
                transitions[current][symbol].append(new_state)
            current = new_state
        if not segment.exact:
            for symbol in symbols:
                transitions[current][symbol].append(current)
    return transitions, current


#: Memo tables for the two quadratic path predicates.  Keys hold strong
#: references to interned paths (which live forever anyway), so entries can
#: never go stale; the domain is finite, so the tables are bounded.
_INTERSECT_CACHE: Dict[Tuple[Path, Path], bool] = {}
_SUBSUMES_CACHE: Dict[Tuple[Path, Path], bool] = {}
_PREDICATE_CACHE_CAP = 1 << 16


def paths_may_intersect(first: Path, second: Path) -> bool:
    """Could the two path expressions (from a common origin) describe the same path?

    In a TREE a node is reached from a given origin by exactly one edge
    sequence, so two accesses anchored at the same handle can touch the same
    node only if the *languages* of their path expressions intersect.  This
    is decided exactly with a product construction over the two (tiny) NFAs.
    Definiteness is ignored (a possible path still describes a possibility).
    The result is memoized over the interned path pair.
    """
    if first.is_same or second.is_same:
        return first.is_same and second.is_same
    if first is second:
        # A path expression's language is never empty, so it intersects itself.
        return True
    key = (first, second)
    cached = _INTERSECT_CACHE.get(key)
    if cached is not None:
        return cached
    result = _paths_may_intersect(first, second)
    if len(_INTERSECT_CACHE) >= _PREDICATE_CACHE_CAP:  # pragma: no cover - bound
        _INTERSECT_CACHE.clear()
    _INTERSECT_CACHE[key] = result
    _INTERSECT_CACHE[(second, first)] = result
    return result


def _paths_may_intersect(first: Path, second: Path) -> bool:

    first_nfa, first_accept = _path_nfa(first)
    second_nfa, second_accept = _path_nfa(second)

    start = (0, 0)
    seen = {start}
    frontier = [start]
    while frontier:
        state_a, state_b = frontier.pop()
        if state_a == first_accept and state_b == second_accept:
            return True
        for symbol in ("L", "R"):
            for next_a in first_nfa[state_a][symbol]:
                for next_b in second_nfa[state_b][symbol]:
                    pair = (next_a, next_b)
                    if pair not in seen:
                        seen.add(pair)
                        frontier.append(pair)
    # The start state pair is accepting only if both paths are S, handled above.
    return False


def subsumes(general: Path, specific: Path) -> bool:
    """Sound (sufficient) test that ``general`` describes every path ``specific`` does.

    Used to keep path sets small: a path subsumed by a more general member
    of the same set adds no new possibilities.  ``S`` is only subsumed by
    ``S``.  Two sufficient cases are recognised:

    * ``general`` is a single open-ended segment whose direction covers all
      of ``specific``'s directions and whose minimum length is not larger;
    * the two paths have the same number of segments and each of
      ``general``'s segments covers the corresponding one of ``specific``.

    Definiteness is ignored; the result is memoized over the interned pair.
    """
    key = (general, specific)
    cached = _SUBSUMES_CACHE.get(key)
    if cached is not None:
        return cached
    result = _subsumes(general, specific)
    if len(_SUBSUMES_CACHE) >= _PREDICATE_CACHE_CAP:  # pragma: no cover - bound
        _SUBSUMES_CACHE.clear()
    _SUBSUMES_CACHE[key] = result
    return result


def _subsumes(general: Path, specific: Path) -> bool:
    if specific.is_same or general.is_same:
        return specific.is_same and general.is_same

    if len(general.segments) == 1 and not general.segments[0].exact:
        segment = general.segments[0]
        directions_ok = all(
            segment.direction is Direction.DOWN or s.direction is segment.direction
            for s in specific.segments
        )
        return directions_ok and specific.min_length >= segment.count

    if len(general.segments) == len(specific.segments):
        return all(
            _segment_covers(g, s) for g, s in zip(general.segments, specific.segments)
        )
    return False
