"""Handle symbol table: names ↔ small dense integer ids.

The packed matrix layer (:mod:`repro.analysis.matrix`) keys scratch-row
cells by integer handle ids and keeps a per-row presence bitmask
(``1 << id`` per occupied cell), so empty-cell checks, row projections and
rename prefilters are single integer ANDs.  The ids come from this table.

Ids are **process-local** and **process-global**: like the hash-consed
path/pathset/row domain, one table serves every analysis in the process —
interned :class:`~repro.analysis.matrix.MatrixRow` objects are shared
across matrices, contexts and transfer-cache entries, so the masks stored
on them must mean the same thing everywhere.  Handle vocabularies are tiny
(program variables plus the ``h*``/``h**`` symbolic handles), so the table
stays small and the masks stay one or two machine words.  Nothing
serialized ever contains an id: pickling, the canonical encodings and the
cache codec all speak handle *names*, so ids never cross a process
boundary (``PYTHONHASHSEED``-independence and shard bit-identity are
untouched by id assignment order).

:class:`~repro.analysis.context.AnalysisContext` exposes the table as its
``symbols`` field (defaulting to the global table) so analysis layers can
reach it without importing this module directly.
"""

from __future__ import annotations

from typing import Dict, List


class SymbolTable:
    """An append-only bidirectional mapping ``name <-> dense int id``."""

    __slots__ = ("_ids", "_names")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, name: str) -> bool:
        return name in self._ids

    def id_of(self, name: str) -> int:
        """The id for ``name``, assigning the next dense id on first sight."""
        table = self._ids
        symbol_id = table.get(name)
        if symbol_id is None:
            symbol_id = len(table)
            table[name] = symbol_id
            self._names.append(name)
        return symbol_id

    def name_of(self, symbol_id: int) -> str:
        """The name behind an id (ids are dense, so this is a list index)."""
        return self._names[symbol_id]


#: The process-wide table used by the matrix layer (see module docstring).
GLOBAL_SYMBOLS = SymbolTable()
