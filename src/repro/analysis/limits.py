"""Finiteness limits for the path-expression abstract domain.

Path expressions are sequences of links with exact or open-ended ("one or
more") repetition counts.  To guarantee that the iterative approximation of
``while`` loops and recursive procedures terminates, the domain must be
finite: :class:`AnalysisLimits` bounds the exact repetition count kept per
segment, the number of segments per path, and the number of distinct paths
kept per path-matrix entry.  Exceeding a bound *widens* (never narrows) the
description — an exact count becomes open-ended, a long path collapses into
a ``D``-segment, an oversized path set collapses towards ``{S?, D+?}`` — so
the approximation stays conservative.  Every widening event is counted via
:mod:`repro.analysis.telemetry`, so a run can tell whether its bounds bit.

:class:`AdaptiveLimits` (built with :meth:`AnalysisLimits.adaptive`) turns
the frozen bounds into an escalation *ladder*: a procedure whose analysis
triggered widening is re-run with stepped-up bounds, up to ``max_steps``
times, and the final rung actually used is recorded on the result.

The defaults comfortably cover every example in the paper; the ablation
bench (EXT-D in DESIGN.md) sweeps them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Union


@dataclass(frozen=True)
class AnalysisLimits:
    """Bounds that keep the path-expression domain finite."""

    #: Largest exact repetition count kept (e.g. ``L^8``); beyond this the
    #: segment is widened to an open-ended count (``L^8+`` -> ``L8+``).
    max_exact_count: int = 8

    #: Largest *minimum* count kept for open-ended segments.
    max_open_count: int = 8

    #: Maximum number of segments per path expression; longer paths collapse
    #: their tail into a single ``D`` segment.
    max_segments: int = 4

    #: Maximum number of distinct paths kept per path-matrix entry before the
    #: entry is collapsed.
    max_paths_per_entry: int = 8

    #: Maximum number of fixed-point iterations for loops / recursion before
    #: forcing a collapse (a safety net; the finite domain already terminates).
    max_iterations: int = 64

    #: Capacity of the memoized-transfer LRU cache (entries, not bytes).  Used
    #: when an :class:`~repro.analysis.context.AnalysisContext` builds its own
    #: private cache (e.g. for a batch run); the process-wide default cache
    #: uses :data:`DEFAULT_TRANSFER_CACHE_SIZE`.
    transfer_cache_size: int = 4096

    def __hash__(self) -> int:
        # Limits appear in every memoized-transfer key; the generated
        # dataclass hash re-hashes all six fields per lookup.  Cache it —
        # instances are frozen, so the value can never go stale.  (Pure
        # ints, so the cached value is PYTHONHASHSEED-independent, like
        # the generated hash it replaces.)
        cached = self.__dict__.get("_cached_hash")
        if cached is None:
            cached = hash(
                (
                    self.max_exact_count,
                    self.max_open_count,
                    self.max_segments,
                    self.max_paths_per_entry,
                    self.max_iterations,
                    self.transfer_cache_size,
                )
            )
            object.__setattr__(self, "_cached_hash", cached)
        return cached

    def as_dict(self) -> Dict[str, int]:
        """The domain bounds as a plain JSON-able dict (telemetry artifacts)."""
        return {
            "max_exact_count": self.max_exact_count,
            "max_open_count": self.max_open_count,
            "max_segments": self.max_segments,
            "max_paths_per_entry": self.max_paths_per_entry,
            "max_iterations": self.max_iterations,
        }

    def stepped_up(self, growth: int) -> "AnalysisLimits":
        """One escalation rung: every analysis bound multiplied by ``growth``.

        ``max_iterations`` steps up with the domain bounds — a safety-net
        trip is one of the escalation triggers, and re-running with the
        same iteration budget could never clear it.  Only the cache size
        stays fixed: it is a memory knob, not a precision knob.
        """
        growth = max(2, int(growth))
        return replace(
            self,
            max_exact_count=self.max_exact_count * growth,
            max_open_count=self.max_open_count * growth,
            max_segments=self.max_segments * growth,
            max_paths_per_entry=self.max_paths_per_entry * growth,
            max_iterations=self.max_iterations * growth,
        )

    @classmethod
    def adaptive(
        cls,
        base: "AnalysisLimits" = None,
        growth: int = 2,
        max_steps: int = 2,
    ) -> "AdaptiveLimits":
        """An escalation policy starting from ``base`` (default: the defaults).

        ``AnalysisLimits.adaptive()`` gives the standard policy;
        ``AnalysisLimits.adaptive(tight, growth=3)`` starts the ladder at
        a custom base rung.
        """
        return AdaptiveLimits(
            base=base if base is not None else cls(), growth=growth, max_steps=max_steps
        )


@dataclass(frozen=True)
class AdaptiveLimits:
    """An escalation ladder over :class:`AnalysisLimits`.

    The analysis first runs at ``base``.  If any widening fired (segment
    collapse, exact→open widening, path-set collapse, or a
    ``max_iterations`` safety-net trip), it re-runs with every bound
    multiplied by ``growth`` — up to ``max_steps`` escalations, and only
    while each rung strictly *reduces* the widening events (a rung that
    widens as much as the previous one proves the widening is the domain's
    intended convergence mechanism, not a capacity problem, and ends the
    climb).  The limits of the rung that produced the final result are
    recorded on the :class:`~repro.analysis.engine.AnalysisResult`
    (``result.limits``), and every escalation increments
    ``AnalysisStats.adaptive_escalations``.

    Instances are frozen dataclasses and therefore picklable — the sharded
    suite runner ships them to worker processes like plain limits.
    """

    base: AnalysisLimits = AnalysisLimits()
    #: Multiplier applied to every domain bound per escalation step.
    growth: int = 2
    #: Maximum number of escalations (the ladder has ``max_steps + 1`` rungs).
    max_steps: int = 2

    def ladder(self) -> List[AnalysisLimits]:
        """Every rung in order, starting at ``base``."""
        rungs = [self.base]
        for _ in range(max(0, self.max_steps)):
            rungs.append(rungs[-1].stepped_up(self.growth))
        return rungs


#: Either a fixed set of bounds or an escalation policy over them.
LimitsLike = Union[AnalysisLimits, AdaptiveLimits]


def base_limits(limits: LimitsLike) -> AnalysisLimits:
    """The fixed bounds a (possibly adaptive) limits value starts from."""
    return limits.base if isinstance(limits, AdaptiveLimits) else limits


#: Default limits used when none are supplied.
DEFAULT_LIMITS = AnalysisLimits()

#: Capacity of the process-wide shared transfer cache.
DEFAULT_TRANSFER_CACHE_SIZE = 4096
