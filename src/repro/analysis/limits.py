"""Finiteness limits for the path-expression abstract domain.

Path expressions are sequences of links with exact or open-ended ("one or
more") repetition counts.  To guarantee that the iterative approximation of
``while`` loops and recursive procedures terminates, the domain must be
finite: :class:`AnalysisLimits` bounds the exact repetition count kept per
segment, the number of segments per path, and the number of distinct paths
kept per path-matrix entry.  Exceeding a bound *widens* (never narrows) the
description — an exact count becomes open-ended, a long path collapses into
a ``D``-segment, an oversized path set collapses towards ``{S?, D+?}`` — so
the approximation stays conservative.

The defaults comfortably cover every example in the paper; the ablation
bench (EXT-D in DESIGN.md) sweeps them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AnalysisLimits:
    """Bounds that keep the path-expression domain finite."""

    #: Largest exact repetition count kept (e.g. ``L^8``); beyond this the
    #: segment is widened to an open-ended count (``L^8+`` -> ``L8+``).
    max_exact_count: int = 8

    #: Largest *minimum* count kept for open-ended segments.
    max_open_count: int = 8

    #: Maximum number of segments per path expression; longer paths collapse
    #: their tail into a single ``D`` segment.
    max_segments: int = 4

    #: Maximum number of distinct paths kept per path-matrix entry before the
    #: entry is collapsed.
    max_paths_per_entry: int = 8

    #: Maximum number of fixed-point iterations for loops / recursion before
    #: forcing a collapse (a safety net; the finite domain already terminates).
    max_iterations: int = 64

    #: Capacity of the memoized-transfer LRU cache (entries, not bytes).  Used
    #: when an :class:`~repro.analysis.context.AnalysisContext` builds its own
    #: private cache (e.g. for a batch run); the process-wide default cache
    #: uses :data:`DEFAULT_TRANSFER_CACHE_SIZE`.
    transfer_cache_size: int = 4096


#: Default limits used when none are supplied.
DEFAULT_LIMITS = AnalysisLimits()

#: Capacity of the process-wide shared transfer cache.
DEFAULT_TRANSFER_CACHE_SIZE = 4096
