"""Transfer functions: the effect of one basic handle statement on a path matrix.

This is the heart of Section 4 of the paper.  For every basic handle
statement an analysis function maps the path matrix ``p`` holding *before*
the statement to the matrix ``p'`` holding *after* it:

==============================  ==============================================
statement                        effect on the path matrix
==============================  ==============================================
``a := nil``, ``a := new()``     ``a`` becomes unrelated to every other handle
``a := b``                       ``a`` takes ``b``'s relationships; ``p'[a,b] = p'[b,a] = {S}``
``a := b.f``                     paths *to* ``a``: every ``x→b`` path extended by the
                                 ``f`` edge; paths *from* ``a``: every ``b→x`` path with
                                 its leading ``f`` edge cancelled (possible paths arise
                                 from direction/length uncertainty — Figure 2(c))
``a.f := b``                     structure check (cycle / sharing); existing paths that
                                 may traverse the old ``a.f`` edge are demoted to
                                 possible; new composite paths ``x→a · f · b→y`` added
``a.f := nil``                   only the demotion step
``x := a.value``, ``a.value:=e`` no effect on the matrix
==============================  ==============================================

All functions are pure: they return a fresh matrix (plus structure
diagnostics for updates) and never modify their argument.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..faults import fault_fire
from ..obs.trace import span
from ..sil import ast
from ..sil.printer import _format_inline as format_statement_inline
from .limits import DEFAULT_LIMITS, DEFAULT_TRANSFER_CACHE_SIZE, AnalysisLimits
from .matrix import PathMatrix, row_delta
from .paths import Path, append_link, cancel_first, concat, starts_with_field
from .pathset import PathSet
from .structure import StructureDiagnostic, cycle_diagnostic, sharing_diagnostic
from .telemetry import WideningTally, widening_scope

# Imported after the sibling analysis modules above: repro.cache's package
# init pulls in the codec, which reads those modules back.
from ..cache.policy import PolicyCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.backend import CacheBackend


logger = logging.getLogger("repro.analysis.transfer")

#: Consecutive backend errors tolerated before the circuit breaker trips
#: and the cache drops to memory-only mode for the rest of the run.
DEFAULT_BREAKER_THRESHOLD = 3


@dataclass
class TransferResult:
    """The matrix after a statement plus any structure diagnostics raised."""

    matrix: PathMatrix
    diagnostics: List[StructureDiagnostic] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Individual statement kinds
# ---------------------------------------------------------------------------


def apply_assign_nil(matrix: PathMatrix, target: str) -> PathMatrix:
    """``a := nil`` — ``a`` holds no node, so it is unrelated to everything."""
    result = matrix.copy()
    result.remove_handle(target)
    result.add_handle(target)
    return result


def apply_assign_new(matrix: PathMatrix, target: str) -> PathMatrix:
    """``a := new()`` — a freshly allocated node shares nothing with the rest."""
    result = matrix.copy()
    result.remove_handle(target)
    result.add_handle(target)
    return result


def apply_copy(matrix: PathMatrix, target: str, source: str) -> PathMatrix:
    """``a := b`` — ``a`` names the same node as ``b``."""
    if target == source:
        return matrix.copy()
    result = matrix.copy()
    result.add_handle(source)
    result.remove_handle(target)
    result.add_handle(target)
    for other in result.handles:
        if other in (target, source):
            continue
        to_source = result.get(other, source)
        if not to_source.is_empty:
            result.set(other, target, to_source)
        from_source = result.get(source, other)
        if not from_source.is_empty:
            result.set(target, other, from_source)
    result.set(target, source, PathSet.same())
    result.set(source, target, PathSet.same())
    return result


def apply_load_field(
    matrix: PathMatrix,
    target: str,
    source: str,
    field_name: ast.Field,
    limits: AnalysisLimits = DEFAULT_LIMITS,
) -> PathMatrix:
    """``a := b.f`` — the Figure 2 transfer function.

    * For every handle ``x`` (including ``b`` itself): each path ``x→b``
      extends by one ``f`` edge into a path ``x→a``.
    * For every handle ``x``: each path ``b→x`` whose leading edge may be the
      ``f`` edge leaves a remainder path ``a→x`` (definite only when the
      leading edge certainly is the ``f`` edge and no length uncertainty is
      introduced).

    The old binding of ``a`` is discarded; ``a := a.f`` is handled correctly
    by computing the new relationships against the *old* matrix first,
    setting them aside, and only writing them once the old binding is gone
    — the old target's own relations die with the rebinding, so they are
    never computed at all.
    """
    work = matrix.copy()
    work.add_handle(source)

    # Paths into the new node (x -> a) and out of it (a -> x), computed
    # from the pre-statement relations of ``source``.
    into: List[Tuple[str, PathSet]] = []
    out_of: List[Tuple[str, PathSet, Optional[bool]]] = []
    for other in work.handles:
        if other == target:
            continue
        base = PathSet.same() if other == source else work.get(other, source)
        if not base.is_empty:
            into.append(
                (other, PathSet(append_link(path, field_name, limits) for path in base))
            )
        if other == source:
            continue
        base = work.get(source, other)
        if base.is_empty:
            continue
        remainders = base.map(lambda path: cancel_first(field_name, path, limits))
        if not remainders.is_empty:
            # Aliasing is symmetric: if cancelling the edge shows that the
            # loaded node may be the very node `other` names (an S path),
            # the S relationship is recorded in the other direction too.
            out_of.append((other, remainders, remainders.definiteness_of_same()))

    work.remove_handle(target)
    work.add_handle(target)
    for other, extended in into:
        work.set(other, target, extended)
    for other, remainders, same_definiteness in out_of:
        work.set(target, other, remainders)
        if same_definiteness is not None:
            work.add_paths(other, target, PathSet.same(definite=same_definiteness))
    return work


def apply_store_field(
    matrix: PathMatrix,
    target: str,
    field_name: ast.Field,
    source: Optional[str],
    statement_text: str = "",
    limits: AnalysisLimits = DEFAULT_LIMITS,
) -> TransferResult:
    """``a.f := b`` / ``a.f := nil`` — destructive update of a link field."""
    result = matrix.copy()
    result.add_handle(target)
    if source is not None:
        result.add_handle(source)
    diagnostics: List[StructureDiagnostic] = []

    # ---- structure verification (performed against the *pre* matrix) -----
    if source is not None:
        down = matrix.get(source, target)
        if source == target:
            diagnostics.append(
                cycle_diagnostic(
                    statement_text,
                    f"{target}.{field_name.value} := {source} makes the node its own descendant",
                    definite=True,
                )
            )
        elif not down.is_empty:
            definite = any(path.definite for path in down)
            diagnostics.append(
                cycle_diagnostic(
                    statement_text,
                    f"{source} may be an ancestor of {target} "
                    f"(p[{source},{target}] = {{{down.format()}}}); linking it below "
                    f"{target} creates a cycle",
                    definite=definite,
                )
            )
        parents = [
            other
            for other in matrix.iter_handles()
            if other != source and matrix.get(other, source).has_proper_path
        ]
        if parents:
            definite = any(
                any(path.definite for path in matrix.get(other, source) if not path.is_same)
                for other in parents
            )
            diagnostics.append(
                sharing_diagnostic(
                    statement_text,
                    f"{source} is already reachable from {{{', '.join(sorted(parents))}}}; "
                    f"the structure may become a DAG",
                    definite=definite,
                )
            )

    # ---- demote relationships that may have used the old a.f edge --------
    f_targets = [
        other
        for other in matrix.iter_handles()
        if other != target
        and any(starts_with_field(path, field_name) for path in matrix.get(target, other))
    ]
    above = [
        other
        for other in matrix.iter_handles()
        if other == target or not matrix.get(other, target).is_empty
    ]
    for upper in above:
        for lower in f_targets:
            if upper == lower:
                continue
            entry = result.get(upper, lower)
            if not entry.is_empty:
                result.set(upper, lower, entry.weakened())

    # ---- add the composite paths through the new edge --------------------
    if source is not None:
        link = ast.Field.LEFT if field_name is ast.Field.LEFT else ast.Field.RIGHT
        for upper in matrix.handles + [target]:
            into_target = PathSet.same() if upper == target else matrix.get(upper, target)
            if into_target.is_empty:
                continue
            for lower in matrix.handles + [source]:
                if upper == lower:
                    continue
                out_of_source = PathSet.same() if lower == source else matrix.get(source, lower)
                if out_of_source.is_empty:
                    continue
                new_paths = PathSet(
                    concat(append_link(up, link, limits), down, limits)
                    for up in into_target
                    for down in out_of_source
                )
                result.add_paths(upper, lower, new_paths)

    return TransferResult(matrix=result, diagnostics=diagnostics)


# ---------------------------------------------------------------------------
# Statement dispatcher
# ---------------------------------------------------------------------------


def _dispatch_assign_nil(matrix, stmt, limits):
    return TransferResult(apply_assign_nil(matrix, stmt.target))


def _dispatch_assign_new(matrix, stmt, limits):
    return TransferResult(apply_assign_new(matrix, stmt.target))


def _dispatch_copy(matrix, stmt, limits):
    return TransferResult(apply_copy(matrix, stmt.target, stmt.source))


def _dispatch_load_field(matrix, stmt, limits):
    return TransferResult(
        apply_load_field(matrix, stmt.target, stmt.source, stmt.field_name, limits)
    )


def _dispatch_store_field(matrix, stmt, limits):
    return apply_store_field(
        matrix,
        stmt.target,
        stmt.field_name,
        stmt.source,
        statement_text=format_statement_inline(stmt),
        limits=limits,
    )


def _dispatch_no_effect(matrix, stmt, limits):
    return TransferResult(matrix.copy())


#: Transfer-function dispatch keyed by exact statement type (the AST node
#: classes are final dataclasses) — one dict probe instead of an
#: isinstance chain per application.
_BASIC_DISPATCH = {
    ast.AssignNil: _dispatch_assign_nil,
    ast.AssignNew: _dispatch_assign_new,
    ast.CopyHandle: _dispatch_copy,
    ast.LoadField: _dispatch_load_field,
    ast.StoreField: _dispatch_store_field,
    ast.LoadValue: _dispatch_no_effect,
    ast.StoreValue: _dispatch_no_effect,
    ast.ScalarAssign: _dispatch_no_effect,
}


def apply_basic_statement(
    matrix: PathMatrix,
    stmt: ast.BasicStmt,
    limits: AnalysisLimits = DEFAULT_LIMITS,
) -> TransferResult:
    """Apply the transfer function for any basic statement.

    Value/scalar statements (``x := a.value``, ``a.value := e``,
    ``x := e``) do not change the path matrix.
    """
    handler = _BASIC_DISPATCH.get(type(stmt))
    if handler is not None:
        return handler(matrix, stmt, limits)
    # Subclasses of the node types fall back to the isinstance chain.
    for kind, fallback in _BASIC_DISPATCH.items():
        if isinstance(stmt, kind):
            return fallback(matrix, stmt, limits)
    raise TypeError(f"not a basic statement: {type(stmt).__name__}")


# ---------------------------------------------------------------------------
# Memoized transfer application
# ---------------------------------------------------------------------------


class TransferCache:
    """A size-bounded, policy-governed memo of transfer results.

    **In-memory layer.**  Keys combine ``id(stmt)`` with the input matrix's
    exact :meth:`~repro.analysis.matrix.PathMatrix.fingerprint` (which
    includes the :class:`AnalysisLimits`), so a hit is only possible for
    the same statement applied to an identical matrix under identical
    limits — the cached result is therefore exactly what recomputation
    would produce.  The eviction policy (``lru`` / ``lfu`` / ``fifo``, see
    :mod:`repro.cache.policy`) is selectable; evictions are counted and
    surfaced through :class:`~repro.analysis.context.AnalysisStats`.

    Each entry also stores the :class:`~repro.analysis.telemetry.
    WideningTally` captured while the transfer was computed, so a hit can
    *replay* the widening counts into the caller's stats — the counters
    then read exactly as if every application had been computed, which is
    what makes them additive across shard processes.

    Each cache value keeps a strong reference to the statement object, so an
    ``id`` can never be recycled while any entry for it is alive (entries
    and their pins are dropped together on eviction).

    **Persistent tier.**  With a ``backend`` attached (see
    :mod:`repro.cache.backend`), in-memory misses read through to the
    content-addressed store under canonical, process-independent keys
    (:func:`repro.cache.codec.transfer_key`); a persistent hit is decoded,
    sealed and promoted into the in-memory layer.  Computed results are
    buffered as encoded deltas and written back in one batch by
    :meth:`flush` — call it when a run or shard completes.

    **Degradation.**  A persistent backend may rot or fail without taking
    the analysis down: payloads that no longer decode are *quarantined*
    (discarded from the store, counted, treated as misses and recomputed),
    backend I/O errors (the :data:`repro.cache.backend.BACKEND_ERRORS`
    surface) are tolerated per-operation, and once ``breaker_threshold``
    of them accumulate the circuit breaker closes and drops the backend —
    ``degraded`` pins true and the cache runs memory-only from then on.
    Faults cost recomputation, never results.
    """

    __slots__ = (
        "policy",
        "backend",
        "_entries",
        "_joins",
        "_pending",
        "_pending_labels",
        "quarantined",
        "backend_errors",
        "degraded",
        "breaker_threshold",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_TRANSFER_CACHE_SIZE,
        policy: str = "lru",
        backend: Optional["CacheBackend"] = None,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
    ):
        self._entries = PolicyCache(capacity, policy)
        #: Second memo space for the *derived* pure operations over interned
        #: matrices — control-flow joins and call-site projections/effects —
        #: which are keyed by matrix identity and are in-memory only (they
        #: recompute cheaply from persistent transfer hits, so they are not
        #: worth codec space).
        self._joins = PolicyCache(capacity, policy)
        self.policy = policy
        self.backend = backend
        #: Encoded (key -> payload) deltas computed since the last flush.
        self._pending: Dict[str, str] = {}
        #: Statement label of each pending key (see :func:`repro.sil.delta.
        #: statement_label`) — flushed alongside the payloads so persistent
        #: backends can invalidate by edited statement.
        self._pending_labels: Dict[str, str] = {}
        #: Corrupt payloads quarantined (discarded + treated as misses).
        self.quarantined = 0
        #: Backend I/O errors tolerated so far (get/write/discard).
        self.backend_errors = 0
        #: ``True`` once the circuit breaker dropped the backend; the cache
        #: then runs memory-only for the rest of its life.
        self.degraded = False
        self.breaker_threshold = max(1, int(breaker_threshold))

    @property
    def capacity(self) -> int:
        return self._entries.capacity

    @property
    def evictions(self) -> int:
        """In-memory entries evicted over this cache's lifetime."""
        return self._entries.evictions

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple) -> Optional[Tuple[TransferResult, "WideningTally"]]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        return entry[1], entry[2]

    def put(
        self,
        key: Tuple,
        stmt: ast.BasicStmt,
        result: TransferResult,
        widening: Optional["WideningTally"] = None,
    ) -> int:
        """Admit an entry; returns the number of in-memory evictions."""
        return self._entries.put(
            key, (stmt, result, widening if widening is not None else WideningTally())
        )

    def get_join(self, key: Tuple):
        """Look up a memoized join/projection entry (see :data:`_joins`)."""
        return self._joins.get(key)

    def put_join(self, key: Tuple, value: Tuple) -> None:
        self._joins.put(key, value)

    # ------------------------------------------------------------------
    # Persistent tier
    # ------------------------------------------------------------------

    def _note_backend_error(self, operation: str, error: BaseException) -> None:
        """Count a tolerated backend failure; trip the breaker past threshold.

        Tripping closes and drops the backend — every later persistent
        lookup/flush short-circuits on ``backend is None`` — so one bad
        store costs at most ``breaker_threshold`` failed calls, after which
        the run proceeds memory-only.
        """
        self.backend_errors += 1
        logger.warning(
            "persistent cache %s failed (%s: %s) [error %d/%d before breaker]",
            operation,
            type(error).__name__,
            error,
            self.backend_errors,
            self.breaker_threshold,
        )
        if self.backend_errors >= self.breaker_threshold and self.backend is not None:
            logger.warning(
                "persistent-cache circuit breaker tripped after %d backend errors; "
                "dropping to memory-only mode for the rest of this run",
                self.backend_errors,
            )
            self.degraded = True
            try:
                self.backend.close()
            except Exception:  # noqa: BLE001 - the backend is already failing
                logger.debug("backend close failed while degrading", exc_info=True)
            self.backend = None

    def load_persistent(
        self, persistent_key: str, matrix_limits: AnalysisLimits
    ) -> Optional[Tuple[TransferResult, "WideningTally"]]:
        """Read-through lookup of a canonical key; ``None`` without a backend.

        Unflushed deltas computed earlier in this run are consulted first —
        an entry evicted from the memory layer mid-run is recovered without
        touching the store.  A stored payload that fails to decode is
        discarded from the backend (reclassifying the lookup as a miss) and
        treated as a miss here, so the recomputed result re-admits the key
        at the next flush instead of the corrupt row surviving forever.
        """
        if self.backend is None:
            return None
        from ..cache.backend import BACKEND_ERRORS
        from ..cache.codec import CacheDecodeError, decode_entry

        pending_payload = self._pending.get(persistent_key)
        if pending_payload is not None:
            payload = pending_payload
        else:
            try:
                payload = self.backend.get(persistent_key)
            except BACKEND_ERRORS as error:
                self._note_backend_error("get", error)
                return None
        if payload is None:
            return None
        rule = fault_fire("cache.payload", persistent_key)
        if rule is not None and rule.kind == "corrupt" and pending_payload is None:
            # Chaos harness: mangle the stored payload so the codec rejects
            # it, driving the same quarantine path a bit-rotted row would.
            payload = "\x00corrupt\x00" + payload
        try:
            # Shield the decode behind a throwaway tally: reconstructing a
            # result must never advance the caller's widening telemetry —
            # only the *stored* tally is replayed, exactly once.
            with widening_scope(WideningTally()):
                return decode_entry(payload, matrix_limits)
        except CacheDecodeError:
            self.quarantined += 1
            if pending_payload is None:
                logger.warning(
                    "quarantined corrupt cache entry %s (discarded; treated as a miss)",
                    persistent_key,
                )
                try:
                    self.backend.discard(persistent_key)
                except BACKEND_ERRORS as error:
                    self._note_backend_error("discard", error)
            else:  # pragma: no cover - pending entries are self-encoded
                del self._pending[persistent_key]
            return None

    def record_persistent(
        self,
        persistent_key: str,
        result: TransferResult,
        widening: "WideningTally",
        stmt: Optional[ast.BasicStmt] = None,
    ) -> None:
        """Buffer a computed transfer for the next :meth:`flush`."""
        if self.backend is None or persistent_key in self._pending:
            return
        from ..cache.codec import encode_entry

        self._pending[persistent_key] = encode_entry(result, widening)
        if stmt is not None:
            from ..sil.delta import statement_label

            self._pending_labels[persistent_key] = statement_label(stmt)

    def flush(self, stats=None) -> Tuple[int, int]:
        """Write buffered deltas (and read touches) to the backend.

        Returns ``(written, evicted)`` and, when ``stats`` is given, folds
        them into ``persistent_cache_writes`` / ``persistent_cache_evictions``.

        A backend error here is tolerated like any other: counted toward
        the breaker, and the pending deltas are *kept* for the next flush —
        unless the breaker trips, in which case they are dropped along with
        the backend (nothing will ever accept them).
        """
        with span("cache.flush", {"pending": len(self._pending)}):
            if self.backend is None:
                if self.degraded:
                    self._pending.clear()
                    self._pending_labels.clear()
                return 0, 0
            from ..cache.backend import BACKEND_ERRORS

            try:
                written, evicted = self.backend.write(
                    self._pending, labels=self._pending_labels
                )
            except BACKEND_ERRORS as error:
                self._note_backend_error("write", error)
                if self.backend is None:
                    self._pending.clear()
                    self._pending_labels.clear()
                return 0, 0
        self._pending.clear()
        self._pending_labels.clear()
        if stats is not None:
            _bump(stats, "persistent_cache_writes", written)
            _bump(stats, "persistent_cache_evictions", evicted)
        return written, evicted

    def clear(self) -> None:
        """Drop the in-memory layer and unflushed deltas (not the store)."""
        self._entries.clear()
        self._joins.clear()
        self._pending.clear()
        self._pending_labels.clear()

    # ------------------------------------------------------------------
    # Targeted invalidation
    # ------------------------------------------------------------------

    def invalidate_statements(self, labels) -> int:
        """Drop every cached transfer of the given statement labels.

        ``labels`` is a set of :func:`repro.sil.delta.statement_label`
        strings — the statements an edit removed or rewrote.  All three
        tiers are swept: the in-memory transfer entries (whose values pin
        their statement objects, so the label is recomputed exactly), the
        memoized call projections, the unflushed pending deltas, and the
        persistent backend (statement labels are stored with each row).
        Everything else is kept — this is the delete-by-key-set contract
        incremental re-analysis relies on, replacing all-or-nothing
        ``clear()``.  Returns the total number of entries dropped.
        """
        doomed = set(labels)
        if not doomed:
            return 0
        from ..sil.delta import statement_label

        dropped = 0
        stale_keys = [
            key
            for key, value in self._entries.items()
            if statement_label(value[0]) in doomed
        ]
        for key in stale_keys:
            self._entries.remove(key)
        dropped += len(stale_keys)

        stale_joins = [
            key
            for key, value in self._joins.items()
            if key[0] == "call" and statement_label(value[0]) in doomed
        ]
        for key in stale_joins:
            self._joins.remove(key)
        dropped += len(stale_joins)

        stale_pending = [
            key
            for key, label in self._pending_labels.items()
            if label in doomed
        ]
        for key in stale_pending:
            self._pending.pop(key, None)
            del self._pending_labels[key]
        dropped += len(stale_pending)

        if self.backend is not None:
            dropped += self.backend.invalidate(doomed)
        return dropped


#: Process-wide default cache shared by every analysis that does not supply
#: its own (so repeated analyses of the same program — benchmark reruns,
#: oracle re-preparation — hit across calls).  No persistent backend: the
#: cross-run tier is opt-in per batch (see ``BatchAnalyzer``).
GLOBAL_TRANSFER_CACHE = TransferCache()


def _bump(stats, name: str, amount: int = 1) -> None:
    """Add to a stats counter if the (possibly minimal) object carries it."""
    current = getattr(stats, name, None)
    if current is not None:
        setattr(stats, name, current + amount)


def apply_basic_statement_cached(
    matrix: PathMatrix,
    stmt: ast.BasicStmt,
    limits: AnalysisLimits = DEFAULT_LIMITS,
    cache: Optional[TransferCache] = None,
    stats=None,
    epoch: int = 0,
) -> TransferResult:
    """Memoizing wrapper around :func:`apply_basic_statement`.

    ``stats`` may be an :class:`~repro.analysis.context.AnalysisStats` (or
    any object with ``transfer_cache_hits``/``transfer_cache_misses`` and
    the widening counters); pass ``None`` to skip counting.

    ``epoch`` scopes the ``id(stmt)`` component of the in-memory key: two
    :class:`~repro.analysis.engine.BatchAnalyzer` instances sharing one
    :class:`TransferCache` pass distinct epochs, so a statement id CPython
    recycles after one batch's program dies can never alias a live entry
    recorded by the other (the persistent tier is content-addressed and
    needs no such scoping).  Bare callers share epoch 0.

    The in-memory cache key is ``(epoch, id(stmt), limits,
    input-fingerprint)``.  The
    fingerprint is an exact content snapshot built from the input's
    interned *rows* (so hashing uses precomputed per-row hashes), which
    makes the lookup just as precise as keying on a hash-consed matrix —
    but **without** paying a whole-matrix intern on the cold path, where
    the input is a scratch copy that will never be seen again.  Each such
    avoided intern is counted as a ``lazy_intern_deferral``.  Computed
    result matrices are *sealed*, not interned (counted as
    ``scratch_matrices_elided``): sealing keeps them safely shareable
    through the cache, while the hash-cons into the global matrix table is
    deferred to the escape points that actually need identity semantics —
    entry-matrix convergence, cache codec keys, ``canonical_form()`` and
    shard boundaries — all of which still call
    :meth:`~repro.analysis.matrix.PathMatrix.interned` themselves.

    Widening accounting: the events of a computed transfer are captured in
    a :class:`~repro.analysis.telemetry.WideningTally` (shadowing any
    enclosing run-level scope) and folded into ``stats`` exactly once —
    on a miss from the fresh capture, on a hit by replaying the tally
    stored with the entry.  Either way the counters read as if the
    transfer had been computed, so they are deterministic per application
    and exactly additive across processes.

    Row accounting: every application — hit or miss — adds the number of
    rows the statement actually changed to ``delta_rows_propagated`` and
    the full result dimension to ``full_rows_propagated``.  Because rows
    are interned, the changed-row count is a pointer scan, and it is what
    a row-incremental engine must write no matter how the result was
    obtained; the ``full`` column is what a non-incremental engine
    rewrites.  The incremental bench asserts ``delta < full``.
    """
    if cache is None:
        cache = GLOBAL_TRANSFER_CACHE
    if stats is not None and not matrix.is_interned:
        _bump(stats, "lazy_intern_deferrals")
    # The fingerprint embeds matrix.limits, but the transfer is computed with
    # the separate ``limits`` argument — key on it too so a caller passing
    # mismatched limits can never be served another configuration's result.
    # Sealed inputs (every matrix flowing through the pipeline) key on the
    # matrix object itself: its content hash is cached, so the warm-path
    # probe costs O(1) instead of re-hashing the fingerprint snapshot.
    key = (epoch, id(stmt), limits, matrix if matrix.is_sealed else matrix.fingerprint())
    cached = cache.get(key)
    if cached is not None:
        result, widening = cached
        if stats is not None:
            stats.transfer_cache_hits += 1
            widening.add_into(stats)
            _count_rows(stats, matrix, result.matrix)
        return result

    # In-memory miss: consult the persistent tier under the canonical key.
    persistent_key: Optional[str] = None
    if cache.backend is not None:
        from ..cache.codec import transfer_key

        persistent_key = transfer_key(stmt, limits, matrix)
        loaded = cache.load_persistent(persistent_key, matrix.limits)
        if loaded is not None:
            result, widening = loaded
            evicted = cache.put(key, stmt, result, widening)
            if stats is not None:
                stats.transfer_cache_hits += 1
                _bump(stats, "persistent_cache_hits")
                _bump(stats, "transfer_cache_evictions", evicted)
                # Replay the tally captured when the entry was computed —
                # possibly in another process or another run — so the
                # telemetry reads exactly as if this application computed.
                widening.add_into(stats)
                _count_rows(stats, matrix, result.matrix)
            return result

    with widening_scope(WideningTally()) as widening:
        result = apply_basic_statement(matrix, stmt, limits)
    # Entering the cache makes the result shared across program points and
    # future runs; sealing makes a caller mutation fail loudly instead of
    # silently poisoning every later hit.  Interning is deferred: the
    # result stays out of the global matrix table unless an escape point
    # later asks for identity semantics.
    result.matrix = result.matrix.seal()
    if stats is not None:
        _bump(stats, "scratch_matrices_elided")
    evicted = cache.put(key, stmt, result, widening)
    if persistent_key is not None:
        cache.record_persistent(persistent_key, result, widening, stmt=stmt)
    if stats is not None:
        stats.transfer_cache_misses += 1
        _bump(stats, "transfer_cache_evictions", evicted)
        if persistent_key is not None:
            _bump(stats, "persistent_cache_misses")
        widening.add_into(stats)
        _count_rows(stats, matrix, result.matrix)
    return result


def _count_rows(stats, before: PathMatrix, after: PathMatrix) -> None:
    """Fold one application's (changed, full) row counts into ``stats``."""
    changed, full = row_delta(before, after)
    _bump(stats, "delta_rows_propagated", changed)
    _bump(stats, "full_rows_propagated", full)


def merge_matrices_cached(
    first: PathMatrix,
    second: PathMatrix,
    cache: Optional[TransferCache] = None,
    stats=None,
) -> PathMatrix:
    """Memoized control-flow join of two matrices.

    The join is a pure function of its operands, so it memoizes over the
    pair of exact content fingerprints: loop re-iterations and re-analyses
    that join the same matrices get the previously computed (sealed)
    result back with one hash lookup — the fingerprints hash from the
    operands' precomputed per-row hashes, so no whole-matrix intern is
    paid on the cold path.  A hit returns the *same* sealed object every
    time, which is what keeps the loop-convergence check
    (``new_head == head``) a cheap row-pointer scan.  Widening events
    fired inside the join (oversized entries collapsing) are captured on
    the miss and replayed on every hit, keeping the telemetry
    deterministic per application.  In-memory only — joins are cheap to
    recompute relative to codec space.
    """
    if cache is None:
        cache = GLOBAL_TRANSFER_CACHE
    if stats is not None:
        if not first.is_interned:
            _bump(stats, "lazy_intern_deferrals")
        if not second.is_interned:
            _bump(stats, "lazy_intern_deferrals")
    key = (
        "join",
        first if first.is_sealed else first.fingerprint(),
        second if second.is_sealed else second.fingerprint(),
    )
    cached = cache.get_join(key)
    if cached is not None:
        result, widening = cached
        if stats is not None:
            widening.add_into(stats)
        return result
    with widening_scope(WideningTally()) as widening:
        result = first.merge(second).seal()
    if stats is not None:
        _bump(stats, "scratch_matrices_elided")
    cache.put_join(key, (result, widening))
    if stats is not None:
        widening.add_into(stats)
    return result
