"""Shared state of one whole-program analysis run.

The analysis used to be a tangle of positional arguments (program, type
info, summaries, limits, recorder) threaded through every layer.  This
module centralizes that state:

* :class:`AnalysisStats` — cheap counters describing how much work the
  engine actually did (worklist pops, transfer-cache hits, matrices
  allocated, ...).  Exposed on every
  :class:`~repro.analysis.engine.AnalysisResult` and printed by the
  benchmark suite.
* :class:`AnalysisRecorder` — everything the engine keeps per program point
  (before/after matrices, diagnostics, loop histories, call-site
  projections).
* :class:`AnalysisContext` — the mutable bag the pass pipeline
  (:mod:`repro.analysis.pipeline`) operates on.  A context owns (or shares)
  the memoized-transfer cache; the hash-consed path domain
  (:mod:`repro.analysis.paths` / :mod:`repro.analysis.pathset`) is global
  by construction, so every context automatically shares interned domain
  values with every other.

Batch analyses (:func:`repro.analysis.engine.analyze_many`) create one
:class:`TransferCache` and hand it to each per-program context, so a whole
workload suite shares one memoization space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..sil import ast
from ..sil.typecheck import TypeInfo
from .limits import DEFAULT_LIMITS, AnalysisLimits
from .matrix import PathMatrix
from .pathset import intern_table_sizes
from .symbols import GLOBAL_SYMBOLS, SymbolTable
from .structure import StructureDiagnostic
from .summaries import ProcedureSummary
from .transfer import GLOBAL_TRANSFER_CACHE, TransferCache

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from .reanalysis import VisitMemo


@dataclass
class AnalysisStats:
    """Work counters for one analysis run (or one shared batch).

    ``transfer_cache_hits`` / ``transfer_cache_misses`` count memoized
    transfer-function lookups; hits include hits against results cached by
    *earlier* runs when the process-wide shared cache is used.

    Stats are additive: :meth:`merge` sums counters across runs, which is
    how the sharded suite runner (:mod:`repro.workloads.suite`) folds
    per-shard stats — reconstructed from worker snapshots via
    :meth:`from_dict` — into one suite-wide total.
    """

    #: Procedures popped off the interprocedural worklist (re-analyses).
    worklist_pops: int = 0
    #: Entry matrices that changed when a call-site projection was merged in.
    entry_updates: int = 0
    #: Statements visited by the intraprocedural analyzer (recording visits).
    statements_visited: int = 0
    #: Iterations spent in ``while``-loop fixed points.
    loop_iterations: int = 0
    #: Memoized transfer applications answered from the cache (either tier).
    transfer_cache_hits: int = 0
    #: Memoized transfer applications that had to compute.
    transfer_cache_misses: int = 0
    #: Entries evicted from the in-memory transfer-cache layer.
    transfer_cache_evictions: int = 0
    #: In-memory misses answered by the persistent backend (cross-run/shard
    #: hits; also counted in ``transfer_cache_hits``).
    persistent_cache_hits: int = 0
    #: In-memory misses the persistent backend could not answer either.
    persistent_cache_misses: int = 0
    #: Computed transfers newly admitted to the persistent store at flush.
    persistent_cache_writes: int = 0
    #: Entries the persistent store evicted to stay under its capacity.
    persistent_cache_evictions: int = 0
    #: Path matrices allocated while this context was active.
    matrices_allocated: int = 0
    #: :meth:`PathMatrix.interned` lookups answered from the intern table —
    #: a previously-seen matrix was recognised by a pointer check.
    matrix_intern_hits: int = 0
    #: Rows whose contents actually changed across transfer applications
    #: and entry-matrix absorptions — the row writes any engine must
    #: perform no matter how it is implemented.
    delta_rows_propagated: int = 0
    #: Rows a full re-propagation rewrites at the same program points (the
    #: whole matrix dimension per operation).  The gap between ``delta``
    #: and ``full`` is what the row-reuse/interning layer turns into
    #: pointer copies; the CI bench requires a *strict* gap on the
    #: widening-heavy dag/deep families, which fails if the delta path
    #: ever degenerates into every row changing at every operation.
    full_rows_propagated: int = 0
    #: Whole-matrix joins the solver skipped because the projected call-site
    #: matrix was *identical* (same interned object) to one already absorbed
    #: into the callee's entry matrix.
    full_joins_avoided: int = 0
    #: Programs analyzed against this stats object (one, unless batched).
    programs_analyzed: int = 0
    #: Paths whose tail collapsed into a ``D`` segment (``max_segments``).
    segment_collapses: int = 0
    #: Exact repetition counts widened to open-ended (``max_exact_count``).
    exact_widenings: int = 0
    #: Oversized path-matrix entries collapsed (``max_paths_per_entry``).
    path_set_collapses: int = 0
    #: Times a fixed-point safety net (``max_iterations`` loop bound or the
    #: solver's pop bound) forced a cutoff instead of natural convergence.
    iteration_guard_trips: int = 0
    #: Times the adaptive-limits policy re-ran a program with stepped-up bounds.
    adaptive_escalations: int = 0
    #: Computed transfer/join results kept in scratch (sealed-not-interned)
    #: form instead of being eagerly hash-consed — the lazy-interning win.
    scratch_matrices_elided: int = 0
    #: Memoized-transfer lookups keyed by fingerprint on a matrix that was
    #: *not* interned — each one is an intern the eager scheme would have
    #: paid on the cold path and the lazy scheme deferred.
    lazy_intern_deferrals: int = 0
    #: Packed-segment integer operations executed by the path kernels
    #: (normalization, concat, cancellation) while this context was active.
    packed_segment_ops: int = 0
    #: Worklist visits answered from the cross-run visit memo: the procedure
    #: was popped with an entry matrix (and limits) it had already been
    #: analyzed under in a previous run, so its recorded summary was reused
    #: by pointer instead of re-analyzed (see
    #: :mod:`repro.analysis.reanalysis`).
    summaries_reused: int = 0
    #: Memoized procedure visits dropped by delta-driven invalidation before
    #: a re-analysis (the dirty procedures' recordings).
    summaries_invalidated: int = 0
    #: Size of the dirty seed a re-analysis started from: directly-edited
    #: procedures plus their reverse-call-graph dependents.
    dirty_seed_size: int = 0

    #: The additive counter fields, in ``as_dict`` order.  Derived values
    #: (hit rate) and the global intern-table sizes are excluded.
    COUNTER_FIELDS = (
        "worklist_pops",
        "entry_updates",
        "statements_visited",
        "loop_iterations",
        "transfer_cache_hits",
        "transfer_cache_misses",
        "transfer_cache_evictions",
        "persistent_cache_hits",
        "persistent_cache_misses",
        "persistent_cache_writes",
        "persistent_cache_evictions",
        "matrices_allocated",
        "matrix_intern_hits",
        "delta_rows_propagated",
        "full_rows_propagated",
        "full_joins_avoided",
        "programs_analyzed",
        "segment_collapses",
        "exact_widenings",
        "path_set_collapses",
        "iteration_guard_trips",
        "adaptive_escalations",
        "scratch_matrices_elided",
        "lazy_intern_deferrals",
        "packed_segment_ops",
        "summaries_reused",
        "summaries_invalidated",
        "dirty_seed_size",
    )

    #: The widening-telemetry subset of :data:`COUNTER_FIELDS` — the
    #: counters the adaptive-limits escalation policy reacts to.
    WIDENING_FIELDS = (
        "segment_collapses",
        "exact_widenings",
        "path_set_collapses",
        "iteration_guard_trips",
    )

    @property
    def transfer_cache_requests(self) -> int:
        return self.transfer_cache_hits + self.transfer_cache_misses

    @property
    def transfer_cache_hit_rate(self) -> float:
        """Fraction of transfer applications answered from the cache."""
        requests = self.transfer_cache_requests
        return self.transfer_cache_hits / requests if requests else 0.0

    @property
    def persistent_cache_requests(self) -> int:
        """In-memory misses that consulted the persistent backend."""
        return self.persistent_cache_hits + self.persistent_cache_misses

    @property
    def persistent_cache_hit_rate(self) -> float:
        """Fraction of backend consultations answered from the store.

        This is the warm-start signal: a cold run over an empty store reads
        0.0, a warm rerun of the same population approaches 1.0.  Zero when
        no persistent backend was attached.
        """
        requests = self.persistent_cache_requests
        return self.persistent_cache_hits / requests if requests else 0.0

    def widening_counters(self) -> Dict[str, int]:
        """The widening-telemetry counters only (per-workload deltas, benches)."""
        return {name: getattr(self, name) for name in self.WIDENING_FIELDS}

    def widening_fired(self, since: Optional[Dict[str, int]] = None) -> bool:
        """Did any widening counter advance (since a ``widening_counters`` snapshot)?"""
        baseline = since or {}
        return any(
            getattr(self, name) > baseline.get(name, 0) for name in self.WIDENING_FIELDS
        )

    def counters(self) -> Dict[str, int]:
        """Just the additive counters — no derived values, no global tables.

        This is the right rendering for *merged* cross-process stats: the
        intern-table sizes :meth:`as_dict` appends are those of the calling
        process, which reflect none of the shard workers' interning.
        """
        return {name: getattr(self, name) for name in self.COUNTER_FIELDS}

    def as_dict(self) -> Dict[str, float]:
        """A plain-JSON-able snapshot (counters plus global table sizes)."""
        snapshot: Dict[str, float] = dict(self.counters())
        snapshot["transfer_cache_hit_rate"] = round(self.transfer_cache_hit_rate, 4)
        snapshot["persistent_cache_hit_rate"] = round(self.persistent_cache_hit_rate, 4)
        snapshot.update(intern_table_sizes())
        return snapshot

    @classmethod
    def from_dict(cls, snapshot: Dict[str, float]) -> "AnalysisStats":
        """Rebuild stats from an :meth:`as_dict` snapshot.

        Derived values and intern-table sizes in the snapshot are ignored —
        they are recomputed (or global) on the receiving side.  This is how
        shard workers ship their counters back across process boundaries.
        """
        return cls(**{name: int(snapshot.get(name, 0)) for name in cls.COUNTER_FIELDS})

    def merge(self, *others: "AnalysisStats") -> "AnalysisStats":
        """A new stats object with counters summed across ``self`` and ``others``.

        Addition is exact for every counter (they count disjoint work), so
        merging per-shard stats reproduces what a single shared-stats run
        over the union of the shards' programs would have counted — minus
        cross-shard transfer-cache hits, which show up as extra misses.
        """
        merged = AnalysisStats()
        for source in (self, *others):
            for name in self.COUNTER_FIELDS:
                setattr(merged, name, getattr(merged, name) + getattr(source, name))
        return merged

    def format(self) -> str:
        """One-per-line human-readable rendering (benchmark banners)."""
        return "\n".join(f"{key:28s} {value}" for key, value in self.as_dict().items())


@dataclass
class AnalysisRecorder:
    """Collects everything the whole-program engine wants to keep."""

    #: Path matrix before each statement, keyed by ``id(stmt)``.
    before: Dict[int, PathMatrix] = field(default_factory=dict)
    #: Path matrix after each statement, keyed by ``id(stmt)``.
    after: Dict[int, PathMatrix] = field(default_factory=dict)
    #: The statement objects themselves (so ids can be resolved later).
    statements: Dict[int, ast.Stmt] = field(default_factory=dict)
    #: Which procedure each recorded statement belongs to.
    procedure_of: Dict[int, str] = field(default_factory=dict)
    #: Structure diagnostics, with the owning procedure name.
    diagnostics: List[Tuple[str, StructureDiagnostic]] = field(default_factory=list)
    #: Projected entry matrices observed at call sites: (callee, matrix).
    call_sites: List[Tuple[str, PathMatrix]] = field(default_factory=list)
    #: Iteration history of each while loop, keyed by ``id(stmt)``.
    loop_histories: Dict[int, List[PathMatrix]] = field(default_factory=dict)
    #: For per-visit recorders of the incremental solver: the entry rows
    #: that changed since this procedure's previous worklist visit (``None``
    #: outside the solver; everything on the first visit).
    entry_delta: Optional[frozenset] = None

    def record_point(
        self, proc_name: str, stmt: ast.Stmt, before: PathMatrix, after: PathMatrix
    ) -> None:
        self.before[id(stmt)] = before
        self.after[id(stmt)] = after
        self.statements[id(stmt)] = stmt
        self.procedure_of[id(stmt)] = proc_name

    def record_diagnostics(
        self, proc_name: str, diagnostics: List[StructureDiagnostic]
    ) -> None:
        for diagnostic in diagnostics:
            self.diagnostics.append(
                (
                    proc_name,
                    StructureDiagnostic(
                        kind=diagnostic.kind,
                        certainty=diagnostic.certainty,
                        statement=diagnostic.statement,
                        detail=diagnostic.detail,
                        procedure=proc_name,
                    ),
                )
            )

    def record_call_site(self, callee: str, projected: PathMatrix) -> None:
        self.call_sites.append((callee, projected))

    def record_loop(self, stmt: ast.Stmt, history: List[PathMatrix]) -> None:
        self.loop_histories[id(stmt)] = history

    def absorb(self, other: "AnalysisRecorder") -> None:
        """Fold another recorder's observations into this one.

        Used by the worklist solver to assemble the final program-point
        recording from each procedure's *last* stabilization visit.
        """
        self.before.update(other.before)
        self.after.update(other.after)
        self.statements.update(other.statements)
        self.procedure_of.update(other.procedure_of)
        self.diagnostics.extend(other.diagnostics)
        self.call_sites.extend(other.call_sites)
        self.loop_histories.update(other.loop_histories)


@dataclass
class AnalysisContext:
    """Everything one run of the pass pipeline reads and writes.

    Construct with at least ``program``; the pipeline passes fill in the
    rest (``info``, ``summaries``, ``entry_matrices``, ``recorder``).  Pass
    an explicit ``transfer_cache`` to share memoized transfers across
    several contexts (see :func:`repro.analysis.engine.analyze_many`);
    leave it ``None`` to use the process-wide shared cache.
    """

    program: ast.Program
    info: Optional[TypeInfo] = None
    limits: AnalysisLimits = DEFAULT_LIMITS
    entry_name: str = "main"
    stats: AnalysisStats = field(default_factory=AnalysisStats)
    transfer_cache: Optional[TransferCache] = None
    #: The handle symbol table behind the packed matrix layer.  Defaults to
    #: (and in practice always is) the process-wide table — interned rows
    #: carry masks built from its ids and are shared across contexts, so
    #: every context must agree on id assignment.  Exposed here so analysis
    #: layers can reach it without importing :mod:`repro.analysis.symbols`.
    symbols: SymbolTable = field(default_factory=lambda: GLOBAL_SYMBOLS)

    #: Cross-run memo of completed procedure visits, keyed by
    #: ``(name, limits, interned entry matrix)``.  ``None`` (the default)
    #: disables cross-run reuse entirely; :class:`repro.analysis.reanalysis.
    #: IncrementalSession` threads one memo through successive solves of
    #: edited program versions.
    visit_memo: Optional["VisitMemo"] = None
    #: Epoch the in-memory transfer-cache ``id(stmt)`` keys are scoped to.
    #: Bare contexts share epoch 0 (so ad-hoc ``analyze_program`` calls keep
    #: hitting the process-wide cache across calls); every
    #: :class:`~repro.analysis.engine.BatchAnalyzer` allocates a fresh epoch
    #: so reused CPython object ids can never collide across batches.
    memo_epoch: int = 0

    # Filled by the pipeline passes.
    summaries: Optional[Dict[str, ProcedureSummary]] = None
    entry_matrices: Dict[str, PathMatrix] = field(default_factory=dict)
    procedure_recorders: Dict[str, AnalysisRecorder] = field(default_factory=dict)
    recorder: Optional[AnalysisRecorder] = None

    def __post_init__(self) -> None:
        if self.transfer_cache is None:
            self.transfer_cache = GLOBAL_TRANSFER_CACHE
