"""Whole-program path-matrix analysis driver.

Computes, for a normalized SIL program:

* a **procedure entry matrix** for every reachable procedure — the merge of
  the projections of all its call sites, with ``h*``/``h**`` symbolic
  handles tracking the calling context of recursive procedures (Figure 7's
  ``pB``/``pC``);
* the **path matrix before and after every statement** of every reachable
  procedure (Figure 7's ``pA`` is the matrix before the first call in
  ``main``);
* the **structure diagnostics** raised by destructive updates (possible
  cycle / sharing creation);
* the per-loop iteration histories (Figure 3).

The interprocedural fixed point iterates: analyze every reachable procedure
from its current entry matrix, collect the call-site projections observed,
merge them into the callees' entry matrices, and repeat until no entry
matrix changes.  The abstract domain is finite (see
:mod:`repro.analysis.limits`), so this terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sil import ast
from ..sil.typecheck import TypeInfo, check_program
from .interproc import initial_entry_matrix
from .intraproc import AnalysisRecorder, ProcedureAnalyzer
from .limits import DEFAULT_LIMITS, AnalysisLimits
from .matrix import PathMatrix
from .structure import StructureDiagnostic
from .summaries import ProcedureSummary, compute_summaries


@dataclass
class AnalysisResult:
    """Everything the whole-program analysis produces."""

    program: ast.Program
    info: TypeInfo
    limits: AnalysisLimits
    summaries: Dict[str, ProcedureSummary]
    entry_matrices: Dict[str, PathMatrix]
    recorder: AnalysisRecorder
    #: Number of interprocedural iterations until the entry matrices stabilized.
    iterations: int = 0

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def matrix_before(self, stmt: ast.Stmt) -> PathMatrix:
        """The path matrix at the program point just before ``stmt``."""
        try:
            return self.recorder.before[id(stmt)]
        except KeyError:
            raise KeyError(
                "no matrix recorded for this statement (is it part of an analyzed, "
                "reachable procedure of the analyzed program object?)"
            ) from None

    def matrix_after(self, stmt: ast.Stmt) -> PathMatrix:
        """The path matrix at the program point just after ``stmt``."""
        try:
            return self.recorder.after[id(stmt)]
        except KeyError:
            raise KeyError(
                "no matrix recorded for this statement (is it part of an analyzed, "
                "reachable procedure of the analyzed program object?)"
            ) from None

    def entry_matrix(self, procedure_name: str) -> PathMatrix:
        """The (fixed-point) entry matrix of a procedure."""
        return self.entry_matrices[procedure_name]

    def summary(self, procedure_name: str) -> ProcedureSummary:
        return self.summaries[procedure_name]

    @property
    def diagnostics(self) -> List[StructureDiagnostic]:
        """All structure diagnostics raised anywhere in the program."""
        return [diag for _, diag in self.recorder.diagnostics]

    def diagnostics_in(self, procedure_name: str) -> List[StructureDiagnostic]:
        return [diag for proc, diag in self.recorder.diagnostics if proc == procedure_name]

    def loop_history(self, stmt: ast.WhileStmt) -> List[PathMatrix]:
        """The Figure 3 iteration sequence for a ``while`` statement."""
        return self.recorder.loop_histories[id(stmt)]

    def reachable_procedures(self) -> List[str]:
        return sorted(self.entry_matrices.keys())

    # ------------------------------------------------------------------
    # Convenience: locate statements by shape
    # ------------------------------------------------------------------

    def statements_in(self, procedure_name: str) -> List[ast.Stmt]:
        """Every recorded statement of a procedure, in recording order."""
        return [
            stmt
            for stmt_id, stmt in self.recorder.statements.items()
            if self.recorder.procedure_of[stmt_id] == procedure_name
        ]

    def point_before_call(self, procedure_name: str, callee: str, occurrence: int = 0) -> PathMatrix:
        """The matrix just before the n-th call to ``callee`` inside ``procedure_name``.

        This is how the Figure 7 benches pick out the paper's program points
        A (before ``add_n(lside, 1)`` in ``main``) and B (before the first
        recursive call inside ``add_n``).
        """
        proc = self.program.callable(procedure_name)
        count = 0
        for stmt in ast.walk_stmt(proc.body):
            if isinstance(stmt, (ast.ProcCall, ast.FuncAssign)) and stmt.name == callee:
                if count == occurrence:
                    return self.matrix_before(stmt)
                count += 1
        raise KeyError(
            f"call #{occurrence} to {callee!r} not found in procedure {procedure_name!r}"
        )


def analyze_program(
    program: ast.Program,
    info: Optional[TypeInfo] = None,
    limits: AnalysisLimits = DEFAULT_LIMITS,
    entry: str = "main",
) -> AnalysisResult:
    """Run the whole-program path-matrix analysis on a core SIL program."""
    if not ast.program_is_core(program):
        raise ValueError(
            "the analysis requires a normalized (core) program; "
            "run repro.sil.normalize.normalize_program first"
        )
    if info is None:
        info = check_program(program)
    summaries = compute_summaries(program, info)

    entry_proc = program.callable(entry)
    entries: Dict[str, PathMatrix] = {entry_proc.name: initial_entry_matrix(entry_proc, limits)}

    iterations = 0
    max_rounds = max(8, 4 * len(program.all_callables)) * limits.max_iterations
    while True:
        iterations += 1
        scratch = AnalysisRecorder()
        analyzer = ProcedureAnalyzer(program, info, summaries, limits, scratch)
        for name, entry_matrix in list(entries.items()):
            analyzer.analyze_procedure(program.callable(name), entry_matrix)

        changed = False
        for callee, projected in scratch.call_sites:
            current = entries.get(callee)
            if current is None:
                callee_proc = program.callable(callee)
                base = initial_entry_matrix(callee_proc, limits)
                merged = base.merge(projected)
            else:
                merged = current.merge(projected)
            if current is None or merged != current:
                entries[callee] = merged
                changed = True
        if not changed:
            break
        if iterations >= max_rounds:  # pragma: no cover - safety net
            break

    # Final recording pass with the stabilized entry matrices.
    recorder = AnalysisRecorder()
    analyzer = ProcedureAnalyzer(program, info, summaries, limits, recorder)
    for name, entry_matrix in entries.items():
        analyzer.analyze_procedure(program.callable(name), entry_matrix)

    return AnalysisResult(
        program=program,
        info=info,
        limits=limits,
        summaries=summaries,
        entry_matrices=entries,
        recorder=recorder,
        iterations=iterations,
    )
