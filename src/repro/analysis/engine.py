"""Whole-program path-matrix analysis driver.

Computes, for a normalized SIL program:

* a **procedure entry matrix** for every reachable procedure — the merge of
  the projections of all its call sites, with ``h*``/``h**`` symbolic
  handles tracking the calling context of recursive procedures (Figure 7's
  ``pB``/``pC``);
* the **path matrix before and after every statement** of every reachable
  procedure (Figure 7's ``pA`` is the matrix before the first call in
  ``main``);
* the **structure diagnostics** raised by destructive updates (possible
  cycle / sharing creation);
* the per-loop iteration histories (Figure 3).

The interprocedural fixed point is solved by the worklist-driven pass
pipeline of :mod:`repro.analysis.pipeline`: a procedure is re-analyzed only
when its entry matrix absorbs a changed call-site projection, and the
recording made during each procedure's last stabilization visit is the
final one.  The abstract domain is finite (see
:mod:`repro.analysis.limits`), so this terminates.  The seed's
rounds-until-stable engine is retained as
:func:`analyze_program_reference`; the golden tests assert both produce
identical results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..cache.backend import CacheConfig, open_backend
from ..sil import ast
from ..sil.typecheck import TypeInfo, check_program
from .context import AnalysisContext, AnalysisRecorder, AnalysisStats
from .interproc import initial_entry_matrix
from .intraproc import ProcedureAnalyzer
from .limits import DEFAULT_LIMITS, AdaptiveLimits, AnalysisLimits, LimitsLike, base_limits
from .matrix import PathMatrix, canonical_document
from .pipeline import run_pipeline
from .structure import StructureDiagnostic
from .summaries import ProcedureSummary, compute_summaries
from .transfer import TransferCache

#: Distinct epochs for the ``id(stmt)``-keyed in-memory transfer-cache keys.
#: Epoch 0 is reserved for bare contexts (ad-hoc :func:`analyze_program`
#: calls against the process-wide cache); every :class:`BatchAnalyzer`
#: draws a fresh one, so a statement id recycled by CPython after one batch
#: dies can never alias a live entry recorded by another batch sharing the
#: same :class:`TransferCache`.
_MEMO_EPOCHS = itertools.count(1)


@dataclass
class AnalysisResult:
    """Everything the whole-program analysis produces.

    Recorded matrices are **shared, not owned**: with the memoized transfer
    cache, the matrix at a program point may be the very object another
    result (or a future re-analysis) sees.  Cached matrices are *sealed* —
    mutating one raises — so call ``matrix.copy()`` and mutate the copy.
    """

    program: ast.Program
    info: TypeInfo
    limits: AnalysisLimits
    summaries: Dict[str, ProcedureSummary]
    entry_matrices: Dict[str, PathMatrix]
    recorder: AnalysisRecorder
    #: Interprocedural work performed until the entry matrices stabilized —
    #: worklist pops for the pipeline engine, rounds for the reference engine.
    iterations: int = 0
    #: Work counters for this run (shared across a batch for analyze_many).
    stats: AnalysisStats = field(default_factory=AnalysisStats)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def matrix_before(self, stmt: ast.Stmt) -> PathMatrix:
        """The path matrix at the program point just before ``stmt``."""
        try:
            return self.recorder.before[id(stmt)]
        except KeyError:
            raise KeyError(
                "no matrix recorded for this statement (is it part of an analyzed, "
                "reachable procedure of the analyzed program object?)"
            ) from None

    def matrix_after(self, stmt: ast.Stmt) -> PathMatrix:
        """The path matrix at the program point just after ``stmt``."""
        try:
            return self.recorder.after[id(stmt)]
        except KeyError:
            raise KeyError(
                "no matrix recorded for this statement (is it part of an analyzed, "
                "reachable procedure of the analyzed program object?)"
            ) from None

    def entry_matrix(self, procedure_name: str) -> PathMatrix:
        """The (fixed-point) entry matrix of a procedure."""
        return self.entry_matrices[procedure_name]

    def summary(self, procedure_name: str) -> ProcedureSummary:
        return self.summaries[procedure_name]

    @property
    def diagnostics(self) -> List[StructureDiagnostic]:
        """All structure diagnostics raised anywhere in the program."""
        return [diag for _, diag in self.recorder.diagnostics]

    def diagnostics_in(self, procedure_name: str) -> List[StructureDiagnostic]:
        return [diag for proc, diag in self.recorder.diagnostics if proc == procedure_name]

    def loop_history(self, stmt: ast.WhileStmt) -> List[PathMatrix]:
        """The Figure 3 iteration sequence for a ``while`` statement."""
        return self.recorder.loop_histories[id(stmt)]

    def reachable_procedures(self) -> List[str]:
        return sorted(self.entry_matrices.keys())

    # ------------------------------------------------------------------
    # Canonical (process-independent) encoding
    # ------------------------------------------------------------------

    def canonical(self) -> Dict[str, object]:
        """A canonical, JSON-able, process-independent encoding of the result.

        Matrices are keyed by procedure name and *statement position* (the
        index in :func:`repro.sil.ast.walk_stmt` order) rather than by
        ``id(stmt)``, and path sets by their exact textual rendering — so
        two analyses of the same source text produce equal encodings even
        in different processes.  The sharded suite runner ships these back
        from workers and the regression tests compare them bit-for-bit
        against single-process runs.
        """
        points = {}
        for proc_name in sorted(self.entry_matrices):
            proc = self.program.callable(proc_name)
            for index, stmt in enumerate(ast.walk_stmt(proc.body)):
                recorded_before = self.recorder.before.get(id(stmt))
                if recorded_before is None:
                    continue
                points[f"{proc_name}#{index}"] = {
                    "before": canonical_matrix(recorded_before),
                    "after": canonical_matrix(self.recorder.after[id(stmt)]),
                }
        return {
            "program": self.program.name,
            "entry_matrices": {
                name: canonical_matrix(matrix)
                for name, matrix in sorted(self.entry_matrices.items())
            },
            "points": points,
            "diagnostics": sorted(
                [proc, diag.kind.name, diag.certainty.name, diag.statement, diag.detail]
                for proc, diag in self.recorder.diagnostics
            ),
        }

    # ------------------------------------------------------------------
    # Convenience: locate statements by shape
    # ------------------------------------------------------------------

    def statements_in(self, procedure_name: str) -> List[ast.Stmt]:
        """Every recorded statement of a procedure, in recording order."""
        return [
            stmt
            for stmt_id, stmt in self.recorder.statements.items()
            if self.recorder.procedure_of[stmt_id] == procedure_name
        ]

    def point_before_call(self, procedure_name: str, callee: str, occurrence: int = 0) -> PathMatrix:
        """The matrix just before the n-th call to ``callee`` inside ``procedure_name``.

        This is how the Figure 7 benches pick out the paper's program points
        A (before ``add_n(lside, 1)`` in ``main``) and B (before the first
        recursive call inside ``add_n``).
        """
        proc = self.program.callable(procedure_name)
        count = 0
        for stmt in ast.walk_stmt(proc.body):
            if isinstance(stmt, (ast.ProcCall, ast.FuncAssign)) and stmt.name == callee:
                if count == occurrence:
                    return self.matrix_before(stmt)
                count += 1
        raise KeyError(
            f"call #{occurrence} to {callee!r} not found in procedure {procedure_name!r}"
        )


def canonical_matrix(matrix: PathMatrix) -> Dict[str, object]:
    """A canonical, JSON-able encoding of one :class:`PathMatrix`.

    Captures exactly what :meth:`PathMatrix.__eq__` compares — the tracked
    handles (in insertion order) and every non-empty entry, with path sets
    rendered via their exact textual form.  Equal encodings ⇔ equal
    matrices, across process boundaries.  A thin alias of
    :func:`repro.analysis.matrix.canonical_document`, the one definition
    of the layout this and the persistent cache codec share.
    """
    return canonical_document(matrix)


def analyze_program(
    program: ast.Program,
    info: Optional[TypeInfo] = None,
    limits: AnalysisLimits = DEFAULT_LIMITS,
    entry: str = "main",
    context: Optional[AnalysisContext] = None,
) -> AnalysisResult:
    """Run the whole-program path-matrix analysis on a core SIL program.

    This drives the worklist pass pipeline of
    :mod:`repro.analysis.pipeline`.  Pass a pre-built
    :class:`~repro.analysis.context.AnalysisContext` to share transfer
    caches and stats across runs; otherwise a fresh context using the
    process-wide shared transfer cache is created.
    """
    if context is None:
        context = AnalysisContext(
            program=program, info=info, limits=limits, entry_name=entry
        )
    elif context.program is not program:
        raise ValueError(
            "analyze_program was given an AnalysisContext built for a "
            "different program; build one context per program (share caches "
            "via the transfer_cache/stats fields or use analyze_many)"
        )
    run_pipeline(context)
    return AnalysisResult(
        program=context.program,
        info=context.info,
        limits=context.limits,
        summaries=context.summaries,
        entry_matrices=context.entry_matrices,
        recorder=context.recorder,
        iterations=context.stats.worklist_pops,
        stats=context.stats,
    )


class BatchAnalyzer:
    """One shared memoized-transfer cache + stats, fed one program at a time.

    The single implementation of the batch-sharing contract: every batch
    entry point — :func:`analyze_many`, the workload suite's
    :func:`~repro.workloads.suite.analyze_suite`, and the sharded runner's
    workers — builds on this instead of re-threading the cache/stats/
    pops-delta bookkeeping itself.  ``result.iterations`` on each returned
    result counts only that program's worklist pops; ``result.stats`` is
    the shared batch-wide object.

    ``limits`` may be an :class:`~repro.analysis.limits.AdaptiveLimits`
    escalation policy: each program is first analyzed at the base rung and
    re-analyzed with stepped-up bounds whenever its widening counters
    advanced, up to the policy's ``max_steps`` — but only while each
    escalation strictly reduces the program's widening-event total.  A
    rung that widens as much as the one before it shows the events are
    the domain's intended convergence widening (which higher bounds only
    postpone), so the ladder stops there instead of burning the remaining
    rungs on futile 2-3x re-analyses.  ``result.limits`` records the rung
    that produced the returned result, and every escalation increments
    ``stats.adaptive_escalations``.  The transfer-cache key embeds the
    limits, so rungs never share cached transfers.

    ``cache`` may name a persistent store (a :class:`~repro.cache.backend.
    CacheConfig`): the batch's transfer cache then reads through to it —
    transfers computed by *earlier runs or other shard processes* are
    decoded instead of recomputed, with their captured widening counts
    replayed exactly — and buffers its own computed transfers as deltas.
    Call :meth:`flush` (or :meth:`close`) when the batch is done to write
    them back; nothing is persisted implicitly.

    ``policy`` selects the in-memory eviction policy on its own — it works
    with or without a persistent tier (defaulting to the cache config's
    policy, then ``lru``), so policy comparisons don't require a store.

    ``transfer_cache`` attaches an *existing* :class:`TransferCache` —
    warm memoized transfers, persistent backend and all — instead of
    building a private one.  This is how a long-lived host (the analysis
    server in :mod:`repro.server`) gives every request a fresh
    :class:`AnalysisStats` while all requests share one warm cache: the
    batch then does **not** own the backend, so :meth:`close` flushes but
    leaves the backend open for the next batch.  ``cache``/``policy`` are
    rejected alongside it — the attached cache already made those choices.
    """

    def __init__(
        self,
        limits: LimitsLike = DEFAULT_LIMITS,
        entry: str = "main",
        cache: Optional[CacheConfig] = None,
        policy: Optional[str] = None,
        transfer_cache: Optional[TransferCache] = None,
    ):
        self.limits = limits
        self.entry = entry
        self.stats = AnalysisStats()
        #: Scopes this batch's ``id(stmt)``-keyed transfer-cache entries.
        self.memo_epoch = next(_MEMO_EPOCHS)
        #: Cross-run procedure-visit memo; attached by
        #: :class:`repro.analysis.reanalysis.IncrementalSession`, ``None``
        #: (no cross-run reuse) for ordinary batches.
        self.visit_memo = None
        if transfer_cache is not None:
            if cache is not None or policy is not None:
                raise ValueError(
                    "BatchAnalyzer(transfer_cache=...) shares an existing cache; "
                    "cache/policy would silently be ignored — configure them on "
                    "the shared TransferCache instead"
                )
            self.cache_config = None
            self.cache = transfer_cache
            self._owns_backend = False
            return
        self.cache_config = cache.validated() if cache is not None else None
        backend = open_backend(self.cache_config) if self.cache_config is not None else None
        if policy is None:
            policy = self.cache_config.policy if self.cache_config is not None else "lru"
        self.cache = TransferCache(
            base_limits(limits).transfer_cache_size,
            policy=policy,
            backend=backend,
        )
        self._owns_backend = True

    def flush(self) -> None:
        """Write computed transfer deltas to the persistent store (if any)."""
        self.cache.flush(self.stats)

    def close(self) -> None:
        """Flush deltas; release the persistent backend if this batch owns it.

        A batch attached to a shared cache (``transfer_cache=...``) leaves
        the backend open — the owning host closes it at *its* end of life.
        """
        self.flush()
        if self._owns_backend and self.cache.backend is not None:
            self.cache.backend.close()
            self.cache.backend = None

    def _ladder(self) -> List[AnalysisLimits]:
        if isinstance(self.limits, AdaptiveLimits):
            return self.limits.ladder()
        return [self.limits]

    def analyze(
        self, program: ast.Program, info: Optional[TypeInfo] = None
    ) -> AnalysisResult:
        ladder = self._ladder()
        previous_fired: Optional[int] = None
        for step, limits in enumerate(ladder):
            pops_before = self.stats.worklist_pops
            widening_before = self.stats.widening_counters()
            context = AnalysisContext(
                program=program,
                info=info,
                limits=limits,
                entry_name=self.entry,
                stats=self.stats,
                transfer_cache=self.cache,
                visit_memo=self.visit_memo,
                memo_epoch=self.memo_epoch,
            )
            run_pipeline(context)
            info = context.info  # reuse type info across escalation re-runs
            fired = sum(
                self.stats.widening_counters()[name] - widening_before[name]
                for name in widening_before
            )
            improving = previous_fired is None or fired < previous_fired
            if step + 1 < len(ladder) and fired and improving:
                previous_fired = fired
                self.stats.adaptive_escalations += 1
                # Escalation re-runs are attempts, not extra programs.
                self.stats.programs_analyzed -= 1
                continue
            break
        return AnalysisResult(
            program=context.program,
            info=context.info,
            limits=context.limits,
            summaries=context.summaries,
            entry_matrices=context.entry_matrices,
            recorder=context.recorder,
            iterations=self.stats.worklist_pops - pops_before,
            stats=self.stats,
        )


def analyze_program_adaptive(
    program: ast.Program,
    info: Optional[TypeInfo] = None,
    policy: Optional[AdaptiveLimits] = None,
    entry: str = "main",
) -> AnalysisResult:
    """Analyze under an :class:`~repro.analysis.limits.AdaptiveLimits` policy.

    Runs the pipeline at the policy's base limits and re-runs with
    stepped-up bounds while widening fires (see :class:`BatchAnalyzer`).
    ``result.limits`` is the final rung used; ``result.stats`` carries the
    widening counters and ``adaptive_escalations``.
    """
    policy = policy if policy is not None else AnalysisLimits.adaptive()
    batch = BatchAnalyzer(limits=policy, entry=entry)
    return batch.analyze(program, info)


def analyze_many(
    programs: Iterable[Union[ast.Program, Tuple[ast.Program, Optional[TypeInfo]]]],
    limits: LimitsLike = DEFAULT_LIMITS,
    entry: str = "main",
) -> List[AnalysisResult]:
    """Analyze a batch of programs against one shared interned-domain context.

    The hash-consed path domain is global, so every analysis already shares
    interned :class:`Path`/:class:`PathSet` values; this entry point
    additionally shares one memoized-transfer cache and one
    :class:`~repro.analysis.context.AnalysisStats` across the whole batch
    (via :class:`BatchAnalyzer`) — the workload-suite batching used by
    :func:`repro.workloads.suite.analyze_suite`.

    ``programs`` items may be bare programs or ``(program, info)`` pairs.
    """
    batch = BatchAnalyzer(limits=limits, entry=entry)
    results: List[AnalysisResult] = []
    for item in programs:
        program, info = item if isinstance(item, tuple) else (item, None)
        results.append(batch.analyze(program, info))
    return results


def analyze_program_reference(
    program: ast.Program,
    info: Optional[TypeInfo] = None,
    limits: AnalysisLimits = DEFAULT_LIMITS,
    entry: str = "main",
) -> AnalysisResult:
    """The seed's rounds-until-stable engine, kept as a golden reference.

    Every interprocedural round re-analyzes every reachable procedure from
    its current entry matrix; once nothing changes, one extra full pass
    records the program points.  No caches, no worklist — this is the
    paper-literal formulation the golden tests compare the pipeline engine
    against (``result.iterations`` counts rounds here, so the seed's
    rounds x procedures work bound is ``iterations * len(entry_matrices)``).
    """
    if not ast.program_is_core(program):
        raise ValueError(
            "the analysis requires a normalized (core) program; "
            "run repro.sil.normalize.normalize_program first"
        )
    if info is None:
        info = check_program(program)
    summaries = compute_summaries(program, info)

    entry_proc = program.callable(entry)
    entries: Dict[str, PathMatrix] = {entry_proc.name: initial_entry_matrix(entry_proc, limits)}

    iterations = 0
    max_rounds = max(8, 4 * len(program.all_callables)) * limits.max_iterations
    while True:
        iterations += 1
        scratch = AnalysisRecorder()
        analyzer = ProcedureAnalyzer(program, info, summaries, limits, scratch)
        for name, entry_matrix in list(entries.items()):
            analyzer.analyze_procedure(program.callable(name), entry_matrix)

        changed = False
        for callee, projected in scratch.call_sites:
            current = entries.get(callee)
            if current is None:
                callee_proc = program.callable(callee)
                base = initial_entry_matrix(callee_proc, limits)
                merged = base.merge(projected)
            else:
                merged = current.merge(projected)
            if current is None or merged != current:
                entries[callee] = merged
                changed = True
        if not changed:
            break
        if iterations >= max_rounds:  # pragma: no cover - safety net
            break

    # Final recording pass with the stabilized entry matrices.
    recorder = AnalysisRecorder()
    analyzer = ProcedureAnalyzer(program, info, summaries, limits, recorder)
    for name, entry_matrix in entries.items():
        analyzer.analyze_procedure(program.callable(name), entry_matrix)

    return AnalysisResult(
        program=program,
        info=info,
        limits=limits,
        summaries=summaries,
        entry_matrices=entries,
        recorder=recorder,
        iterations=iterations,
    )
