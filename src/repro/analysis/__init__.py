"""Path-matrix interference analysis — the paper's core contribution.

Public entry point: :func:`repro.analysis.analyze_program`, which runs the
whole-program analysis and returns an :class:`~repro.analysis.engine.
AnalysisResult` giving the path matrix at every program point, procedure
entry matrices (with ``h*``/``h**`` symbolic handles), procedure summaries
(read-only vs. update arguments) and structure diagnostics.
"""

from .context import AnalysisContext, AnalysisRecorder, AnalysisStats
from .engine import (
    AnalysisResult,
    BatchAnalyzer,
    analyze_many,
    analyze_program,
    analyze_program_adaptive,
    analyze_program_reference,
)
from .limits import DEFAULT_LIMITS, AdaptiveLimits, AnalysisLimits
from .telemetry import WideningTally, widening_scope
from .pipeline import pass_names, run_pipeline
from .matrix import MatrixRow, PathMatrix, caller_symbol, is_symbolic, row_delta, stacked_symbol
from .paths import (
    Direction,
    Path,
    PathSegment,
    append_link,
    cancel_first,
    concat,
    format_path,
    link_path,
    make_path,
    parse_path,
    subsumes,
)
from .pathset import PathSet
from .reanalysis import (
    IncrementalSession,
    ReanalysisReport,
    VisitMemo,
    cold_solve,
    result_digest,
)
from .structure import Certainty, DiagnosticKind, StructureDiagnostic
from .summaries import ProcedureSummary, compute_summaries
from .transfer import (
    GLOBAL_TRANSFER_CACHE,
    TransferCache,
    TransferResult,
    apply_assign_new,
    apply_assign_nil,
    apply_basic_statement,
    apply_basic_statement_cached,
    apply_copy,
    apply_load_field,
    apply_store_field,
)

__all__ = [
    "analyze_program",
    "analyze_program_adaptive",
    "analyze_program_reference",
    "analyze_many",
    "BatchAnalyzer",
    "AdaptiveLimits",
    "WideningTally",
    "widening_scope",
    "AnalysisContext",
    "AnalysisRecorder",
    "AnalysisStats",
    "AnalysisResult",
    "run_pipeline",
    "pass_names",
    "TransferCache",
    "GLOBAL_TRANSFER_CACHE",
    "apply_basic_statement_cached",
    "AnalysisLimits",
    "DEFAULT_LIMITS",
    "PathMatrix",
    "MatrixRow",
    "row_delta",
    "PathSet",
    "Path",
    "PathSegment",
    "Direction",
    "parse_path",
    "format_path",
    "make_path",
    "concat",
    "append_link",
    "cancel_first",
    "link_path",
    "subsumes",
    "caller_symbol",
    "stacked_symbol",
    "is_symbolic",
    "StructureDiagnostic",
    "DiagnosticKind",
    "Certainty",
    "ProcedureSummary",
    "compute_summaries",
    "TransferResult",
    "apply_basic_statement",
    "apply_assign_nil",
    "apply_assign_new",
    "apply_copy",
    "apply_load_field",
    "apply_store_field",
    "IncrementalSession",
    "ReanalysisReport",
    "VisitMemo",
    "cold_solve",
    "result_digest",
]
