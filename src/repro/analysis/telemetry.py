"""Widening telemetry: first-class counters for the domain's finiteness bounds.

The path-expression domain stays finite by *widening* (see
:mod:`repro.analysis.limits`): over-long exact counts become open-ended,
over-long paths collapse their tail into a ``D`` segment, and oversized
path sets collapse towards ``{S?, D+?}``.  Those events are the evidence
that the configured :class:`~repro.analysis.limits.AnalysisLimits` actually
bit — the signal the adaptive-limits escalation policy and the workload
benches consume.

The domain operations that widen (:func:`repro.analysis.paths.make_path`
normalization, :meth:`repro.analysis.pathset.PathSet.collapse`) are pure
functions with no analysis context in scope, so events are reported through
a small module-level *scope stack*:

* :func:`widening_scope` installs a tally (usually an
  :class:`~repro.analysis.context.AnalysisStats`, which carries the same
  counter attributes) for the duration of a pipeline run;
* the ``note_*`` functions increment the innermost active tally — events
  are attributed to exactly one owner, never double-counted;
* :class:`WideningTally` is the plain counter bag the memoized transfer
  layer uses to *capture* the events of one transfer computation so they
  can be stored with the cache entry and replayed on every later hit
  (see :func:`repro.analysis.transfer.apply_basic_statement_cached`).
  Replay-on-hit is what makes the counters exact under memoization — and
  therefore exactly additive across shard processes.

With no scope installed (e.g. the retained reference engine, which keeps
no stats) the ``note_*`` functions are no-ops.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List


@dataclass
class WideningTally:
    """Counters for the three domain-level widening events.

    Any object with these three integer attributes can serve as a scope
    target; :class:`~repro.analysis.context.AnalysisStats` does.
    """

    #: Paths whose tail collapsed into a ``D`` segment (``max_segments``).
    segment_collapses: int = 0
    #: Exact repetition counts widened to open-ended (``max_exact_count``).
    exact_widenings: int = 0
    #: Oversized path-matrix entries collapsed (``max_paths_per_entry``).
    path_set_collapses: int = 0

    FIELDS = ("segment_collapses", "exact_widenings", "path_set_collapses")

    @property
    def fired(self) -> bool:
        return bool(self.segment_collapses or self.exact_widenings or self.path_set_collapses)

    def add_into(self, target) -> None:
        """Add these counts onto any object carrying the same attributes.

        Attributes the target lacks are skipped: the transfer layer accepts
        minimal stats objects that only track hit/miss counters.
        """
        for name in self.FIELDS:
            current = getattr(target, name, None)
            if current is not None:
                setattr(target, name, current + getattr(self, name))


#: The active scope stack; ``note_*`` hits the innermost entry only.
_SCOPES: List[object] = []


@contextmanager
def widening_scope(tally) -> Iterator[object]:
    """Route widening events to ``tally`` while the block runs.

    Scopes nest: the innermost one wins, so a transfer-level capture
    temporarily shadows the run-level stats (the transfer layer is then
    responsible for folding the captured delta back — once — wherever it
    belongs).
    """
    _SCOPES.append(tally)
    try:
        yield tally
    finally:
        _SCOPES.pop()


def replay(tally: WideningTally) -> None:
    """Re-fire a captured tally into the innermost active scope.

    The memoized path/transfer operations capture the widening events of a
    computed call and replay them on every memo hit, so the counters read
    exactly as if each call had been computed (deterministic per call, and
    therefore additive across processes).
    """
    if _SCOPES:
        tally.add_into(_SCOPES[-1])


def note_segment_collapse() -> None:
    """A path lost tail structure to the ``max_segments`` bound."""
    if _SCOPES:
        _SCOPES[-1].segment_collapses += 1


def note_exact_widening() -> None:
    """An exact repetition count was widened to open-ended."""
    if _SCOPES:
        _SCOPES[-1].exact_widenings += 1


def note_path_set_collapse() -> None:
    """An oversized path-matrix entry was collapsed."""
    if _SCOPES:
        _SCOPES[-1].path_set_collapses += 1
