"""Path sets — the entries of a path matrix.

``p[a, b]`` is a *set of paths* describing every way node ``b`` may be
reached from node ``a`` (plus ``S`` when they may be the same node).  An
empty set means the two handles are known to be unrelated — the fact the
parallelizer exploits.

Two different combination operations are needed:

* :meth:`PathSet.union` — accumulate paths discovered along the *same*
  control path (e.g. the new edges added by ``a.f := b``); a path definite
  in either argument stays definite.
* :meth:`PathSet.merge` — join information from *different* control paths
  (the two arms of an ``if``, successive loop iterations); a path is
  definite only if it is definite in **both** arguments, otherwise it is
  demoted to possible.
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from . import telemetry
from .limits import DEFAULT_LIMITS, AnalysisLimits
from .paths import (
    MAYBE_SAME,
    SAME,
    Path,
    PathSegment,
    Direction,
    format_path,
    generalize_pair,
    parse_path,
    subsumes,
)


class PathSet:
    """An immutable set of paths keyed by their segment sequence.

    Internally a mapping from the *definite form* of each member path to its
    definiteness flag; two paths with the same segments but different
    definiteness collapse into one entry.  Keying by interned :class:`Path`
    objects (rather than raw segment tuples) means every table probe and the
    intern-key frozenset hash below run on precomputed integer hashes — the
    cold-path cost of building a set is dict stores over already-hashed
    keys.  Paths that are subsumed by a more general member of the set
    (e.g. ``L1`` in the presence of ``L+``) are dropped unless they carry a
    *definiteness* guarantee the subsumer lacks — this keeps the sets small
    and makes the iterative loop/recursion approximation converge.

    Path sets are *hash-consed*: after canonicalization, identical contents
    always yield the **same** instance, so equality is an identity check,
    the hash is precomputed, and the merge/union/collapse operations used on
    every control-flow join are memoized over object pairs.
    """

    __slots__ = ("_paths", "_hash", "_format", "_elems", "__weakref__")

    # Unlike the (small, finite) Path/PathSegment tables, distinct path-set
    # contents are combinatorial, so the intern table holds its values
    # weakly: a set no longer referenced anywhere is collected and its slot
    # reclaimed.  The identity law still holds for all *live* sets.
    _intern: "weakref.WeakValueDictionary[FrozenSet[Tuple[Path, bool]], PathSet]" = (
        weakref.WeakValueDictionary()
    )

    def __new__(cls, paths: Iterable[Path] = ()) -> "PathSet":
        table: Dict[Path, bool] = {}
        for path in paths:
            key = path if path.definite else path.as_definite()
            existing = table.get(key)
            if existing is None:
                table[key] = path.definite
            else:
                # Same-derivation accumulation: definite dominates.
                table[key] = existing or path.definite
        return cls._of_table(table)

    @classmethod
    def _of_table(cls, table: Dict[Path, bool]) -> "PathSet":
        """Intern a set from an accumulated ``{definite-form: definite}`` table.

        The fast path the combination operations use: they build the table
        directly from their operands' tables (whose keys are already in
        definite form), skipping the per-path accumulation loop.
        """
        table = _drop_subsumed(table)
        key = frozenset(table.items())
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        self._paths = table
        self._hash = hash(key)
        self._format: Optional[str] = None
        self._elems: Optional[Tuple[Path, ...]] = None
        cls._intern[key] = self
        return self

    def __reduce__(self):
        return (
            _pathset_from_items,
            (tuple((key.segments, definite) for key, definite in self._paths.items()),),
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def empty() -> "PathSet":
        return _EMPTY

    @staticmethod
    def same(definite: bool = True) -> "PathSet":
        """The singleton set {S} (or {S?})."""
        return _SAME_SET if definite else _MAYBE_SAME_SET

    @staticmethod
    def of(*paths: Path) -> "PathSet":
        return PathSet(paths)

    @staticmethod
    def parse(text: str) -> "PathSet":
        """Parse a comma-separated list of path expressions, e.g. ``"S?, D+?"``.

        An empty / ``"-"`` / ``"{}"`` string gives the empty set.
        """
        cleaned = text.strip()
        if cleaned in ("", "-", "{}"):
            return PathSet.empty()
        return PathSet(parse_path(part) for part in cleaned.split(",") if part.strip())

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self._paths)

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self) -> Iterator[Path]:
        # Interned sets are iterated many times (transfer loops, renders);
        # materialize the member paths once per set.
        elems = self._elems
        if elems is None:
            elems = self._elems = tuple(
                key if definite else key.as_possible()
                for key, definite in self._paths.items()
            )
        return iter(elems)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PathSet):
            return NotImplemented
        # Interned: distinct instances have distinct canonical contents.
        return self._paths == other._paths

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PathSet({self.format()!r})"

    @property
    def is_empty(self) -> bool:
        """True when the two handles are known to be unrelated."""
        return not self._paths

    @property
    def has_same(self) -> bool:
        """True if the set contains ``S`` or ``S?`` (possible aliasing)."""
        return SAME in self._paths

    @property
    def has_definite_same(self) -> bool:
        """True if the set contains a definite ``S`` (guaranteed aliasing)."""
        return self._paths.get(SAME, False) is True

    @property
    def has_possible_same(self) -> bool:
        """True if the set contains ``S?`` but not definite ``S``."""
        return self._paths.get(SAME, None) is False

    @property
    def has_proper_path(self) -> bool:
        """True if the set contains a non-``S`` (descendant) path."""
        return any(not key.is_same for key in self._paths)

    def definiteness_of_same(self) -> Optional[bool]:
        """None if no S path, else its definiteness."""
        return self._paths.get(SAME)

    def paths(self) -> List[Path]:
        return list(self)

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------

    def union(self, other: "PathSet") -> "PathSet":
        """Accumulate paths along the same control path (definite dominates)."""
        if not other or self is other:
            return self
        if not self:
            return other
        key = (self, other)
        cached = _UNION_CACHE.get(key)
        if cached is not None:
            return cached
        table = dict(self._paths)
        for path, definite in other._paths.items():
            if definite:
                table[path] = True
            elif path not in table:
                table[path] = False
        result = PathSet._of_table(table)
        _cache_put(_UNION_CACHE, key, result)
        return result

    def merge(self, other: "PathSet") -> "PathSet":
        """Control-flow join: definite only where definite on both sides.

        Paths present on only one side are kept but demoted to possible —
        on the other control path they might not exist.
        """
        if self is other:
            return self
        key = (self, other)
        cached = _MERGE_CACHE.get(key)
        if cached is not None:
            return cached
        table: Dict[Path, bool] = {}
        for path, definite in self._paths.items():
            other_definite = other._paths.get(path)
            if other_definite is None:
                table[path] = False
            else:
                table[path] = definite and other_definite
        for path in other._paths:
            if path not in self._paths:
                table[path] = False
        result = PathSet._of_table(table)
        _cache_put(_MERGE_CACHE, key, result)
        return result

    def weakened(self) -> "PathSet":
        """Every path demoted to possible (used by destructive updates)."""
        cached = _WEAKENED_CACHE.get(self)
        if cached is not None:
            return cached
        result = PathSet._of_table(dict.fromkeys(self._paths, False))
        _cache_put(_WEAKENED_CACHE, self, result)
        return result

    def map(self, transform) -> "PathSet":
        """Apply ``transform: Path -> Iterable[Path]`` and collect the results."""
        collected: List[Path] = []
        for path in self:
            collected.extend(transform(path))
        return PathSet(collected)

    # ------------------------------------------------------------------
    # Widening
    # ------------------------------------------------------------------

    def collapse(self, limits: AnalysisLimits = DEFAULT_LIMITS) -> "PathSet":
        """Widen an oversized entry down to at most a handful of paths.

        All non-``S`` paths are generalized pairwise into a single
        open-ended path; an ``S`` member is kept separately.  The result is
        a sound over-approximation of the original set.

        The widening event is counted *before* the memo lookup: an
        oversized entry fired the ``max_paths_per_entry`` bound whether or
        not its collapsed form was computed earlier, so the counters stay
        deterministic per call under memoization.
        """
        if len(self._paths) <= limits.max_paths_per_entry:
            return self
        telemetry.note_path_set_collapse()
        key = (self, limits)
        cached = _COLLAPSE_CACHE.get(key)
        if cached is not None:
            return cached
        same_definite = self._paths.get(SAME)
        collapsed: Optional[Path] = None
        for path, definite in self._paths.items():
            if path.is_same:
                continue
            member = path.with_definite(definite)
            if collapsed is None:
                collapsed = member
            else:
                collapsed = generalize_pair(collapsed, member, limits)
        result_paths: List[Path] = []
        if same_definite is not None:
            result_paths.append(SAME.with_definite(same_definite))
        if collapsed is not None:
            result_paths.append(collapsed)
        result = PathSet(result_paths)
        _cache_put(_COLLAPSE_CACHE, key, result)
        return result

    def is_subset_of(self, other: "PathSet") -> bool:
        """Partial order used by fixed-point tests: self ⊑ other.

        Every path of ``self`` must appear in ``other`` with equal-or-weaker
        definiteness (a definite path is covered by the same definite path;
        a possible path is covered by either form).
        """
        for path, definite in self._paths.items():
            other_definite = other._paths.get(path)
            if other_definite is None:
                return False
            if definite and not other_definite:
                # other only has the possible form; the definite claim of
                # self is *stronger*, so self is not below other.
                continue
        return True

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def format(self) -> str:
        """Comma-separated rendering, e.g. ``"S?, D+?"``; empty set is ``""``.

        Interned sets are immutable, so the rendering is computed once and
        cached — it is the textual identity the canonical matrix encodings
        (sharded bit-identity checks, persistent cache keys) are built from.
        """
        if self._format is None:
            ordered = sorted(self, key=lambda p: (p.min_length, format_path(p)))
            self._format = ", ".join(format_path(path) for path in ordered)
        return self._format

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.format() or "{}"


def _drop_subsumed(table: Dict[Path, bool]) -> Dict[Path, bool]:
    """Remove paths covered by a more general member of the same set.

    A path is dropped only if some *other* path subsumes it and the subsumer
    is at least as definite (so no definiteness guarantee is lost).
    """
    if len(table) <= 1:
        return table
    keys = list(table)
    kept: Dict[Path, bool] = {}
    for path in keys:
        definite = table[path]
        dropped = False
        for other in keys:
            if other is path:
                continue
            if subsumes(other, path) and (table[other] or not definite):
                dropped = True
                break
        if not dropped:
            kept[path] = definite
    # Degenerate safety net: never drop everything.
    if not kept:
        return table
    return kept


def _pathset_from_items(items: Tuple[Tuple[Tuple[PathSegment, ...], bool], ...]) -> PathSet:
    """Pickle support: rebuild (and re-intern) a path set from its items."""
    return PathSet(Path(segments, definite) for segments, definite in items)


#: Memo tables for the binary/widening operations.  Keys hold strong
#: references to interned path sets, so entries can never go stale; the
#: caches are cleared wholesale if they ever reach the (generous) cap.
_UNION_CACHE: Dict[Tuple["PathSet", "PathSet"], "PathSet"] = {}
_MERGE_CACHE: Dict[Tuple["PathSet", "PathSet"], "PathSet"] = {}
_WEAKENED_CACHE: Dict["PathSet", "PathSet"] = {}
_COLLAPSE_CACHE: Dict[Tuple["PathSet", AnalysisLimits], "PathSet"] = {}
_OP_CACHE_CAP = 1 << 16


def _cache_put(cache: Dict, key, value) -> None:
    if len(cache) >= _OP_CACHE_CAP:  # pragma: no cover - safety bound
        cache.clear()
    cache[key] = value


def intern_table_sizes() -> Dict[str, int]:
    """Sizes of the global hash-consing/memo tables (for stats and docs).

    Covers every representation layer: the packed-segment and path tables
    (int-keyed after the packed-kernel change), path sets, the matrix-layer
    tables (rows, whole matrices, and the handle symbol table), and the
    operation memo spaces.
    """
    from .symbols import GLOBAL_SYMBOLS
    from .paths import (
        _APPEND_CACHE,
        _CANCEL_CACHE,
        _INTERSECT_CACHE,
        _SUBSUMES_CACHE,
        Path as _Path,
        PathSegment as _Segment,
    )
    from .matrix import matrix_intern_table_sizes

    return {
        "segments_interned": len(_Segment._intern),
        "paths_interned": len(_Path._intern),
        "pathsets_interned": len(PathSet._intern),
        **matrix_intern_table_sizes(),
        "symbols_interned": len(GLOBAL_SYMBOLS),
        "union_memo": len(_UNION_CACHE),
        "merge_memo": len(_MERGE_CACHE),
        "weakened_memo": len(_WEAKENED_CACHE),
        "collapse_memo": len(_COLLAPSE_CACHE),
        "subsumes_memo": len(_SUBSUMES_CACHE),
        "intersect_memo": len(_INTERSECT_CACHE),
        "append_memo": len(_APPEND_CACHE),
        "cancel_memo": len(_CANCEL_CACHE),
    }


_EMPTY = PathSet()
_SAME_SET = PathSet((SAME,))
_MAYBE_SAME_SET = PathSet((MAYBE_SAME,))
