"""Path sets — the entries of a path matrix.

``p[a, b]`` is a *set of paths* describing every way node ``b`` may be
reached from node ``a`` (plus ``S`` when they may be the same node).  An
empty set means the two handles are known to be unrelated — the fact the
parallelizer exploits.

Two different combination operations are needed:

* :meth:`PathSet.union` — accumulate paths discovered along the *same*
  control path (e.g. the new edges added by ``a.f := b``); a path definite
  in either argument stays definite.
* :meth:`PathSet.merge` — join information from *different* control paths
  (the two arms of an ``if``, successive loop iterations); a path is
  definite only if it is definite in **both** arguments, otherwise it is
  demoted to possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .limits import DEFAULT_LIMITS, AnalysisLimits
from .paths import (
    MAYBE_SAME,
    Path,
    PathSegment,
    Direction,
    format_path,
    generalize_pair,
    parse_path,
    subsumes,
)


class PathSet:
    """An immutable set of paths keyed by their segment sequence.

    Internally a mapping ``segments -> definite``; two paths with the same
    segments but different definiteness collapse into one entry.  Paths that
    are subsumed by a more general member of the set (e.g. ``L1`` in the
    presence of ``L+``) are dropped unless they carry a *definiteness*
    guarantee the subsumer lacks — this keeps the sets small and makes the
    iterative loop/recursion approximation converge.
    """

    __slots__ = ("_paths",)

    def __init__(self, paths: Iterable[Path] = ()):
        table: Dict[Tuple[PathSegment, ...], bool] = {}
        for path in paths:
            existing = table.get(path.segments)
            if existing is None:
                table[path.segments] = path.definite
            else:
                # Same-derivation accumulation: definite dominates.
                table[path.segments] = existing or path.definite
        self._paths = _drop_subsumed(table)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def empty() -> "PathSet":
        return _EMPTY

    @staticmethod
    def same(definite: bool = True) -> "PathSet":
        """The singleton set {S} (or {S?})."""
        return PathSet([Path((), definite)])

    @staticmethod
    def of(*paths: Path) -> "PathSet":
        return PathSet(paths)

    @staticmethod
    def parse(text: str) -> "PathSet":
        """Parse a comma-separated list of path expressions, e.g. ``"S?, D+?"``.

        An empty / ``"-"`` / ``"{}"`` string gives the empty set.
        """
        cleaned = text.strip()
        if cleaned in ("", "-", "{}"):
            return PathSet.empty()
        return PathSet(parse_path(part) for part in cleaned.split(",") if part.strip())

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self._paths)

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self) -> Iterator[Path]:
        for segments, definite in self._paths.items():
            yield Path(segments, definite)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathSet):
            return NotImplemented
        return self._paths == other._paths

    def __hash__(self) -> int:
        return hash(frozenset(self._paths.items()))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PathSet({self.format()!r})"

    @property
    def is_empty(self) -> bool:
        """True when the two handles are known to be unrelated."""
        return not self._paths

    @property
    def has_same(self) -> bool:
        """True if the set contains ``S`` or ``S?`` (possible aliasing)."""
        return () in self._paths

    @property
    def has_definite_same(self) -> bool:
        """True if the set contains a definite ``S`` (guaranteed aliasing)."""
        return self._paths.get((), False) is True

    @property
    def has_possible_same(self) -> bool:
        """True if the set contains ``S?`` but not definite ``S``."""
        return self._paths.get((), None) is False

    @property
    def has_proper_path(self) -> bool:
        """True if the set contains a non-``S`` (descendant) path."""
        return any(segments for segments in self._paths)

    def definiteness_of_same(self) -> Optional[bool]:
        """None if no S path, else its definiteness."""
        return self._paths.get(())

    def paths(self) -> List[Path]:
        return list(self)

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------

    def union(self, other: "PathSet") -> "PathSet":
        """Accumulate paths along the same control path (definite dominates)."""
        if not other:
            return self
        if not self:
            return other
        return PathSet(list(self) + list(other))

    def merge(self, other: "PathSet") -> "PathSet":
        """Control-flow join: definite only where definite on both sides.

        Paths present on only one side are kept but demoted to possible —
        on the other control path they might not exist.
        """
        result: List[Path] = []
        for segments, definite in self._paths.items():
            other_definite = other._paths.get(segments)
            if other_definite is None:
                result.append(Path(segments, False))
            else:
                result.append(Path(segments, definite and other_definite))
        for segments, definite in other._paths.items():
            if segments not in self._paths:
                result.append(Path(segments, False))
        return PathSet(result)

    def weakened(self) -> "PathSet":
        """Every path demoted to possible (used by destructive updates)."""
        return PathSet(Path(segments, False) for segments in self._paths)

    def map(self, transform) -> "PathSet":
        """Apply ``transform: Path -> Iterable[Path]`` and collect the results."""
        collected: List[Path] = []
        for path in self:
            collected.extend(transform(path))
        return PathSet(collected)

    # ------------------------------------------------------------------
    # Widening
    # ------------------------------------------------------------------

    def collapse(self, limits: AnalysisLimits = DEFAULT_LIMITS) -> "PathSet":
        """Widen an oversized entry down to at most a handful of paths.

        All non-``S`` paths are generalized pairwise into a single
        open-ended path; an ``S`` member is kept separately.  The result is
        a sound over-approximation of the original set.
        """
        if len(self._paths) <= limits.max_paths_per_entry:
            return self
        same_definite = self._paths.get(())
        proper = [Path(segments, definite) for segments, definite in self._paths.items() if segments]
        collapsed: Optional[Path] = None
        for path in proper:
            if collapsed is None:
                collapsed = path
            else:
                collapsed = generalize_pair(collapsed, path, limits)
        result: List[Path] = []
        if same_definite is not None:
            result.append(Path((), same_definite))
        if collapsed is not None:
            result.append(collapsed)
        return PathSet(result)

    def is_subset_of(self, other: "PathSet") -> bool:
        """Partial order used by fixed-point tests: self ⊑ other.

        Every path of ``self`` must appear in ``other`` with equal-or-weaker
        definiteness (a definite path is covered by the same definite path;
        a possible path is covered by either form).
        """
        for segments, definite in self._paths.items():
            other_definite = other._paths.get(segments)
            if other_definite is None:
                return False
            if definite and not other_definite:
                # other only has the possible form; the definite claim of
                # self is *stronger*, so self is not below other.
                continue
        return True

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def format(self) -> str:
        """Comma-separated rendering, e.g. ``"S?, D+?"``; empty set is ``""``."""
        ordered = sorted(self, key=lambda p: (p.min_length, format_path(p)))
        return ", ".join(format_path(path) for path in ordered)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.format() or "{}"


def _drop_subsumed(
    table: Dict[Tuple[PathSegment, ...], bool]
) -> Dict[Tuple[PathSegment, ...], bool]:
    """Remove paths covered by a more general member of the same set.

    A path is dropped only if some *other* path subsumes it and the subsumer
    is at least as definite (so no definiteness guarantee is lost).
    """
    if len(table) <= 1:
        return table
    items = [Path(segments, definite) for segments, definite in table.items()]
    kept: Dict[Tuple[PathSegment, ...], bool] = {}
    for path in items:
        dropped = False
        for other in items:
            if other.segments == path.segments:
                continue
            if subsumes(other, path) and (other.definite or not path.definite):
                dropped = True
                break
        if not dropped:
            kept[path.segments] = path.definite
    # Degenerate safety net: never drop everything.
    if not kept:
        return table
    return kept


_EMPTY = PathSet()
