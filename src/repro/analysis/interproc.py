"""Interprocedural machinery: call-entry projection, symbolic handles, call effects.

Two pieces (Section 5.2 and the ``pB``/``pC`` matrices of Figure 7):

**Entry matrices with symbolic handles.**  To obtain a path matrix valid at
points *inside* a (possibly recursive) procedure, every call site of the
procedure is projected onto its handle formals and the projections are
merged.  Two symbolic handles per formal ``h`` keep track of the calling
context:

* ``h*`` — the argument handle of the original (non-recursive) caller;
* ``h**`` — the union of the argument handles of all stacked recursive
  invocations.

At a non-recursive call site the actual *is* the original caller's argument,
so the projection sets ``p[h*, h] = {S}``.  At a self-recursive call site
the current formal is folded into ``h**`` and the actual becomes the new
``h``.  Iterating this until the entry matrices stabilize yields the
summary "all possible relationships between handles for the recursive
calls" of the paper.

**Call effects.**  After a call returns, the caller's matrix must
conservatively reflect whatever the callee may have done.  Calls that do not
modify links (e.g. ``add_n``) leave the matrix unchanged; link-modifying
calls (e.g. ``reverse``) weaken the relationships among the caller's handles
that can reach an update argument's region, and for handle-returning
functions the result is related to the actuals it may be derived from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..sil import ast
from .limits import DEFAULT_LIMITS, AnalysisLimits
from .matrix import PathMatrix, caller_symbol, stacked_symbol
from .paths import MAYBE_SAME, Direction, Path, PathSegment
from .pathset import PathSet
from .summaries import ProcedureSummary


def maybe_descendant() -> PathSet:
    """The coarse "somewhere at or below" relationship ``{S?, D+?}``."""
    down = Path((PathSegment(Direction.DOWN, 1, False),), False)
    return PathSet([MAYBE_SAME, down])


def handle_actual_names(
    args: Sequence[ast.Expr], callee: ast.Procedure
) -> List[Tuple[str, Optional[str]]]:
    """Pair each handle formal of ``callee`` with the actual's variable name.

    Non-variable actuals (``nil``) map to ``None``.
    """
    pairs: List[Tuple[str, Optional[str]]] = []
    for param, arg in zip(callee.params, args):
        if param.type is not ast.SilType.HANDLE:
            continue
        name = arg.ident if isinstance(arg, ast.Name) else None
        pairs.append((param.name, name))
    return pairs


# ---------------------------------------------------------------------------
# Entry-matrix projection
# ---------------------------------------------------------------------------


def initial_entry_matrix(proc: ast.Procedure, limits: AnalysisLimits = DEFAULT_LIMITS) -> PathMatrix:
    """The most optimistic entry matrix: formals and symbolic handles, no relations.

    Used for ``main`` (no callers) and as the starting point before any call
    site has been seen.  For every handle formal ``h`` the matrix also tracks
    ``h*`` with ``p[h*, h] = {S}`` (on the first invocation the caller's
    argument is the formal itself) and ``h**`` with no relationships.
    """
    matrix = PathMatrix(limits=limits)
    for formal in proc.handle_params:
        matrix.add_handle(formal)
        matrix.add_handle(caller_symbol(formal))
        matrix.add_handle(stacked_symbol(formal))
        matrix.set(caller_symbol(formal), formal, PathSet.same())
    return matrix


def entry_handles(proc: ast.Procedure) -> List[str]:
    """The handles an entry matrix of ``proc`` tracks."""
    result: List[str] = []
    for formal in proc.handle_params:
        result.extend([formal, caller_symbol(formal), stacked_symbol(formal)])
    return result


def project_external_call(
    call_site_matrix: PathMatrix,
    args: Sequence[ast.Expr],
    callee: ast.Procedure,
    limits: AnalysisLimits = DEFAULT_LIMITS,
) -> PathMatrix:
    """Project the caller's matrix at a *non-recursive* call site onto the callee.

    Actuals are renamed to formals; each ``h*`` is bound to the actual
    (``p[h*, h] = {S}``); each ``h**`` starts with no relationships.
    """
    pairs = handle_actual_names(args, callee)
    actuals = [name for _, name in pairs if name is not None]
    restricted = call_site_matrix.restricted(actuals)
    renaming = {name: formal for formal, name in pairs if name is not None}
    projected = restricted.renamed(renaming)

    result = PathMatrix(entry_handles(callee), limits=limits)
    for source, target, paths in projected.entries():
        result.set(source, target, paths)
    for formal, name in pairs:
        result.add_handle(formal)
        if name is not None:
            result.set(caller_symbol(formal), formal, PathSet.same())
    return result


def project_recursive_call(
    call_site_matrix: PathMatrix,
    args: Sequence[ast.Expr],
    callee: ast.Procedure,
    limits: AnalysisLimits = DEFAULT_LIMITS,
) -> PathMatrix:
    """Project the matrix at a *self-recursive* call site onto the next invocation.

    The current formal ``h`` is folded into ``h**`` (it becomes one of the
    stacked invocations' arguments), ``h*`` and ``h**`` carry over, and the
    actual becomes the new ``h``.
    """
    pairs = handle_actual_names(args, callee)
    keep: List[str] = []
    renaming: Dict[str, str] = {}
    for formal, actual in pairs:
        renaming[formal] = stacked_symbol(formal)
        if actual is not None:
            renaming[actual] = formal
            keep.append(actual)
        keep.extend([formal, caller_symbol(formal), stacked_symbol(formal)])

    restricted = call_site_matrix.restricted(keep)
    projected = restricted.renamed(renaming)

    result = PathMatrix(entry_handles(callee), limits=limits)
    for source, target, paths in projected.entries():
        result.set(source, target, paths)
    return result


# ---------------------------------------------------------------------------
# Call effect on the caller's matrix
# ---------------------------------------------------------------------------


@dataclass
class CallEffect:
    """What a call may have done to the caller's matrix."""

    matrix: PathMatrix
    #: Caller handles whose relationships were weakened.
    weakened: List[str]


def apply_call_effect(
    matrix: PathMatrix,
    summary: ProcedureSummary,
    args: Sequence[ast.Expr],
    callee: ast.Procedure,
    result_target: Optional[str] = None,
    result_is_handle: bool = False,
    limits: AnalysisLimits = DEFAULT_LIMITS,
) -> CallEffect:
    """The caller-side effect of ``callee(args)`` (optionally ``x := callee(args)``).

    The key TREE property (Section 3.1) bounds what the callee can touch:
    the only nodes it can access are those reached from its handle
    arguments, and in a TREE nodes *above* an argument can never be reached
    from it.  Therefore a link-modifying callee can only

    * sever or rearrange relationships whose paths pass *through* the region
      at or below an update argument, and
    * create new relationships from a node at/below an update argument down
      to a node at/below any (other) argument — by linking one argument's
      structure under another's.

    Calls that never modify links (``modifies_links`` False, e.g. ``add_n``)
    leave the matrix untouched.
    """
    result = matrix.copy()
    pairs = handle_actual_names(args, callee)
    actuals = [name for _, name in pairs if name is not None]
    update_actuals = [
        name for formal, name in pairs if name is not None and summary.is_update(formal)
    ]

    weakened: List[str] = []
    if summary.modifies_links and update_actuals:
        at_or_below_update = _at_or_below(matrix, update_actuals, strict=False)
        strictly_below_update = _at_or_below(matrix, update_actuals, strict=True)
        at_or_below_any = _at_or_below(matrix, actuals, strict=False)

        # 1. Demote relationships whose witnessing paths may traverse the
        #    restructured region.
        for first in matrix.iter_handles():
            for second in matrix.iter_handles():
                if first == second:
                    continue
                if second in strictly_below_update or first in at_or_below_update:
                    entry = result.get(first, second)
                    if not entry.is_empty and any(path.definite for path in entry):
                        result.set(first, second, entry.weakened())
                        if first not in weakened:
                            weakened.append(first)

        # 2. Add possible new relationships the callee could have created by
        #    linking one argument's structure below an update argument's.
        for first in at_or_below_update:
            for second in at_or_below_any | at_or_below_update:
                if first == second:
                    continue
                result.add_paths(first, second, maybe_descendant())

    if result_target is not None and result_is_handle:
        result.remove_handle(result_target)
        result.add_handle(result_target)
        derived_actuals = [
            name
            for formal, name in pairs
            if name is not None and formal in summary.result_derived_from
        ]
        for actual in derived_actuals:
            # The result is obtained by following links down from the actual
            # (or is the actual itself).
            result.set(actual, result_target, maybe_descendant())
            result.set(result_target, actual, PathSet.same(definite=False))
    return CallEffect(matrix=result, weakened=weakened)


def _at_or_below(matrix: PathMatrix, anchors: Sequence[str], strict: bool) -> Set[str]:
    """Handles possibly located below one of ``anchors``.

    ``strict=False`` includes the anchors themselves and their (possible)
    aliases; ``strict=True`` keeps only handles with a proper (non-``S``)
    descending path from some anchor.
    """
    result: Set[str] = set()
    anchor_set = set(anchors)
    for handle in matrix.iter_handles():
        for anchor in anchor_set:
            if handle == anchor:
                if not strict:
                    result.add(handle)
                continue
            entry = matrix.get(anchor, handle)
            if entry.is_empty:
                continue
            if strict:
                if entry.has_proper_path:
                    result.add(handle)
            else:
                result.add(handle)
    return result
