"""The staged pass pipeline behind :func:`repro.analysis.analyze_program`.

The whole-program analysis is organised as a short sequence of passes over
one :class:`~repro.analysis.context.AnalysisContext`:

1. **validate** — require a normalized (core) program;
2. **typecheck** — compute :class:`~repro.sil.typecheck.TypeInfo` unless the
   caller already supplied it;
3. **summaries** — the flow-insensitive read/update summaries of Section 5.2;
4. **solve** — the worklist-driven interprocedural fixed point (below);
5. **assemble** — stitch the final per-procedure recordings into one
   :class:`~repro.analysis.context.AnalysisRecorder`.

**The worklist solver.**  The seed engine re-analyzed *every* reachable
procedure on *every* interprocedural round and then ran one more full
recording pass once the entry matrices had stabilized.  The solver here
tracks entry-matrix dirtiness instead: a procedure is (re-)analyzed only
when it is discovered or its entry matrix absorbs a changed call-site
projection.  Because procedure summaries are fixed before the fixed point
starts, a procedure's recorded program points depend only on its own entry
matrix — so the recording made during a procedure's *last* visit is already
the final one, and no extra recording pass is needed.  Entry matrices grow
by the same commutative/associative merge the seed used, so the solved
fixed point is identical (the golden tests compare against the retained
reference engine).

**Incremental, delta-driven propagation.**  Entry matrices and call-site
projections are hash-consed (:meth:`~repro.analysis.matrix.PathMatrix.
interned`), which makes three things pointer checks instead of
canonical-encoding walks:

* a projection *identical* to one this callee already absorbed is skipped
  outright (``full_joins_avoided``) — merging it again is a no-op because
  the entry merge is idempotent;
* a genuinely new projection is absorbed row-wise via
  :meth:`~repro.analysis.matrix.PathMatrix.merge_delta`: unchanged rows
  are reused by reference, and the worklist carries only the *delta* —
  the set of entry rows changed since the callee's last visit
  (``delta_rows_propagated``, vs the ``full_rows_propagated`` a
  non-incremental engine would rewrite);
* "did the entry matrix change?" is ``merged is not current``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Set, Tuple

from ..obs.trace import span
from ..sil import ast
from ..sil.typecheck import check_program
from .context import AnalysisContext, AnalysisRecorder
from .interproc import initial_entry_matrix
from .intraproc import ProcedureAnalyzer
from .matrix import PathMatrix
from .paths import packed_segment_ops
from .summaries import compute_summaries
from .telemetry import widening_scope

#: A pass is just a named callable over the context.
AnalysisPass = Callable[[AnalysisContext], None]


def validate_pass(context: AnalysisContext) -> None:
    """Reject surface programs; the analysis needs core (normalized) SIL."""
    if not ast.program_is_core(context.program):
        raise ValueError(
            "the analysis requires a normalized (core) program; "
            "run repro.sil.normalize.normalize_program first"
        )


def typecheck_pass(context: AnalysisContext) -> None:
    """Ensure the context carries type information."""
    if context.info is None:
        context.info = check_program(context.program)


def summaries_pass(context: AnalysisContext) -> None:
    """Compute the per-procedure read/update summaries once, up front."""
    if context.summaries is None:
        context.summaries = compute_summaries(context.program, context.info)


def solve_pass(context: AnalysisContext) -> None:
    """Worklist-driven interprocedural fixed point with last-visit recording.

    Invariants:

    * ``entries[p]`` only ever changes by merging in a call-site projection
      (monotone accumulation, exactly as the seed's rounds did), and is
      always the canonical *interned* instance of its contents, so the
      convergence test is a pointer check;
    * a procedure is queued whenever its entry matrix changes, so the last
      ``ProcedureAnalyzer`` visit of every procedure used its final entry
      matrix — its recording *is* the fixed-point recording;
    * the merge is idempotent, so a projection identical (by interned
      object) to one already absorbed by the callee can be skipped without
      touching the entry matrix — the frequent case once the recursive
      projections stabilize;
    * ``pending_rows[p]`` is the delta this visit of ``p`` propagates: the
      union of the entry rows changed since ``p``'s previous visit.
    """
    program = context.program
    limits = context.limits
    stats = context.stats

    entry_proc = program.callable(context.entry_name)
    entries = {entry_proc.name: initial_entry_matrix(entry_proc, limits).interned()}
    last_visit = context.procedure_recorders
    last_visit.clear()

    pending = deque([entry_proc.name])
    queued = {entry_proc.name}
    #: Interned projections each callee's entry matrix has already absorbed.
    absorbed: Dict[str, Set[PathMatrix]] = {}
    #: Entry rows changed since each queued procedure's last visit.
    pending_rows: Dict[str, Set[str]] = {
        entry_proc.name: set(entries[entry_proc.name].iter_handles())
    }
    # Safety net mirroring the seed's bound: rounds x procedures.  The bound
    # is per *program*, but the stats object may be shared across a whole
    # batch — compare against this run's pop delta, not the cumulative count.
    pops_at_start = stats.worklist_pops
    max_pops = max(8, 4 * len(program.all_callables)) * limits.max_iterations * max(
        1, len(program.all_callables)
    )

    memo = context.visit_memo

    while pending:
        name = pending.popleft()
        queued.discard(name)
        delta = pending_rows.pop(name, None)
        stats.worklist_pops += 1

        # Cross-run reuse: a visit recording is a pure function of the
        # procedure body, the (interned) entry matrix, the limits and the
        # direct callees' summaries — and the memo is invalidated along
        # reverse call edges whenever any of those could have changed (see
        # repro.analysis.reanalysis).  A hit replays the visit by pointer:
        # same recorder, same call-site projections, and the widening
        # counters the original visit advanced are re-applied so warm
        # telemetry is bit-identical to a cold solve.
        visit = None
        if memo is not None:
            cached = memo.get(name, limits, entries[name])
            if cached is not None:
                visit, widening_delta = cached
                visit.entry_delta = frozenset(delta) if delta is not None else None
                stats.summaries_reused += 1
                for counter, amount in widening_delta.items():
                    setattr(stats, counter, getattr(stats, counter) + amount)
        if visit is None:
            visit = AnalysisRecorder()
            visit.entry_delta = frozenset(delta) if delta is not None else None
            if memo is not None:
                widening_before = stats.widening_counters()
            analyzer = ProcedureAnalyzer(
                program, context.info, context.summaries, limits, visit, context=context
            )
            with span("solve.visit", {"procedure": name}):
                analyzer.analyze_procedure(program.callable(name), entries[name])
            if memo is not None:
                widening_delta = {
                    counter: getattr(stats, counter) - widening_before[counter]
                    for counter in stats.WIDENING_FIELDS
                }
                memo.put(name, limits, entries[name], visit, widening_delta)
        last_visit[name] = visit

        for callee, projected in visit.call_sites:
            projected = projected.interned()
            seen = absorbed.setdefault(callee, set())
            if projected in seen:
                # Pointer-identical to an already-absorbed projection: the
                # idempotent entry merge would change nothing.
                stats.full_joins_avoided += 1
                continue
            current = entries.get(callee)
            if current is None:
                base = initial_entry_matrix(program.callable(callee), limits)
                merged, changed = base.merge_delta(projected)
                # A freshly-discovered procedure propagates its whole entry.
                changed = tuple(merged.iter_handles())
            else:
                merged, changed = current.merge_delta(projected)
            merged = merged.interned()
            seen.add(projected)
            if current is None or merged is not current:
                entries[callee] = merged
                stats.entry_updates += 1
                stats.delta_rows_propagated += len(changed)
                stats.full_rows_propagated += len(merged.iter_handles())
                pending_rows.setdefault(callee, set()).update(changed)
                if callee not in queued:
                    queued.add(callee)
                    pending.append(callee)
        if pending and stats.worklist_pops - pops_at_start >= max_pops:  # pragma: no cover - safety net
            stats.iteration_guard_trips += 1
            break

    context.entry_matrices = entries


def assemble_pass(context: AnalysisContext) -> None:
    """Stitch each procedure's last-visit recording into the final recorder.

    Procedures are visited in entry-matrix discovery order (the same order
    the seed's final recording pass used), so diagnostics and statement
    enumeration order are preserved.
    """
    final = AnalysisRecorder()
    for name in context.entry_matrices:
        visit = context.procedure_recorders.get(name)
        if visit is not None:
            final.absorb(visit)
    context.recorder = final
    context.stats.programs_analyzed += 1


#: The default pipeline, in execution order.
PIPELINE: Tuple[Tuple[str, AnalysisPass], ...] = (
    ("validate", validate_pass),
    ("typecheck", typecheck_pass),
    ("summaries", summaries_pass),
    ("solve", solve_pass),
    ("assemble", assemble_pass),
)


def run_pipeline(context: AnalysisContext) -> AnalysisContext:
    """Run the standard pass sequence over ``context`` and return it.

    The whole run executes under a widening-telemetry scope bound to the
    context's stats: domain widenings outside the memoized transfer layer
    (entry-matrix projections, control-flow merges, loop fixed points)
    land directly on ``context.stats``; widenings inside a transfer
    computation are captured per cache entry and folded in exactly once
    per application (see :func:`repro.analysis.transfer.
    apply_basic_statement_cached`).
    """
    allocated_before = PathMatrix.allocations
    intern_hits_before = PathMatrix.intern_hits
    packed_ops_before = packed_segment_ops()
    with widening_scope(context.stats):
        for name, analysis_pass in PIPELINE:
            with span(f"analysis.{name}"):
                analysis_pass(context)
    context.stats.matrices_allocated += PathMatrix.allocations - allocated_before
    context.stats.matrix_intern_hits += PathMatrix.intern_hits - intern_hits_before
    context.stats.packed_segment_ops += packed_segment_ops() - packed_ops_before
    return context


def pass_names() -> List[str]:
    """The pipeline stages, in order (for docs and debugging)."""
    return [name for name, _ in PIPELINE]
