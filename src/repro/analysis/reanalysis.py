"""Cross-run incremental re-analysis of edited programs.

The solver is incremental *within* a run (delta rows, PR 5) and warm
*across* runs for byte-identical programs (persistent transfer cache,
PR 4); this module makes it incremental across runs of **edited** programs:

1. diff the old and new program versions structurally
   (:func:`repro.sil.delta.diff_programs`);
2. compute the *dirty seed* — directly-edited procedures plus their
   reverse-call-graph dependents (:func:`repro.sil.delta.dirty_seed`);
3. drop exactly the memoized procedure visits and persistent transfer
   entries the edit invalidates (``summaries_invalidated``, targeted
   :meth:`~repro.analysis.transfer.TransferCache.invalidate_statements`);
4. rebase the surviving ``id(stmt)``-keyed recordings onto the new parse's
   statement objects (:func:`repro.sil.delta.statement_rebase_map`);
5. re-solve.  The solver runs the standard cold worklist algorithm — same
   discovery order, same entry-matrix evolution, hence the *least* fixed
   point — but answers every clean ``(procedure, limits, entry matrix)``
   visit from the :class:`VisitMemo` by pointer (``summaries_reused``),
   replaying the visit's captured widening counters so warm telemetry is
   bit-identical to a cold solve.

Soundness rests on one observation (golden-tested): a procedure's visit
recording is a pure function of its body, its (interned) entry matrix, the
analysis limits and its direct callees' summaries.  The first two are in
the memo key; the last two are covered by invalidating the reverse-call
closure of every edited procedure — and if a dirty caller's projection to
a clean callee actually changes, the callee's entry matrix changes with it
and the memo misses on its own.

:class:`IncrementalSession` packages the whole loop for the CLI
(``repro reanalyze``) and the analysis daemon (the ``reanalyze`` op).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple

from ..cache.backend import CacheConfig
from ..sil import ast
from ..sil.delta import (
    ProgramDelta,
    diff_programs,
    dirty_seed,
    statement_rebase_map,
)
from ..sil.typecheck import TypeInfo
from .context import AnalysisRecorder, AnalysisStats
from .engine import AnalysisResult, BatchAnalyzer
from .limits import DEFAULT_LIMITS, AnalysisLimits, LimitsLike
from .matrix import PathMatrix
from .transfer import TransferCache


def result_digest(result: AnalysisResult) -> str:
    """SHA-256 of the result's canonical encoding.

    The single-program analogue of the sharded suite's ``results_digest``:
    equal digests ⇔ bit-identical recorded matrices, entry matrices and
    diagnostics, across processes and hash seeds.
    """
    document = json.dumps(result.canonical(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


class VisitMemo:
    """Cross-run memo of completed procedure visits.

    Keyed by ``(procedure name, limits, interned entry matrix)``; the value
    is the visit's :class:`~repro.analysis.context.AnalysisRecorder` plus
    the widening-counter deltas the visit produced (replayed on every hit
    so warm telemetry matches a cold solve exactly).  Holding the interned
    entry matrices strongly also pins them in the weak intern table, so a
    later run's content-identical entry matrix resolves to the *same*
    object and the lookup is a plain tuple hash.
    """

    __slots__ = ("_entries", "fresh_names")

    def __init__(self) -> None:
        self._entries: Dict[
            Tuple[str, AnalysisLimits, PathMatrix],
            Tuple[AnalysisRecorder, Dict[str, int]],
        ] = {}
        #: Procedure names analyzed fresh (memo misses) since
        #: :meth:`begin_run` — the re-analysis report's
        #: ``procedures_reanalyzed``.
        self.fresh_names: Set[str] = set()

    def __len__(self) -> int:
        return len(self._entries)

    def begin_run(self) -> None:
        """Reset the per-solve fresh-visit tracking."""
        self.fresh_names = set()

    def get(
        self, name: str, limits: AnalysisLimits, entry_matrix: PathMatrix
    ) -> Optional[Tuple[AnalysisRecorder, Dict[str, int]]]:
        return self._entries.get((name, limits, entry_matrix.interned()))

    def put(
        self,
        name: str,
        limits: AnalysisLimits,
        entry_matrix: PathMatrix,
        recorder: AnalysisRecorder,
        widening_delta: Dict[str, int],
    ) -> None:
        self._entries[(name, limits, entry_matrix.interned())] = (
            recorder,
            dict(widening_delta),
        )
        self.fresh_names.add(name)

    def invalidate(self, names: Iterable[str]) -> int:
        """Drop every memoized visit of the named procedures; return the count."""
        doomed = set(names)
        stale = [key for key in self._entries if key[0] in doomed]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def rebase(self, mapping: Dict[int, ast.Stmt]) -> None:
        """Re-key every surviving recorder onto new statement objects.

        ``mapping`` maps ``id(old stmt) -> new stmt`` for the procedures the
        delta reported unchanged (see :func:`repro.sil.delta.
        statement_rebase_map`).  Must be called *after* :meth:`invalidate`
        has dropped the dirty procedures — every id a surviving recorder
        holds is then covered by the mapping (a visit recorder only ever
        records statements of its own procedure).
        """
        for recorder, _widening in self._entries.values():
            _rebase_recorder(recorder, mapping)

    def clear(self) -> None:
        self._entries.clear()
        self.fresh_names = set()


def _rebase_recorder(recorder: AnalysisRecorder, mapping: Dict[int, ast.Stmt]) -> None:
    """Rebuild a recorder's ``id(stmt)``-keyed state onto new statements."""
    if not recorder.statements:
        return
    before: Dict[int, PathMatrix] = {}
    after: Dict[int, PathMatrix] = {}
    statements: Dict[int, ast.Stmt] = {}
    procedure_of: Dict[int, str] = {}
    for old_id, old_stmt in recorder.statements.items():
        new_stmt = mapping.get(old_id, old_stmt)
        new_id = id(new_stmt)
        before[new_id] = recorder.before[old_id]
        after[new_id] = recorder.after[old_id]
        statements[new_id] = new_stmt
        procedure_of[new_id] = recorder.procedure_of[old_id]
    loop_histories = {}
    for old_id, history in recorder.loop_histories.items():
        new_stmt = mapping.get(old_id)
        loop_histories[id(new_stmt) if new_stmt is not None else old_id] = history
    recorder.before = before
    recorder.after = after
    recorder.statements = statements
    recorder.procedure_of = procedure_of
    recorder.loop_histories = loop_histories


@dataclass
class ReanalysisReport:
    """Everything one :meth:`IncrementalSession.reanalyze` call produced."""

    result: AnalysisResult
    delta: ProgramDelta
    #: The dirty worklist seed (sorted): edited procedures + reverse-call
    #: dependents, in the *new* program.
    dirty_seed: Tuple[str, ...]
    #: Procedures actually re-analyzed (visit-memo misses) this solve.
    procedures_reanalyzed: Tuple[str, ...]
    #: Reachable procedures in the new program's solution.
    procedures_total: int
    #: This call's counter deltas (``summaries_reused`` et al. live here).
    stats_delta: Dict[str, int] = field(default_factory=dict)
    #: Memoized transfer entries dropped by targeted invalidation.
    transfers_invalidated: int = 0
    #: This call's widening-telemetry deltas.
    widening: Dict[str, int] = field(default_factory=dict)
    digest: str = ""
    seconds: float = 0.0
    #: Filled when the caller asked for cold verification.
    verified: Optional[bool] = None
    cold_digest: Optional[str] = None
    cold_widening: Optional[Dict[str, int]] = None

    @property
    def summaries_reused(self) -> int:
        return self.stats_delta.get("summaries_reused", 0)

    @property
    def summaries_invalidated(self) -> int:
        return self.stats_delta.get("summaries_invalidated", 0)

    @property
    def dirty_seed_size(self) -> int:
        return self.stats_delta.get("dirty_seed_size", 0)

    def as_dict(self) -> Dict[str, object]:
        """A JSON-able rendering (the ``result`` itself is omitted)."""
        payload: Dict[str, object] = {
            "delta": self.delta.as_dict(),
            "dirty_seed": list(self.dirty_seed),
            "procedures_reanalyzed": list(self.procedures_reanalyzed),
            "procedures_total": self.procedures_total,
            "summaries_reused": self.summaries_reused,
            "summaries_invalidated": self.summaries_invalidated,
            "dirty_seed_size": self.dirty_seed_size,
            "transfers_invalidated": self.transfers_invalidated,
            "stats": dict(self.stats_delta),
            "widening": dict(self.widening),
            "digest": self.digest,
            "seconds": round(self.seconds, 6),
        }
        if self.verified is not None:
            payload["verified"] = self.verified
            payload["cold_digest"] = self.cold_digest
            payload["cold_widening"] = dict(self.cold_widening or {})
        return payload


def cold_solve(
    program: ast.Program,
    info: Optional[TypeInfo] = None,
    limits: LimitsLike = DEFAULT_LIMITS,
    entry: str = "main",
) -> Tuple[str, Dict[str, int]]:
    """Digest + widening counters of a from-scratch solve (fresh caches).

    The golden reference a dirty-seeded re-analysis must match bit-for-bit
    — used by ``repro reanalyze``'s verification mode and the golden tests.
    """
    batch = BatchAnalyzer(limits=limits, entry=entry)
    result = batch.analyze(program, info)
    return result_digest(result), batch.stats.widening_counters()


class IncrementalSession:
    """A warm analysis session fed successive versions of one program.

    Owns a :class:`~repro.analysis.engine.BatchAnalyzer` (optionally over a
    shared :class:`~repro.analysis.transfer.TransferCache` — the daemon's
    server-lifetime cache) plus the cross-run :class:`VisitMemo`.  Call
    :meth:`analyze` with the base version, then :meth:`reanalyze` with each
    edited version; each re-analysis re-solves only the dirty frontier and
    reuses every other procedure visit by pointer.
    """

    def __init__(
        self,
        limits: LimitsLike = DEFAULT_LIMITS,
        entry: str = "main",
        cache: Optional[CacheConfig] = None,
        policy: Optional[str] = None,
        transfer_cache: Optional[TransferCache] = None,
    ):
        self.batch = BatchAnalyzer(
            limits=limits,
            entry=entry,
            cache=cache,
            policy=policy,
            transfer_cache=transfer_cache,
        )
        self.memo = VisitMemo()
        self.batch.visit_memo = self.memo
        self._program: Optional[ast.Program] = None
        self._info: Optional[TypeInfo] = None

    @property
    def stats(self) -> AnalysisStats:
        return self.batch.stats

    @property
    def program(self) -> Optional[ast.Program]:
        """The latest analyzed program version (the next diff's old side)."""
        return self._program

    def analyze(
        self, program: ast.Program, info: Optional[TypeInfo] = None
    ) -> AnalysisResult:
        """Solve the base version cold, populating the visit memo."""
        self.memo.begin_run()
        result = self.batch.analyze(program, info)
        self._program = program
        self._info = result.info
        return result

    def reanalyze(
        self,
        new_program: ast.Program,
        info: Optional[TypeInfo] = None,
        verify: bool = False,
    ) -> ReanalysisReport:
        """Diff against the previous version, invalidate, re-solve warm.

        With ``verify=True`` the report also carries a from-scratch solve's
        digest and widening counters and ``verified`` says whether the
        dirty-seeded solution matched them exactly.
        """
        if self._program is None:
            raise ValueError(
                "IncrementalSession.reanalyze needs a base version; call "
                "analyze() first"
            )
        old_program = self._program
        stats = self.batch.stats
        counters_before = stats.counters()

        started = time.perf_counter()
        delta = diff_programs(old_program, new_program)
        dirty = dirty_seed(delta, new_program)
        stats.dirty_seed_size += len(dirty)
        stats.summaries_invalidated += self.memo.invalidate(
            set(dirty) | set(delta.removed)
        )
        self.memo.rebase(statement_rebase_map(old_program, new_program, delta.unchanged))
        transfers_invalidated = 0
        stale = delta.stale_statement_labels
        if stale:
            transfers_invalidated = self.batch.cache.invalidate_statements(stale)

        self.memo.begin_run()
        result = self.batch.analyze(new_program, info)
        seconds = time.perf_counter() - started

        self._program = new_program
        self._info = result.info

        counters_after = stats.counters()
        stats_delta = {
            name: counters_after[name] - counters_before[name]
            for name in counters_after
        }
        report = ReanalysisReport(
            result=result,
            delta=delta,
            dirty_seed=tuple(sorted(dirty)),
            procedures_reanalyzed=tuple(sorted(self.memo.fresh_names)),
            procedures_total=len(result.entry_matrices),
            stats_delta=stats_delta,
            transfers_invalidated=transfers_invalidated,
            widening={
                name: stats_delta[name] for name in AnalysisStats.WIDENING_FIELDS
            },
            digest=result_digest(result),
            seconds=seconds,
        )
        if verify:
            cold_digest, cold_widening = cold_solve(
                new_program, limits=self.batch.limits, entry=self.batch.entry
            )
            report.cold_digest = cold_digest
            report.cold_widening = cold_widening
            report.verified = (
                cold_digest == report.digest and cold_widening == report.widening
            )
        return report

    def flush(self) -> None:
        self.batch.flush()

    def close(self) -> None:
        self.batch.close()
