"""Intraprocedural path-matrix analysis: statements, blocks, ``if`` and ``while``.

Implements the statement-level analysis of Section 4: given a path matrix
``p`` at the point before a statement, compute the matrix ``p'`` after it.
Basic handle statements use the transfer functions of
:mod:`repro.analysis.transfer`; conditionals merge the matrices of their two
arms; ``while`` loops use the iterative approximation of Figure 3 (merge the
zero-iteration matrix with the matrices after 1, 2, ... iterations until a
fixed point is reached); procedure and function calls apply the
caller-side effect derived from the callee's summary and report their
projected entry matrices to the interprocedural driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..sil import ast
from ..sil.typecheck import TypeInfo
from .interproc import (
    apply_call_effect,
    project_external_call,
    project_recursive_call,
)
from .limits import DEFAULT_LIMITS, AnalysisLimits
from .matrix import PathMatrix
from .structure import StructureDiagnostic
from .summaries import ProcedureSummary
from .transfer import apply_basic_statement


@dataclass
class AnalysisRecorder:
    """Collects everything the whole-program engine wants to keep."""

    #: Path matrix before each statement, keyed by ``id(stmt)``.
    before: Dict[int, PathMatrix] = field(default_factory=dict)
    #: Path matrix after each statement, keyed by ``id(stmt)``.
    after: Dict[int, PathMatrix] = field(default_factory=dict)
    #: The statement objects themselves (so ids can be resolved later).
    statements: Dict[int, ast.Stmt] = field(default_factory=dict)
    #: Which procedure each recorded statement belongs to.
    procedure_of: Dict[int, str] = field(default_factory=dict)
    #: Structure diagnostics, with the owning procedure name.
    diagnostics: List[Tuple[str, StructureDiagnostic]] = field(default_factory=list)
    #: Projected entry matrices observed at call sites: (callee, matrix).
    call_sites: List[Tuple[str, PathMatrix]] = field(default_factory=list)
    #: Iteration history of each while loop, keyed by ``id(stmt)``.
    loop_histories: Dict[int, List[PathMatrix]] = field(default_factory=dict)

    def record_point(
        self, proc_name: str, stmt: ast.Stmt, before: PathMatrix, after: PathMatrix
    ) -> None:
        self.before[id(stmt)] = before
        self.after[id(stmt)] = after
        self.statements[id(stmt)] = stmt
        self.procedure_of[id(stmt)] = proc_name

    def record_diagnostics(
        self, proc_name: str, diagnostics: List[StructureDiagnostic]
    ) -> None:
        for diagnostic in diagnostics:
            self.diagnostics.append(
                (
                    proc_name,
                    StructureDiagnostic(
                        kind=diagnostic.kind,
                        certainty=diagnostic.certainty,
                        statement=diagnostic.statement,
                        detail=diagnostic.detail,
                        procedure=proc_name,
                    ),
                )
            )

    def record_call_site(self, callee: str, projected: PathMatrix) -> None:
        self.call_sites.append((callee, projected))

    def record_loop(self, stmt: ast.Stmt, history: List[PathMatrix]) -> None:
        self.loop_histories[id(stmt)] = history


class ProcedureAnalyzer:
    """Analyzes one procedure body given its entry matrix."""

    def __init__(
        self,
        program: ast.Program,
        info: TypeInfo,
        summaries: Dict[str, ProcedureSummary],
        limits: AnalysisLimits = DEFAULT_LIMITS,
        recorder: Optional[AnalysisRecorder] = None,
    ) -> None:
        self.program = program
        self.info = info
        self.summaries = summaries
        self.limits = limits
        self.recorder = recorder if recorder is not None else AnalysisRecorder()

    # ------------------------------------------------------------------
    # Procedure level
    # ------------------------------------------------------------------

    def analyze_procedure(self, proc: ast.Procedure, entry: PathMatrix) -> PathMatrix:
        """Analyze ``proc``'s body starting from ``entry``; returns the exit matrix."""
        scope = self.info.for_procedure(proc.name)
        matrix = entry.copy()
        # Local handle variables start out as nil: tracked but unrelated.
        for local in proc.locals:
            if local.type is ast.SilType.HANDLE:
                matrix.add_handle(local.name)
        return self.analyze_stmt(proc.body, matrix, proc)

    # ------------------------------------------------------------------
    # Statement level
    # ------------------------------------------------------------------

    def analyze_stmt(self, stmt: ast.Stmt, matrix: PathMatrix, proc: ast.Procedure) -> PathMatrix:
        """Return the matrix after ``stmt``, recording before/after matrices."""
        before = matrix
        after = self._analyze(stmt, matrix, proc)
        self.recorder.record_point(proc.name, stmt, before, after)
        return after

    def _analyze(self, stmt: ast.Stmt, matrix: PathMatrix, proc: ast.Procedure) -> PathMatrix:
        if isinstance(stmt, ast.Block):
            current = matrix
            for inner in stmt.stmts:
                current = self.analyze_stmt(inner, current, proc)
            return current

        if isinstance(stmt, ast.ParallelStmt):
            # Parallel SIL input: the branches are (supposed to be)
            # independent; analyzing them in sequence is a sound
            # over-approximation of any interleaving *when* they do not
            # interfere, which the interference checker verifies separately.
            current = matrix
            for branch in stmt.branches:
                current = self.analyze_stmt(branch, current, proc)
            return current

        if isinstance(stmt, ast.IfStmt):
            then_out = self.analyze_stmt(stmt.then_branch, matrix, proc)
            if stmt.else_branch is not None:
                else_out = self.analyze_stmt(stmt.else_branch, matrix, proc)
            else:
                else_out = matrix
            return then_out.merge(else_out)

        if isinstance(stmt, ast.WhileStmt):
            return self._analyze_while(stmt, matrix, proc)

        if isinstance(stmt, ast.SkipStmt):
            return matrix

        if isinstance(stmt, (ast.ProcCall, ast.FuncAssign)):
            return self._analyze_call(stmt, matrix, proc)

        if isinstance(stmt, ast.BasicStmt):
            result = apply_basic_statement(matrix, stmt, self.limits)
            if result.diagnostics:
                self.recorder.record_diagnostics(proc.name, result.diagnostics)
            return result.matrix

        if isinstance(stmt, ast.Assign):
            raise ValueError(
                "the analysis requires a normalized (core) program; "
                "run repro.sil.normalize.normalize_program first"
            )
        raise TypeError(f"cannot analyze statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # Loops — the iterative approximation of Figure 3
    # ------------------------------------------------------------------

    def _analyze_while(
        self, stmt: ast.WhileStmt, matrix: PathMatrix, proc: ast.Procedure
    ) -> PathMatrix:
        history: List[PathMatrix] = [matrix]
        head = matrix
        for _ in range(self.limits.max_iterations):
            body_out = self.analyze_stmt(stmt.body, head, proc)
            new_head = head.merge(body_out)
            history.append(new_head)
            if new_head == head:
                break
            head = new_head
        self.recorder.record_loop(stmt, history)
        # No condition-based refinement: the matrix at loop exit is the
        # fixed-point head (covers zero and any positive number of iterations).
        return head

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _analyze_call(self, stmt: ast.Stmt, matrix: PathMatrix, proc: ast.Procedure) -> PathMatrix:
        if isinstance(stmt, ast.ProcCall):
            name, args, result_target = stmt.name, stmt.args, None
        else:
            assert isinstance(stmt, ast.FuncAssign)
            name, args, result_target = stmt.name, stmt.args, stmt.target

        callee = self.program.callable(name)
        summary = self.summaries[name]

        # Report the projected entry matrix for the interprocedural fixed point.
        if callee.handle_params:
            if callee.name == proc.name:
                projected = project_recursive_call(matrix, args, callee, self.limits)
            else:
                projected = project_external_call(matrix, args, callee, self.limits)
            self.recorder.record_call_site(callee.name, projected)
        elif callee.name != proc.name:
            # Parameterless callees still need to be marked reachable.
            self.recorder.record_call_site(callee.name, PathMatrix(limits=self.limits))

        result_is_handle = False
        if result_target is not None:
            result_is_handle = self.info.for_procedure(proc.name).is_handle(result_target)

        effect = apply_call_effect(
            matrix,
            summary,
            args,
            callee,
            result_target=result_target,
            result_is_handle=result_is_handle,
            limits=self.limits,
        )
        return effect.matrix
