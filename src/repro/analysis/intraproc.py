"""Intraprocedural path-matrix analysis: statements, blocks, ``if`` and ``while``.

Implements the statement-level analysis of Section 4: given a path matrix
``p`` at the point before a statement, compute the matrix ``p'`` after it.
Basic handle statements use the transfer functions of
:mod:`repro.analysis.transfer`; conditionals merge the matrices of their two
arms; ``while`` loops use the iterative approximation of Figure 3 (merge the
zero-iteration matrix with the matrices after 1, 2, ... iterations until a
fixed point is reached); procedure and function calls apply the
caller-side effect derived from the callee's summary and report their
projected entry matrices to the interprocedural driver.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from ..sil import ast
from ..sil.typecheck import TypeInfo
from .context import AnalysisRecorder
from .interproc import (
    apply_call_effect,
    project_external_call,
    project_recursive_call,
)
from .limits import DEFAULT_LIMITS, AnalysisLimits
from .matrix import PathMatrix
from .summaries import ProcedureSummary
from .telemetry import WideningTally, widening_scope
from .transfer import (
    _bump,
    _count_rows,
    apply_basic_statement,
    apply_basic_statement_cached,
    merge_matrices_cached,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import AnalysisContext


class ProcedureAnalyzer:
    """Analyzes one procedure body given its entry matrix.

    When given an :class:`~repro.analysis.context.AnalysisContext`, basic
    statements go through the memoized transfer cache and the context's
    :class:`~repro.analysis.context.AnalysisStats` counters are updated;
    without one, every transfer is computed directly (the reference
    engine's behaviour).
    """

    def __init__(
        self,
        program: ast.Program,
        info: TypeInfo,
        summaries: Dict[str, ProcedureSummary],
        limits: AnalysisLimits = DEFAULT_LIMITS,
        recorder: Optional[AnalysisRecorder] = None,
        context: Optional["AnalysisContext"] = None,
    ) -> None:
        self.program = program
        self.info = info
        self.summaries = summaries
        self.limits = limits
        self.recorder = recorder if recorder is not None else AnalysisRecorder()
        self.context = context

    # ------------------------------------------------------------------
    # Procedure level
    # ------------------------------------------------------------------

    def analyze_procedure(self, proc: ast.Procedure, entry: PathMatrix) -> PathMatrix:
        """Analyze ``proc``'s body starting from ``entry``; returns the exit matrix."""
        scope = self.info.for_procedure(proc.name)
        matrix = entry.copy()
        # Local handle variables start out as nil: tracked but unrelated.
        for local in proc.locals:
            if local.type is ast.SilType.HANDLE:
                matrix.add_handle(local.name)
        if self.context is not None:
            # Pipeline mode: every matrix that flows between statements is
            # immutable (transfers copy before mutating), and sealing here
            # makes all of them hashable — the memoized transfer/join/call
            # layers then key on the matrix objects with cached hashes.
            matrix.seal()
        return self.analyze_stmt(proc.body, matrix, proc)

    # ------------------------------------------------------------------
    # Statement level
    # ------------------------------------------------------------------

    def analyze_stmt(self, stmt: ast.Stmt, matrix: PathMatrix, proc: ast.Procedure) -> PathMatrix:
        """Return the matrix after ``stmt``, recording before/after matrices."""
        before = matrix
        after = self._analyze(stmt, matrix, proc)
        self.recorder.record_point(proc.name, stmt, before, after)
        if self.context is not None:
            self.context.stats.statements_visited += 1
        return after

    def _analyze(self, stmt: ast.Stmt, matrix: PathMatrix, proc: ast.Procedure) -> PathMatrix:
        if isinstance(stmt, ast.Block):
            current = matrix
            for inner in stmt.stmts:
                current = self.analyze_stmt(inner, current, proc)
            return current

        if isinstance(stmt, ast.ParallelStmt):
            # Parallel SIL input: the branches are (supposed to be)
            # independent; analyzing them in sequence is a sound
            # over-approximation of any interleaving *when* they do not
            # interfere, which the interference checker verifies separately.
            current = matrix
            for branch in stmt.branches:
                current = self.analyze_stmt(branch, current, proc)
            return current

        if isinstance(stmt, ast.IfStmt):
            then_out = self.analyze_stmt(stmt.then_branch, matrix, proc)
            if stmt.else_branch is not None:
                else_out = self.analyze_stmt(stmt.else_branch, matrix, proc)
            else:
                else_out = matrix
            return self._join(then_out, else_out)

        if isinstance(stmt, ast.WhileStmt):
            return self._analyze_while(stmt, matrix, proc)

        if isinstance(stmt, ast.SkipStmt):
            return matrix

        if isinstance(stmt, (ast.ProcCall, ast.FuncAssign)):
            return self._analyze_call(stmt, matrix, proc)

        if isinstance(stmt, ast.BasicStmt):
            context = self.context
            if context is not None:
                result = apply_basic_statement_cached(
                    matrix,
                    stmt,
                    self.limits,
                    cache=context.transfer_cache,
                    stats=context.stats,
                    epoch=context.memo_epoch,
                )
            else:
                result = apply_basic_statement(matrix, stmt, self.limits)
            if result.diagnostics:
                self.recorder.record_diagnostics(proc.name, result.diagnostics)
            return result.matrix

        if isinstance(stmt, ast.Assign):
            raise ValueError(
                "the analysis requires a normalized (core) program; "
                "run repro.sil.normalize.normalize_program first"
            )
        raise TypeError(f"cannot analyze statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # Loops — the iterative approximation of Figure 3
    # ------------------------------------------------------------------

    def _join(self, first: PathMatrix, second: PathMatrix) -> PathMatrix:
        """Control-flow join; memoized over interned matrices in pipeline mode.

        The reference engine (no context) keeps the plain, unmemoized
        merge; the pipeline engine joins through the shared transfer cache
        so re-iterations and re-analyses that join the same (hash-consed)
        matrices are pointer lookups with exact widening replay.
        """
        context = self.context
        if context is None:
            return first.merge(second)
        return merge_matrices_cached(
            first, second, cache=context.transfer_cache, stats=context.stats
        )

    def _analyze_while(
        self, stmt: ast.WhileStmt, matrix: PathMatrix, proc: ast.Procedure
    ) -> PathMatrix:
        history = [matrix]
        head = matrix
        for _ in range(self.limits.max_iterations):
            if self.context is not None:
                self.context.stats.loop_iterations += 1
            body_out = self.analyze_stmt(stmt.body, head, proc)
            # Pipeline engine: joins are memoized and loop heads are
            # hash-consed, so the fixed-point test below is a pointer check
            # once the head stabilizes (the reference engine keeps plain
            # matrices).
            new_head = self._join(head, body_out)
            history.append(new_head)
            if new_head == head:
                break
            head = new_head
        else:
            # The ``max_iterations`` safety net fired without convergence.
            if self.context is not None:
                self.context.stats.iteration_guard_trips += 1
        self.recorder.record_loop(stmt, history)
        # No condition-based refinement: the matrix at loop exit is the
        # fixed-point head (covers zero and any positive number of iterations).
        return head

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _analyze_call(self, stmt: ast.Stmt, matrix: PathMatrix, proc: ast.Procedure) -> PathMatrix:
        if isinstance(stmt, ast.ProcCall):
            name, args, result_target = stmt.name, stmt.args, None
        else:
            assert isinstance(stmt, ast.FuncAssign)
            name, args, result_target = stmt.name, stmt.args, stmt.target

        callee = self.program.callable(name)
        summary = self.summaries[name]
        result_is_handle = False
        if result_target is not None:
            result_is_handle = self.info.for_procedure(proc.name).is_handle(result_target)

        context = self.context
        if context is None:
            projected, effect_matrix = self._call_outcome(
                matrix, args, proc, callee, summary, result_target, result_is_handle
            )
            if projected is not None:
                self.recorder.record_call_site(callee.name, projected)
            return effect_matrix

        # Pipeline engine: the projection and caller-side effect are pure in
        # (statement, input matrix), so they memoize over the input's exact
        # content fingerprint like the basic-statement transfers — with the
        # statement object pinned in the value and the widening events
        # captured on the miss and replayed on every hit.  Results are
        # sealed, not interned: the solver interns the projection itself at
        # the entry-matrix escape point, and the effect matrix is ordinary
        # downstream dataflow.  The *recording* of the projection still
        # happens per visit; only its computation is shared.
        if not matrix.is_interned:
            _bump(context.stats, "lazy_intern_deferrals")
        key = (
            "call",
            context.memo_epoch,
            id(stmt),
            self.limits,
            matrix if matrix.is_sealed else matrix.fingerprint(),
        )
        cached = context.transfer_cache.get_join(key)
        if cached is not None:
            _stmt, projected, effect_matrix, widening = cached
        else:
            with widening_scope(WideningTally()) as widening:
                projected, effect_matrix = self._call_outcome(
                    matrix, args, proc, callee, summary, result_target, result_is_handle
                )
                if projected is not None:
                    projected = projected.seal()
                effect_matrix = effect_matrix.seal()
            _bump(context.stats, "scratch_matrices_elided")
            context.transfer_cache.put_join(
                key, (stmt, projected, effect_matrix, widening)
            )
        widening.add_into(context.stats)
        _count_rows(context.stats, matrix, effect_matrix)
        if projected is not None:
            self.recorder.record_call_site(callee.name, projected)
        return effect_matrix

    def _call_outcome(
        self,
        matrix: PathMatrix,
        args,
        proc: ast.Procedure,
        callee: ast.Procedure,
        summary: ProcedureSummary,
        result_target: Optional[str],
        result_is_handle: bool,
    ):
        """``(projected entry matrix or None, caller matrix after the call)``.

        The projection reported for the interprocedural fixed point: the
        real projected matrix for callees with handle formals, an empty
        reachability marker for parameterless external callees, ``None``
        (nothing to report) for parameterless self-recursion.
        """
        if callee.handle_params:
            if callee.name == proc.name:
                projected = project_recursive_call(matrix, args, callee, self.limits)
            else:
                projected = project_external_call(matrix, args, callee, self.limits)
        elif callee.name != proc.name:
            # Parameterless callees still need to be marked reachable.
            projected = PathMatrix(limits=self.limits)
        else:
            projected = None

        effect = apply_call_effect(
            matrix,
            summary,
            args,
            callee,
            result_target=result_target,
            result_is_handle=result_is_handle,
            limits=self.limits,
        )
        return projected, effect.matrix
