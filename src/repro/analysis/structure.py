"""Static structure diagnostics (TREE/DAG verification).

Section 4 of the paper: relative (path-matrix) information "can be used to
detect if a statement creates a data structure that is possibly not a TREE
or a DAG".  The transfer function for handle updates (``a.f := b``)
consults the path matrix and reports:

* a **cycle** diagnostic when the new child ``b`` may be (or definitely is)
  an ancestor of ``a`` — the structure would no longer be a TREE or a DAG;
* a **sharing** diagnostic when ``b`` may already have another parent — the
  structure may become a DAG (a node with more than one parent).

Diagnostics are *warnings* attached to program points, not fatal errors:
the paper explicitly allows a tree to pass through a DAG state temporarily
(e.g. while swapping children in ``reverse``).  The whole-program engine
collects them, and the structure-debugging example/bench shows them next to
the runtime ground truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class DiagnosticKind(enum.Enum):
    """What structural property a statement may violate."""

    CYCLE = "cycle"
    SHARING = "sharing"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Certainty(enum.Enum):
    """Whether the violation definitely occurs or only possibly occurs."""

    DEFINITE = "definite"
    POSSIBLE = "possible"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class StructureDiagnostic:
    """One warning produced by the structure-verification analysis."""

    kind: DiagnosticKind
    certainty: Certainty
    statement: str
    detail: str
    procedure: str = ""

    @property
    def is_cycle(self) -> bool:
        return self.kind is DiagnosticKind.CYCLE

    @property
    def is_sharing(self) -> bool:
        return self.kind is DiagnosticKind.SHARING

    def __str__(self) -> str:  # pragma: no cover - trivial
        where = f" in {self.procedure}" if self.procedure else ""
        return (
            f"[{self.certainty.value} {self.kind.value}]{where} at `{self.statement}`: {self.detail}"
        )


def cycle_diagnostic(statement: str, detail: str, definite: bool) -> StructureDiagnostic:
    return StructureDiagnostic(
        kind=DiagnosticKind.CYCLE,
        certainty=Certainty.DEFINITE if definite else Certainty.POSSIBLE,
        statement=statement,
        detail=detail,
    )


def sharing_diagnostic(statement: str, detail: str, definite: bool) -> StructureDiagnostic:
    return StructureDiagnostic(
        kind=DiagnosticKind.SHARING,
        certainty=Certainty.DEFINITE if definite else Certainty.POSSIBLE,
        statement=statement,
        detail=detail,
    )
