"""Procedure summaries: read-only vs. update arguments and structural effects.

Section 5.2 of the paper refines procedure-call interference by
distinguishing *read-only* handle arguments (all nodes accessed through the
argument are only read) from *update* arguments (some node reached from the
argument may be written).  This module computes, for every procedure:

* ``update_params`` — the handle formals through which the procedure (or any
  procedure it calls) may write a node field;
* ``modifies_links`` — whether the procedure may rewrite ``left``/``right``
  links (i.e. change the *shape* of the structure) rather than just values;
* for functions returning a handle, which formals the returned handle may be
  derived from (or whether it is always freshly allocated) — used to relate
  the caller's result variable to the actual arguments.

The computation is a simple flow-insensitive derivation analysis iterated to
a fixed point over the (possibly recursive) call graph; it is deliberately
conservative (never misses an update).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..sil import ast
from ..sil.typecheck import TypeInfo

#: Origin marker for freshly allocated nodes.
FRESH = "<new>"
#: Origin marker for nil.
NIL = "<nil>"


@dataclass
class ProcedureSummary:
    """Summary of one procedure's effect through its handle arguments."""

    name: str
    handle_params: List[str] = field(default_factory=list)
    #: Handle formals through which some node may be written (value or link).
    update_params: Set[str] = field(default_factory=set)
    #: True if the procedure (transitively) may execute a link update
    #: (``a.left := ...`` / ``a.right := ...``).
    modifies_links: bool = False
    #: For handle-returning functions: formals the result may be derived from.
    result_derived_from: Set[str] = field(default_factory=set)
    #: For handle-returning functions: may the result be a freshly allocated
    #: node (or nil)?
    result_may_be_fresh: bool = False

    def readonly_params(self) -> List[str]:
        """Handle formals that are only ever read through (§5.2 refinement)."""
        return [p for p in self.handle_params if p not in self.update_params]

    def is_update(self, formal: str) -> bool:
        return formal in self.update_params


class _SummaryBuilder:
    """Iterates summary computation over the whole program to a fixed point."""

    #: The statement kinds the derivation analysis reads; everything else
    #: (blocks, branches, scalar loads) is flow-insensitively irrelevant.
    _RELEVANT_KINDS = (
        ast.CopyHandle,
        ast.LoadField,
        ast.AssignNew,
        ast.AssignNil,
        ast.StoreField,
        ast.StoreValue,
        ast.ProcCall,
        ast.FuncAssign,
    )

    def __init__(self, program: ast.Program, info: TypeInfo):
        self.program = program
        self.info = info
        self.summaries: Dict[str, ProcedureSummary] = {}
        #: Per-procedure flat list of the relevant statements — the body is
        #: immutable and re-walked many times per fixed point, so the AST
        #: traversal and kind filtering are paid once.
        self._relevant: Dict[str, List[ast.Stmt]] = {}
        for proc in program.all_callables:
            self.summaries[proc.name] = ProcedureSummary(
                name=proc.name, handle_params=list(proc.handle_params)
            )

    def compute(self) -> Dict[str, ProcedureSummary]:
        changed = True
        iterations = 0
        while changed:
            changed = False
            iterations += 1
            if iterations > len(self.summaries) * 4 + 16:  # pragma: no cover - safety net
                break
            for proc in self.program.all_callables:
                if self._analyze_procedure(proc):
                    changed = True
        return self.summaries

    # ------------------------------------------------------------------

    def _analyze_procedure(self, proc: ast.Procedure) -> bool:
        """Re-derive the summary of ``proc``; returns True if it changed."""
        summary = self.summaries[proc.name]
        scope = self.info.for_procedure(proc.name)

        # Derivation sets: handle variable -> set of origins (formals / FRESH / NIL).
        derivation: Dict[str, Set[str]] = {}
        for name in scope.handle_variables():
            derivation[name] = set()
        for formal in proc.handle_params:
            derivation[formal] = {formal}

        update_origins: Set[str] = set()
        modifies_links = False

        statements = self._relevant.get(proc.name)
        if statements is None:
            statements = self._relevant[proc.name] = [
                stmt
                for stmt in ast.walk_stmt(proc.body)
                if isinstance(stmt, self._RELEVANT_KINDS)
            ]

        # Iterate the (flow-insensitive) derivation analysis within the body
        # until stable — loops and branches make one pass insufficient.
        stable = False
        passes = 0
        while not stable:
            stable = True
            passes += 1
            if passes > 32:  # pragma: no cover - safety net
                break
            for stmt in statements:
                if isinstance(stmt, ast.CopyHandle):
                    if self._flow(derivation, stmt.source, stmt.target):
                        stable = False
                elif isinstance(stmt, ast.LoadField):
                    if self._flow(derivation, stmt.source, stmt.target):
                        stable = False
                elif isinstance(stmt, ast.AssignNew):
                    if FRESH not in derivation.setdefault(stmt.target, set()):
                        derivation[stmt.target].add(FRESH)
                        stable = False
                elif isinstance(stmt, ast.AssignNil):
                    if NIL not in derivation.setdefault(stmt.target, set()):
                        derivation[stmt.target].add(NIL)
                        stable = False
                elif isinstance(stmt, ast.StoreField):
                    modifies_links = True
                    update_origins |= self._origins(derivation, stmt.target)
                    # Linking source below target: nodes derived from source
                    # become reachable from target's origins; treat writes
                    # through either as updates of both origin sets later by
                    # merging source origins into the target variable.
                    if stmt.source is not None:
                        if self._flow(derivation, stmt.source, stmt.target):
                            stable = False
                elif isinstance(stmt, ast.StoreValue):
                    update_origins |= self._origins(derivation, stmt.target)
                elif isinstance(stmt, (ast.ProcCall, ast.FuncAssign)):
                    callee = self.program.callable(stmt.name)
                    callee_summary = self.summaries[callee.name]
                    handle_actuals = self._handle_actuals(stmt.args, callee)
                    if callee_summary.modifies_links:
                        modifies_links = True
                    for formal, actual in handle_actuals.items():
                        if actual is None:
                            continue
                        if callee_summary.is_update(formal):
                            update_origins |= self._origins(derivation, actual)
                    if isinstance(stmt, ast.FuncAssign):
                        target_is_handle = scope.is_handle(stmt.target)
                        if target_is_handle:
                            origins: Set[str] = set()
                            if callee_summary.result_may_be_fresh:
                                origins.add(FRESH)
                            for formal in callee_summary.result_derived_from:
                                actual = handle_actuals.get(formal)
                                if actual is not None:
                                    origins |= self._origins(derivation, actual)
                            before = set(derivation.setdefault(stmt.target, set()))
                            derivation[stmt.target] |= origins
                            if derivation[stmt.target] != before:
                                stable = False

        formal_set = set(proc.handle_params)
        update_params = update_origins & formal_set

        result_derived: Set[str] = set()
        result_fresh = False
        if isinstance(proc, ast.Function) and scope.is_handle(proc.return_var):
            origins = self._origins(derivation, proc.return_var)
            result_derived = origins & formal_set
            result_fresh = bool(origins & {FRESH, NIL}) or not origins

        changed = (
            update_params != summary.update_params
            or modifies_links != summary.modifies_links
            or result_derived != summary.result_derived_from
            or result_fresh != summary.result_may_be_fresh
        )
        summary.update_params = update_params
        summary.modifies_links = modifies_links
        summary.result_derived_from = result_derived
        summary.result_may_be_fresh = result_fresh
        return changed

    # ------------------------------------------------------------------

    @staticmethod
    def _flow(derivation: Dict[str, Set[str]], source: str, target: str) -> bool:
        """Propagate origins from ``source`` into ``target``; True if changed."""
        source_origins = derivation.setdefault(source, set())
        target_origins = derivation.setdefault(target, set())
        before = len(target_origins)
        target_origins |= source_origins
        return len(target_origins) != before

    @staticmethod
    def _origins(derivation: Dict[str, Set[str]], name: str) -> Set[str]:
        return set(derivation.get(name, set()))

    def _handle_actuals(
        self, args: List[ast.Expr], callee: ast.Procedure
    ) -> Dict[str, Optional[str]]:
        """Map each handle formal of ``callee`` to the actual's variable name."""
        result: Dict[str, Optional[str]] = {}
        for param, arg in zip(callee.params, args):
            if param.type is not ast.SilType.HANDLE:
                continue
            if isinstance(arg, ast.Name):
                result[param.name] = arg.ident
            else:
                result[param.name] = None
        return result


def compute_summaries(program: ast.Program, info: TypeInfo) -> Dict[str, ProcedureSummary]:
    """Compute :class:`ProcedureSummary` for every procedure/function."""
    return _SummaryBuilder(program, info).compute()
