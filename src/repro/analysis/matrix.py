"""The path matrix: pairwise relationships among the live handles at a point.

``matrix[a, b]`` is a :class:`~repro.analysis.pathset.PathSet` describing
every possible directed path from the node named by handle ``a`` down to the
node named by handle ``b`` (including ``S`` when they may name the same
node).  The diagonal is implicitly ``{S}``.  An empty entry means the two
handles are known to be unrelated.

Handles are identified by name (strings).  Besides program variables, the
interprocedural analysis introduces *symbolic* handles — ``h*`` (the
calling procedure's argument bound to formal ``h``) and ``h**`` (the
arguments of all stacked recursive invocations); see
:mod:`repro.analysis.interproc`.

**Representation.**  A matrix stores its non-empty entries *row-wise*, in
one of two forms per row:

* a **sealed** :class:`MatrixRow` — immutable, hash-consed, cells keyed by
  handle *name* (the form every canonical encoding, codec key and pickle
  is built from, unchanged by the packed-kernel work);
* a **scratch** :class:`ScratchRow` — the private copy-on-write form a
  matrix mutates: cells keyed by small integer handle ids from the
  process-wide :class:`~repro.analysis.symbols.SymbolTable`, plus a
  presence bitmask (``1 << id`` per occupied cell).  Empty-cell checks,
  "does this row mention any renamed handle?" and "do all cells survive
  this projection?" are single integer ANDs against that mask.

Rows are interned exactly like :class:`~repro.analysis.pathset.PathSet` —
identical row contents always yield the same object — so an unchanged row
survives any number of copies, transfers and control-flow joins *by
reference*, and "did this row change?" is a pointer comparison.  On top of
the rows, whole matrices can be interned too (:meth:`PathMatrix.interned`):
interned matrices are sealed, carry a precomputed hash and fingerprint, and
obey the identity law, which turns matrix equality, transfer-cache keying
and entry-matrix convergence checks into O(1) pointer checks.  The
incremental solver (:mod:`repro.analysis.pipeline`) builds directly on both
layers.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from .limits import DEFAULT_LIMITS, AnalysisLimits
from .pathset import PathSet
from .symbols import GLOBAL_SYMBOLS


def caller_symbol(formal: str) -> str:
    """The symbolic handle for the original caller's argument bound to ``formal``."""
    return f"{formal}*"


def stacked_symbol(formal: str) -> str:
    """The symbolic handle collecting the stacked recursive invocations' arguments."""
    return f"{formal}**"


def is_symbolic(handle: str) -> bool:
    """True for ``h*`` / ``h**`` style symbolic handles."""
    return handle.endswith("*")


class MatrixRow:
    """One immutable, hash-consed row of a path matrix.

    A row holds the non-empty entries out of one source handle:
    ``{target: PathSet}``.  Like path sets, rows are interned in a weak
    table — constructing the same contents twice yields the **same**
    object — so row equality is an identity check with a precomputed hash,
    and any operation that rebuilds a row without changing its contents
    (a transfer copying a matrix, a join reusing one side) automatically
    recovers the original object.  Empty cells are dropped at construction.

    Every interned row also carries the presence ``mask`` of its targets'
    symbol ids, computed once at interning — shared scratch conversions and
    the mask prefilters read it for free.
    """

    __slots__ = ("_cells", "mask", "_hash", "__weakref__")

    _intern: "weakref.WeakValueDictionary[frozenset, MatrixRow]" = (
        weakref.WeakValueDictionary()
    )

    def __new__(cls, cells: Mapping[str, PathSet] = {}) -> "MatrixRow":
        table = {target: paths for target, paths in cells.items() if not paths.is_empty}
        return cls._of(table)

    @classmethod
    def _of(cls, table: Dict[str, PathSet], mask: Optional[int] = None) -> "MatrixRow":
        """Intern a table already known to contain no empty cells.

        The fast path the matrix's copy-on-write freeze uses: scratch rows
        are mutated privately and interned exactly once here.  The table is
        adopted as-is — callers hand over ownership.  ``mask`` may be
        passed when the caller already maintains the presence mask (the
        scratch row did); otherwise it is computed from the symbol table on
        an intern miss.
        """
        key = frozenset(table.items())
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        if mask is None:
            id_of = GLOBAL_SYMBOLS.id_of
            mask = 0
            for target in table:
                mask |= 1 << id_of(target)
        self = object.__new__(cls)
        self._cells = table
        self.mask = mask
        self._hash = hash(key)
        cls._intern[key] = self
        return self

    def __reduce__(self):
        return (_row_from_items, (tuple(self._cells.items()),))

    def get(self, target: str) -> Optional[PathSet]:
        """The cell for ``target``, or ``None`` when the row has no entry."""
        return self._cells.get(target)

    def cells(self) -> Iterator[Tuple[str, PathSet]]:
        return iter(self._cells.items())

    def with_cell(self, target: str, paths: PathSet) -> "MatrixRow":
        """A row with the ``target`` cell replaced (``paths`` must be non-empty)."""
        if self._cells.get(target) is paths:
            return self
        cells = dict(self._cells)
        cells[target] = paths
        return MatrixRow(cells)

    def without(self, target: str) -> "MatrixRow":
        """A row with the ``target`` cell dropped (self when absent)."""
        if target not in self._cells:
            return self
        cells = dict(self._cells)
        del cells[target]
        return MatrixRow(cells)

    def __contains__(self, target: str) -> bool:
        return target in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def __bool__(self) -> bool:
        return bool(self._cells)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, MatrixRow):
            return NotImplemented
        # Interned: distinct live instances have distinct contents; this
        # fallback covers exotic copies only (mirrors PathSegment).
        return self._cells == other._cells

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MatrixRow({ {t: ps.format() for t, ps in self._cells.items()} !r})"


def _row_from_items(items: Tuple[Tuple[str, PathSet], ...]) -> MatrixRow:
    """Pickle support: rebuild (and re-intern) a row from its cells."""
    return MatrixRow(dict(items))


class ScratchRow:
    """The private, mutable form of a row while its matrix is writing it.

    ``cells`` maps symbol ids (``SymbolTable.id_of(target)``) to path sets;
    ``mask`` is the OR of ``1 << id`` over the occupied cells, maintained
    exactly (ids are unique per name, so the mask is a precise presence
    set, not a Bloom filter).  Scratch rows never leave their matrix:
    :meth:`PathMatrix._freeze` converts them back to name-keyed interned
    :class:`MatrixRow` objects at every sharing/comparison point, so
    nothing downstream (codec, pickle, canonical encodings) ever sees an
    id.
    """

    __slots__ = ("cells", "mask")

    def __init__(self, cells: Dict[int, PathSet], mask: int) -> None:
        self.cells = cells
        self.mask = mask

    def __len__(self) -> int:
        return len(self.cells)

    def __bool__(self) -> bool:
        return bool(self.cells)


#: Either row form, as stored in ``PathMatrix._rows``.
Row = Union[MatrixRow, ScratchRow]


#: Interned whole matrices, keyed by their exact fingerprint.
_MATRIX_INTERN: "weakref.WeakValueDictionary[Tuple, PathMatrix]" = (
    weakref.WeakValueDictionary()
)


class PathMatrix:
    """A square matrix of :class:`PathSet` entries keyed by handle name.

    Handles are stored in an insertion-ordered dict mapping each name to
    its :class:`~repro.analysis.symbols.SymbolTable` id, so membership
    tests, additions, removals *and* name→id resolution are one O(1) dict
    probe.  Entries live row-wise, **copy-on-write**: a row is either an
    interned :class:`MatrixRow` (immutable, possibly shared with other
    matrices) or a private :class:`ScratchRow` while this matrix is
    mutating it — the first mutation of a shared row unshares it into the
    id-keyed scratch form, later mutations are cheap int-keyed dict stores
    with a mask update, and :meth:`_freeze` interns every scratch row
    exactly once at the points where rows are shared or compared
    (:meth:`copy`, :meth:`fingerprint`, :meth:`merge`, :meth:`interned`,
    :meth:`seal`).  A matrix produced by copying therefore shares every
    unchanged row of its original by reference, and row change detection
    is a pointer check.  The matrix maintains a cheap mutation ``version``
    from which an exact :meth:`fingerprint` is derived lazily, and
    :meth:`interned` maps any matrix to the canonical sealed instance for
    its contents — the key the memoized transfer functions and the
    incremental solver use to recognise previously-seen inputs with a
    pointer check.
    """

    __slots__ = (
        "_handles",
        "_rows",
        "limits",
        "_version",
        "_fingerprint",
        "_fingerprint_version",
        "_sealed",
        "_interned",
        "_thawed",
        "_hash",
        "_canonical",
        "__weakref__",
    )

    #: Total number of matrices constructed (snapshot-diffed by AnalysisStats).
    allocations: int = 0
    #: Times :meth:`interned` found the canonical instance already in the
    #: table (snapshot-diffed into ``AnalysisStats.matrix_intern_hits``).
    intern_hits: int = 0

    def __init__(
        self,
        handles: Iterable[str] = (),
        limits: AnalysisLimits = DEFAULT_LIMITS,
    ):
        if type(handles) is dict:
            # Internal fast path: another matrix's name→id dict (copy,
            # merge, restrict, intern) — ids are already resolved.
            self._handles: Dict[str, int] = dict(handles)
        else:
            id_of = GLOBAL_SYMBOLS.id_of
            # Dict insertion dedups while keeping first-occurrence order.
            self._handles = {handle: id_of(handle) for handle in handles}
        self._rows: Dict[str, Row] = {}
        self.limits = limits
        self._version = 0
        self._fingerprint: Optional[Tuple] = None
        self._fingerprint_version = -1
        self._sealed = False
        self._interned = False
        self._thawed = False  # True while any row is a private ScratchRow
        self._hash: Optional[int] = None
        self._canonical: Optional[Tuple] = None
        PathMatrix.allocations += 1

    def __reduce__(self):
        return (
            _matrix_from_state,
            (
                tuple(self._handles),
                tuple((s, t, ps) for s, t, ps in self.entries()),
                self.limits,
                self._sealed,
                self._interned,
            ),
        )

    # ------------------------------------------------------------------
    # Handles
    # ------------------------------------------------------------------

    @property
    def handles(self) -> List[str]:
        """The handles tracked by this matrix, in insertion order (a copy)."""
        return list(self._handles)

    def iter_handles(self) -> Iterable[str]:
        """Iterate the tracked handles in insertion order without copying."""
        return self._handles.keys()

    def __contains__(self, handle: str) -> bool:
        return handle in self._handles

    def seal(self) -> "PathMatrix":
        """Mark this matrix immutable; further mutation raises.

        Matrices entering the memoized transfer cache are sealed because
        they are shared across program points, results and future runs —
        a silent mutation would poison every later cache hit.  ``copy()``
        returns an unsealed clone.
        """
        if self._thawed:
            self._freeze()
        self._sealed = True
        return self

    def _freeze(self) -> None:
        """Intern every copy-on-write (scratch) row.

        Idempotent and content-preserving: after freezing, all rows are
        canonical name-keyed :class:`MatrixRow` objects, so they can be
        shared across matrices and compared by pointer.  Called wherever
        rows escape this matrix or feed an identity comparison.
        """
        name_of = GLOBAL_SYMBOLS.name_of
        for source, row in self._rows.items():
            if type(row) is ScratchRow:
                table = {name_of(target_id): ps for target_id, ps in row.cells.items()}
                self._rows[source] = MatrixRow._of(table, row.mask)
        self._thawed = False

    def _unshare(self, source: str, row: MatrixRow) -> ScratchRow:
        """Convert a shared interned row into this matrix's private scratch form."""
        id_of = GLOBAL_SYMBOLS.id_of
        scratch = ScratchRow(
            {id_of(target): ps for target, ps in row._cells.items()}, row.mask
        )
        self._rows[source] = scratch
        self._thawed = True
        return scratch

    @property
    def is_interned(self) -> bool:
        """True for the canonical (sealed, hashable) instance of these contents."""
        return self._interned

    @property
    def is_sealed(self) -> bool:
        """True once the matrix is immutable (and therefore hashable)."""
        return self._sealed

    def _mutating(self) -> None:
        if self._sealed:
            raise ValueError(
                "this PathMatrix is sealed (shared via the transfer cache / "
                "analysis results); call copy() and mutate the copy"
            )

    def add_handle(self, handle: str) -> None:
        """Add a handle unrelated to everything already tracked (idempotent)."""
        if handle not in self._handles:
            self._mutating()
            self._handles[handle] = GLOBAL_SYMBOLS.id_of(handle)
            self._version += 1

    def remove_handle(self, handle: str) -> None:
        """Drop a handle and every entry mentioning it (idempotent)."""
        if handle in self._handles:
            self._mutating()
            del self._handles[handle]
            self._version += 1
        self._drop_entries_of(handle)

    def clear_handle(self, handle: str) -> None:
        """Make ``handle`` unrelated to every other handle (it stays tracked)."""
        self._drop_entries_of(handle)

    def _drop_entries_of(self, handle: str) -> None:
        changed = False
        if handle in self._rows:
            self._mutating()
            del self._rows[handle]
            changed = True
        bit = 1 << GLOBAL_SYMBOLS.id_of(handle)
        target_id = None
        for source in list(self._rows):
            row = self._rows[source]
            if not (row.mask & bit):
                # The presence mask proves the row has no cell for this
                # handle — the common case, one AND instead of a dict probe.
                continue
            self._mutating()
            if type(row) is MatrixRow:
                row = self._unshare(source, row)
            if target_id is None:
                target_id = GLOBAL_SYMBOLS.id_of(handle)
            del row.cells[target_id]
            row.mask &= ~bit
            if not row.cells:
                del self._rows[source]
            changed = True
        if changed:
            self._version += 1

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------

    def get(self, source: str, target: str) -> PathSet:
        """The entry ``p[source, target]`` (diagonal is implicitly ``{S}``)."""
        if source == target:
            if source in self._handles:
                return PathSet.same()
            return PathSet.empty()
        row = self._rows.get(source)
        if row is None:
            return PathSet.empty()
        if type(row) is MatrixRow:
            paths = row._cells.get(target)
        else:
            target_id = self._handles.get(target)
            paths = row.cells.get(target_id) if target_id is not None else None
        return paths if paths is not None else PathSet.empty()

    def __getitem__(self, key: Tuple[str, str]) -> PathSet:
        return self.get(*key)

    def set(self, source: str, target: str, paths: PathSet) -> None:
        """Set ``p[source, target]``; empty sets erase the entry."""
        if source == target:
            return
        handles = self._handles
        if source not in handles:
            self.add_handle(source)
        if target not in handles:
            self.add_handle(target)
        paths = paths.collapse(self.limits)
        row = self._rows.get(source)
        target_id = handles[target]
        bit = 1 << target_id
        if paths.is_empty:
            if row is not None and (row.mask & bit):
                self._mutating()
                if type(row) is MatrixRow:
                    row = self._unshare(source, row)
                del row.cells[target_id]
                row.mask &= ~bit
                if not row.cells:
                    del self._rows[source]
                self._version += 1
        elif row is None:
            self._mutating()
            self._rows[source] = ScratchRow({target_id: paths}, bit)
            self._thawed = True
            self._version += 1
        else:
            if type(row) is MatrixRow:
                if row._cells.get(target) is paths:
                    return
                self._mutating()
                row = self._unshare(source, row)
            elif row.cells.get(target_id) is paths:
                return
            else:
                self._mutating()
            row.cells[target_id] = paths
            row.mask |= bit
            self._version += 1

    def __setitem__(self, key: Tuple[str, str], paths: PathSet) -> None:
        self.set(key[0], key[1], paths)

    def add_paths(self, source: str, target: str, paths: PathSet) -> None:
        """Union additional paths into ``p[source, target]``."""
        if paths.is_empty or source == target:
            return
        self.set(source, target, self.get(source, target).union(paths))

    def entries(self) -> Iterator[Tuple[str, str, PathSet]]:
        """Iterate over the non-empty off-diagonal entries, row by row.

        Enumerating every entry is a sharing/encoding point, so scratch
        rows are interned first — the iteration then reads name-keyed
        cells only.
        """
        if self._thawed:
            self._freeze()
        for source, row in self._rows.items():
            for target, paths in row._cells.items():
                yield source, target, paths

    def row(self, source: str) -> Optional[MatrixRow]:
        """The interned row of ``source`` (``None`` when it has no entries)."""
        if self._thawed:
            self._freeze()
        return self._rows.get(source)

    def related(self, first: str, second: str) -> bool:
        """True if the two handles may be related in either direction (§5.2).

        The procedure-call parallelization test: two calls whose handle
        arguments are pairwise *unrelated* cannot interfere.
        """
        if first == second:
            return first in self._handles
        return not self.get(first, second).is_empty or not self.get(second, first).is_empty

    def unrelated(self, first: str, second: str) -> bool:
        return not self.related(first, second)

    def may_alias(self, first: str, second: str) -> bool:
        """True if the two handles may name the same node (S or S? present)."""
        if first == second:
            return first in self._handles
        return self.get(first, second).has_same or self.get(second, first).has_same

    def must_alias(self, first: str, second: str) -> bool:
        """True if the two handles definitely name the same node."""
        if first == second:
            return first in self._handles
        return self.get(first, second).has_definite_same or self.get(second, first).has_definite_same

    def descendants_of(self, handle: str) -> List[str]:
        """Handles possibly located at or below ``handle`` (including aliases)."""
        result = []
        for other in self._handles:
            if other == handle:
                continue
            if not self.get(handle, other).is_empty:
                result.append(other)
        return result

    @classmethod
    def from_entries(
        cls,
        handles: Iterable[str],
        entries: Iterable[Tuple[str, str, PathSet]],
        limits: AnalysisLimits = DEFAULT_LIMITS,
    ) -> "PathMatrix":
        """Rebuild the canonical interned matrix for already-canonical entries.

        The decode path of the persistent transfer cache
        (:mod:`repro.cache.codec`): entries are installed exactly as given —
        no :meth:`set`-style re-collapse, so no widening telemetry can fire
        from inside a decode and the rebuilt matrix is bit-identical to the
        one that was encoded.  Callers must pass path sets that are already
        canonical under ``limits`` (anything produced by the analysis is).
        The result is interned: decoding the same contents twice — or
        decoding contents this process already produced — returns the
        **same** (sealed) object.
        """
        matrix = cls(handles, limits)
        grouped: Dict[str, Dict[str, PathSet]] = {}
        for source, target, paths in entries:
            if source == target or paths.is_empty:
                continue
            grouped.setdefault(source, {})[target] = paths
        matrix._rows = {source: MatrixRow._of(cells) for source, cells in grouped.items()}
        matrix._version += 1
        return matrix.interned()

    # ------------------------------------------------------------------
    # Fingerprinting and interning
    # ------------------------------------------------------------------

    def fingerprint(self) -> Tuple:
        """An exact, hashable snapshot of this matrix's contents.

        Two matrices with equal fingerprints have the same handles (in the
        same insertion order) and the same entries, so a transfer function
        applied to either produces equal results.  With interned rows the
        frozenset hashes from precomputed per-row hashes, and the result
        is cached against a mutation counter so repeated lookups are cheap
        (and free for interned matrices, whose contents can never change).
        """
        if self._fingerprint_version != self._version:
            if self._thawed:
                self._freeze()
            self._fingerprint = (
                tuple(self._handles),
                frozenset(self._rows.items()),
                self.limits,
            )
            self._fingerprint_version = self._version
        return self._fingerprint

    def interned(self) -> "PathMatrix":
        """The canonical (sealed, hashable) instance for these contents.

        Matrices are hash-consed on demand rather than at construction —
        transfer functions mutate scratch copies freely, and only the
        values that outlive a single operation (entry matrices, cached
        transfer inputs/results) are interned.  For all interned matrices
        the identity law holds: equal contents ⇔ the same object, so
        equality, set membership and cache keying are pointer checks.
        Like path sets, the table holds its values weakly.
        """
        if self._interned:
            return self
        key = self.fingerprint()
        cached = _MATRIX_INTERN.get(key)
        if cached is not None:
            PathMatrix.intern_hits += 1
            return cached
        canonical = PathMatrix(self._handles, self.limits)
        canonical._rows = dict(self._rows)
        canonical._version = 1
        canonical._fingerprint = key
        canonical._fingerprint_version = 1
        canonical._hash = hash(key)
        canonical._sealed = True
        canonical._interned = True
        _MATRIX_INTERN[key] = canonical
        return canonical

    def canonical_form(self) -> Tuple[Tuple[str, ...], Tuple[Tuple[str, str, str], ...]]:
        """``(handles, sorted (source, target, rendered-path-set) triples)``.

        The process-independent textual identity shared by the sharded
        suite runner and the persistent cache codec.  Sealed matrices
        (including every interned one) compute it once and cache it — the
        codec fast path — while mutable matrices recompute per call.
        """
        if self._canonical is not None:
            return self._canonical
        form = (
            tuple(self._handles),
            tuple(sorted((s, t, ps.format()) for s, t, ps in self.entries())),
        )
        if self._sealed:
            self._canonical = form
        return form

    # ------------------------------------------------------------------
    # Whole-matrix operations
    # ------------------------------------------------------------------

    def copy(self) -> "PathMatrix":
        if self._thawed:
            self._freeze()
        clone = PathMatrix(self._handles, self.limits)
        clone._rows = dict(self._rows)  # frozen rows are immutable: shared
        return clone

    def restricted(self, handles: Sequence[str]) -> "PathMatrix":
        """A copy keeping only the given handles (project away the rest).

        The presence mask decides each row's fate in one AND: rows whose
        targets all survive carry over (frozen rows by reference); rebuilt
        subsets stay copy-on-write (projections are usually consumed once,
        so eagerly interning their rows would be wasted work).
        """
        keep_set = set(handles)
        keep = {h: sid for h, sid in self._handles.items() if h in keep_set}
        keep_mask = 0
        for sid in keep.values():
            keep_mask |= 1 << sid
        clone = PathMatrix(keep, self.limits)
        drop_mask = ~keep_mask
        for source, row in self._rows.items():
            if source not in keep:
                continue
            if not (row.mask & drop_mask):
                # Every target cell survives the projection: share.
                if type(row) is MatrixRow:
                    clone._rows[source] = row
                else:
                    clone._rows[source] = ScratchRow(dict(row.cells), row.mask)
                    clone._thawed = True
                continue
            cells: Dict[int, PathSet] = {}
            mask = 0
            if type(row) is MatrixRow:
                for target, paths in row._cells.items():
                    if target in keep_set:
                        sid = self._handles[target]
                        cells[sid] = paths
                        mask |= 1 << sid
            else:
                for sid, paths in row.cells.items():
                    if (keep_mask >> sid) & 1:
                        cells[sid] = paths
                        mask |= 1 << sid
            if cells:
                clone._rows[source] = ScratchRow(cells, mask)
                clone._thawed = True
        return clone

    def renamed(self, mapping: Mapping[str, str]) -> "PathMatrix":
        """A copy with handles renamed via ``mapping`` (absent names unchanged).

        If two old handles map to the same new name their relationships are
        unioned (used when folding the current handle into ``h**``).
        Collision-free renames — the common case, e.g. rebinding the
        placeholder handle of a field load — relabel rows in place: cell
        values are already canonical, and a row whose source and targets
        are all unmapped (one mask AND) carries over by reference.
        """
        new_names = [mapping.get(handle, handle) for handle in self._handles]
        if len(set(new_names)) == len(new_names):
            clone = PathMatrix(new_names, self.limits)
            rename_mask = 0
            for handle, sid in self._handles.items():
                if handle in mapping:
                    rename_mask |= 1 << sid
            id_of = GLOBAL_SYMBOLS.id_of
            name_of = GLOBAL_SYMBOLS.name_of
            for source, row in self._rows.items():
                if source in mapping or (row.mask & rename_mask):
                    if type(row) is MatrixRow:
                        items = row._cells.items()
                    else:
                        items = [
                            (name_of(sid), paths) for sid, paths in row.cells.items()
                        ]
                    cells: Dict[int, PathSet] = {}
                    mask = 0
                    for target, paths in items:
                        sid = id_of(mapping.get(target, target))
                        cells[sid] = paths
                        mask |= 1 << sid
                    clone._rows[mapping.get(source, source)] = ScratchRow(cells, mask)
                    clone._thawed = True
                elif type(row) is MatrixRow:
                    clone._rows[source] = row
                else:
                    clone._rows[source] = ScratchRow(dict(row.cells), row.mask)
                    clone._thawed = True
            clone._version += 1
            return clone
        clone = PathMatrix(limits=self.limits)
        for handle in self._handles:
            clone.add_handle(mapping.get(handle, handle))
        for source, target, paths in self.entries():
            new_source = mapping.get(source, source)
            new_target = mapping.get(target, target)
            if new_source == new_target:
                continue
            clone.add_paths(new_source, new_target, paths)
        return clone

    def merge(self, other: "PathMatrix") -> "PathMatrix":
        """Control-flow join of two matrices (see :meth:`PathSet.merge`).

        Entries tracked on both sides are merged path-set-wise (definite only
        where definite on both).  Handles tracked by only one side are kept
        with their relationships unchanged — the other control path does not
        know the handle at all, which only happens for dead or out-of-scope
        names.  A row that is *identical* on both sides (the common case on
        loop re-iterations) is reused by reference without any path-set work.
        """
        return self._merge_rows(other)[0]

    def merge_delta(self, other: "PathMatrix") -> Tuple["PathMatrix", Tuple[str, ...]]:
        """:meth:`merge`, plus the source handles whose rows changed vs ``self``.

        The delta names every handle that is newly tracked or whose row
        object differs from ``self``'s — exactly the rows an incremental
        consumer must re-propagate.  An empty delta means the merged
        matrix has the same contents as ``self``.
        """
        return self._merge_rows(other)

    def _merge_rows(self, other: "PathMatrix") -> Tuple["PathMatrix", Tuple[str, ...]]:
        if self._thawed:
            self._freeze()
        if other._thawed:
            other._freeze()
        result = PathMatrix(self._handles, self.limits)
        for handle, sid in other._handles.items():
            result._handles.setdefault(handle, sid)
        empty = PathSet.empty()
        for source in result._handles:
            mine_row = self._rows.get(source)
            their_row = other._rows.get(source)
            if mine_row is their_row:
                # Identical rows merge to themselves (pathset merge is
                # idempotent), so the join is a pointer copy.
                if mine_row is not None:
                    result._rows[source] = mine_row
                continue
            targets: Dict[str, None] = {}
            if mine_row is not None:
                for target in mine_row._cells:
                    targets[target] = None
            if their_row is not None:
                for target in their_row._cells:
                    targets.setdefault(target, None)
            cells: Dict[str, PathSet] = {}
            for target in targets:
                in_self = source in self._handles and target in self._handles
                in_other = source in other._handles and target in other._handles
                mine = (
                    ((mine_row.get(target) if mine_row is not None else None) or empty)
                    if in_self
                    else None
                )
                theirs = (
                    ((their_row.get(target) if their_row is not None else None) or empty)
                    if in_other
                    else None
                )
                if mine is not None and theirs is not None:
                    merged = mine.merge(theirs)
                elif mine is not None:
                    merged = mine
                elif theirs is not None:
                    merged = theirs
                else:  # pragma: no cover - unreachable (targets come from a row)
                    merged = empty
                merged = merged.collapse(self.limits)
                if not merged.is_empty:
                    cells[target] = merged
            if cells:
                result._rows[source] = MatrixRow._of(cells)
        result._version += 1
        changed = tuple(
            handle
            for handle in result._handles
            if handle not in self._handles
            or result._rows.get(handle) is not self._rows.get(handle)
        )
        return result, changed

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PathMatrix):
            return NotImplemented
        # Interned instances with equal contents *and* equal limits are the
        # same object (caught above); content comparison still runs for
        # mixed pairs, and per-row it is an identity check thanks to the
        # interned rows.
        if self._thawed:
            self._freeze()
        if other._thawed:
            other._freeze()
        return (
            self._handles.keys() == other._handles.keys()
            and self._rows == other._rows
        )

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            if not self._sealed:
                raise TypeError("PathMatrix is not hashable (seal or intern it first)")
            # Sealed contents can never change, so the fingerprint hash is
            # computed once and cached — memo probes keyed on the matrix
            # object then hash in O(1) instead of re-hashing the snapshot
            # tuple on every lookup.
            cached = self._hash = hash(self.fingerprint())
        return cached

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def format(self, handles: Optional[Sequence[str]] = None) -> str:
        """Render the matrix as an aligned text table (paper-figure style)."""
        order = list(handles) if handles is not None else list(self._handles)
        header = [""] + order
        rows: List[List[str]] = [header]
        for source in order:
            row = [source]
            for target in order:
                if source == target:
                    row.append("S" if source in self._handles else "")
                else:
                    row.append(self.get(source, target).format())
            rows.append(row)
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = []
        for index, row in enumerate(rows):
            line = " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            lines.append(line.rstrip())
            if index == 0:
                lines.append("-+-".join("-" * width for width in widths))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.format()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        entry_count = sum(len(row) for row in self._rows.values())
        return f"PathMatrix(handles={list(self._handles)!r}, entries={entry_count})"


def _matrix_from_state(
    handles: Tuple[str, ...],
    entries: Tuple[Tuple[str, str, PathSet], ...],
    limits: AnalysisLimits,
    sealed: bool,
    interned: bool,
) -> PathMatrix:
    """Pickle support: rebuild a matrix, re-interning the canonical ones."""
    matrix = PathMatrix(handles, limits)
    grouped: Dict[str, Dict[str, PathSet]] = {}
    for source, target, paths in entries:
        grouped.setdefault(source, {})[target] = paths
    matrix._rows = {source: MatrixRow(cells) for source, cells in grouped.items()}
    matrix._version += 1
    if interned:
        return matrix.interned()
    if sealed:
        matrix.seal()
    return matrix


def row_delta(before: PathMatrix, after: PathMatrix) -> Tuple[int, int]:
    """``(changed_rows, full_rows)`` between two matrices of one operation.

    ``full_rows`` is the matrix dimension a non-incremental engine rewrites
    for the operation (every handle row of the result); ``changed_rows``
    counts only the rows whose contents actually differ — handles added or
    removed, or rows whose interned object changed.  Because rows are
    hash-consed, the comparison is a pointer check per handle, and
    ``changed_rows <= full_rows + removed-handles`` always holds.
    """
    full = len(after._handles)
    if before is after:
        return 0, full
    if before._thawed:
        before._freeze()
    if after._thawed:
        after._freeze()
    changed = 0
    for handle in after._handles:
        if handle not in before._handles or after._rows.get(handle) is not before._rows.get(handle):
            changed += 1
    for handle in before._handles:
        if handle not in after._handles:
            changed += 1
    return changed, full


def canonical_document(matrix: PathMatrix) -> Dict[str, object]:
    """The ``{"handles": [...], "entries": [[s, t, paths], ...]}`` JSON shape.

    The **single** source of the canonical matrix layout: the sharded
    bit-identity encodings (:func:`repro.analysis.engine.canonical_matrix`)
    and the persistent cache keys/payloads (:mod:`repro.cache.codec`) are
    thin wrappers over this, so the byte layouts cannot drift apart.
    Sealed matrices serve the underlying form from their per-object cache.
    """
    handles, entries = matrix.canonical_form()
    return {"handles": list(handles), "entries": [list(entry) for entry in entries]}


def matrix_intern_table_sizes() -> Dict[str, int]:
    """Sizes of the matrix-layer hash-consing tables (stats and benches)."""
    return {
        "matrix_rows_interned": len(MatrixRow._intern),
        "matrices_interned": len(_MATRIX_INTERN),
    }
