"""The path matrix: pairwise relationships among the live handles at a point.

``matrix[a, b]`` is a :class:`~repro.analysis.pathset.PathSet` describing
every possible directed path from the node named by handle ``a`` down to the
node named by handle ``b`` (including ``S`` when they may name the same
node).  The diagonal is implicitly ``{S}``.  An empty entry means the two
handles are known to be unrelated.

Handles are identified by name (strings).  Besides program variables, the
interprocedural analysis introduces *symbolic* handles — ``h*`` (the
calling procedure's argument bound to formal ``h``) and ``h**`` (the
arguments of all stacked recursive invocations); see
:mod:`repro.analysis.interproc`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .limits import DEFAULT_LIMITS, AnalysisLimits
from .pathset import PathSet
from .paths import Path


def caller_symbol(formal: str) -> str:
    """The symbolic handle for the original caller's argument bound to ``formal``."""
    return f"{formal}*"


def stacked_symbol(formal: str) -> str:
    """The symbolic handle collecting the stacked recursive invocations' arguments."""
    return f"{formal}**"


def is_symbolic(handle: str) -> bool:
    """True for ``h*`` / ``h**`` style symbolic handles."""
    return handle.endswith("*")


class PathMatrix:
    """A mutable square matrix of :class:`PathSet` entries keyed by handle name.

    Handles are stored in an insertion-ordered dict, so membership tests,
    additions and removals are O(1) instead of scanning a list.  The matrix
    also maintains a cheap mutation ``version`` from which an exact
    :meth:`fingerprint` is derived lazily — the key the memoized transfer
    functions use to recognise a previously-seen input.
    """

    __slots__ = (
        "_handles",
        "_entries",
        "limits",
        "_version",
        "_fingerprint",
        "_fingerprint_version",
        "_sealed",
    )

    #: Total number of matrices constructed (snapshot-diffed by AnalysisStats).
    allocations: int = 0

    def __init__(
        self,
        handles: Iterable[str] = (),
        limits: AnalysisLimits = DEFAULT_LIMITS,
    ):
        self._handles: Dict[str, None] = {}
        self._entries: Dict[Tuple[str, str], PathSet] = {}
        self.limits = limits
        self._version = 0
        self._fingerprint: Optional[Tuple] = None
        self._fingerprint_version = -1
        self._sealed = False
        PathMatrix.allocations += 1
        for handle in handles:
            self._handles.setdefault(handle, None)

    # ------------------------------------------------------------------
    # Handles
    # ------------------------------------------------------------------

    @property
    def handles(self) -> List[str]:
        """The handles tracked by this matrix, in insertion order (a copy)."""
        return list(self._handles)

    def iter_handles(self) -> Iterable[str]:
        """Iterate the tracked handles in insertion order without copying."""
        return self._handles.keys()

    def __contains__(self, handle: str) -> bool:
        return handle in self._handles

    def seal(self) -> "PathMatrix":
        """Mark this matrix immutable; further mutation raises.

        Matrices entering the memoized transfer cache are sealed because
        they are shared across program points, results and future runs —
        a silent mutation would poison every later cache hit.  ``copy()``
        returns an unsealed clone.
        """
        self._sealed = True
        return self

    def _mutating(self) -> None:
        if self._sealed:
            raise ValueError(
                "this PathMatrix is sealed (shared via the transfer cache / "
                "analysis results); call copy() and mutate the copy"
            )

    def add_handle(self, handle: str) -> None:
        """Add a handle unrelated to everything already tracked (idempotent)."""
        if handle not in self._handles:
            self._mutating()
            self._handles[handle] = None
            self._version += 1

    def remove_handle(self, handle: str) -> None:
        """Drop a handle and every entry mentioning it (idempotent)."""
        if handle in self._handles:
            self._mutating()
            del self._handles[handle]
            self._version += 1
        self._drop_entries_of(handle)

    def clear_handle(self, handle: str) -> None:
        """Make ``handle`` unrelated to every other handle (it stays tracked)."""
        self._drop_entries_of(handle)

    def _drop_entries_of(self, handle: str) -> None:
        stale = [key for key in self._entries if key[0] == handle or key[1] == handle]
        if stale:
            self._mutating()
            for key in stale:
                del self._entries[key]
            self._version += 1

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------

    def get(self, source: str, target: str) -> PathSet:
        """The entry ``p[source, target]`` (diagonal is implicitly ``{S}``)."""
        if source == target:
            if source in self._handles:
                return PathSet.same()
            return PathSet.empty()
        return self._entries.get((source, target), PathSet.empty())

    def __getitem__(self, key: Tuple[str, str]) -> PathSet:
        return self.get(*key)

    def set(self, source: str, target: str, paths: PathSet) -> None:
        """Set ``p[source, target]``; empty sets erase the entry."""
        if source == target:
            return
        self.add_handle(source)
        self.add_handle(target)
        paths = paths.collapse(self.limits)
        if paths.is_empty:
            if (source, target) in self._entries:
                self._mutating()
                del self._entries[(source, target)]
                self._version += 1
        else:
            key = (source, target)
            if self._entries.get(key) is not paths:
                self._mutating()
                self._entries[key] = paths
                self._version += 1

    def __setitem__(self, key: Tuple[str, str], paths: PathSet) -> None:
        self.set(key[0], key[1], paths)

    def add_paths(self, source: str, target: str, paths: PathSet) -> None:
        """Union additional paths into ``p[source, target]``."""
        if paths.is_empty or source == target:
            return
        self.set(source, target, self.get(source, target).union(paths))

    def entries(self) -> Iterator[Tuple[str, str, PathSet]]:
        """Iterate over the non-empty off-diagonal entries."""
        for (source, target), paths in self._entries.items():
            yield source, target, paths

    def related(self, first: str, second: str) -> bool:
        """True if the two handles may be related in either direction (§5.2).

        The procedure-call parallelization test: two calls whose handle
        arguments are pairwise *unrelated* cannot interfere.
        """
        if first == second:
            return first in self._handles
        return not self.get(first, second).is_empty or not self.get(second, first).is_empty

    def unrelated(self, first: str, second: str) -> bool:
        return not self.related(first, second)

    def may_alias(self, first: str, second: str) -> bool:
        """True if the two handles may name the same node (S or S? present)."""
        if first == second:
            return first in self._handles
        return self.get(first, second).has_same or self.get(second, first).has_same

    def must_alias(self, first: str, second: str) -> bool:
        """True if the two handles definitely name the same node."""
        if first == second:
            return first in self._handles
        return self.get(first, second).has_definite_same or self.get(second, first).has_definite_same

    def descendants_of(self, handle: str) -> List[str]:
        """Handles possibly located at or below ``handle`` (including aliases)."""
        result = []
        for other in self._handles:
            if other == handle:
                continue
            if not self.get(handle, other).is_empty:
                result.append(other)
        return result

    @classmethod
    def from_entries(
        cls,
        handles: Iterable[str],
        entries: Iterable[Tuple[str, str, PathSet]],
        limits: AnalysisLimits = DEFAULT_LIMITS,
    ) -> "PathMatrix":
        """Rebuild a matrix from already-canonical entries, verbatim.

        The decode path of the persistent transfer cache
        (:mod:`repro.cache.codec`): entries are installed exactly as given —
        no :meth:`set`-style re-collapse, so no widening telemetry can fire
        from inside a decode and the rebuilt matrix is bit-identical to the
        one that was encoded.  Callers must pass path sets that are already
        canonical under ``limits`` (anything produced by the analysis is).
        """
        matrix = cls(handles, limits)
        for source, target, paths in entries:
            if source == target or paths.is_empty:
                continue
            matrix._entries[(source, target)] = paths
        matrix._version += 1
        return matrix

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------

    def fingerprint(self) -> Tuple:
        """An exact, hashable snapshot of this matrix's contents.

        Two matrices with equal fingerprints have the same handles (in the
        same insertion order) and the same entries, so a transfer function
        applied to either produces equal results — this is the cache key of
        the memoized transfer application.  With interned path sets the
        frozenset hashes from precomputed per-entry hashes, and the result
        is cached against a mutation counter so repeated lookups are cheap.
        """
        if self._fingerprint_version != self._version:
            self._fingerprint = (
                tuple(self._handles),
                frozenset(self._entries.items()),
                self.limits,
            )
            self._fingerprint_version = self._version
        return self._fingerprint

    # ------------------------------------------------------------------
    # Whole-matrix operations
    # ------------------------------------------------------------------

    def copy(self) -> "PathMatrix":
        clone = PathMatrix(self._handles, self.limits)
        clone._entries = dict(self._entries)
        return clone

    def restricted(self, handles: Sequence[str]) -> "PathMatrix":
        """A copy keeping only the given handles (project away the rest)."""
        keep_set = set(handles)
        keep = [h for h in self._handles if h in keep_set]
        clone = PathMatrix(keep, self.limits)
        for (source, target), paths in self._entries.items():
            if source in keep_set and target in keep_set:
                clone._entries[(source, target)] = paths
        return clone

    def renamed(self, mapping: Mapping[str, str]) -> "PathMatrix":
        """A copy with handles renamed via ``mapping`` (absent names unchanged).

        If two old handles map to the same new name their relationships are
        unioned (used when folding the current handle into ``h**``).
        """
        clone = PathMatrix(limits=self.limits)
        for handle in self._handles:
            clone.add_handle(mapping.get(handle, handle))
        for (source, target), paths in self._entries.items():
            new_source = mapping.get(source, source)
            new_target = mapping.get(target, target)
            if new_source == new_target:
                continue
            clone.add_paths(new_source, new_target, paths)
        return clone

    def merge(self, other: "PathMatrix") -> "PathMatrix":
        """Control-flow join of two matrices (see :meth:`PathSet.merge`).

        Entries tracked on both sides are merged path-set-wise (definite only
        where definite on both).  Handles tracked by only one side are kept
        with their relationships unchanged — the other control path does not
        know the handle at all, which only happens for dead or out-of-scope
        names.
        """
        result = PathMatrix(limits=self.limits)
        for handle in self._handles:
            result.add_handle(handle)
        for handle in other._handles:
            result.add_handle(handle)
        keys = set(self._entries) | set(other._entries)
        for source, target in keys:
            in_self = source in self._handles and target in self._handles
            in_other = source in other._handles and target in other._handles
            mine = self.get(source, target) if in_self else None
            theirs = other.get(source, target) if in_other else None
            if mine is not None and theirs is not None:
                merged = mine.merge(theirs)
            elif mine is not None:
                merged = mine.weakened() if in_other else mine
            elif theirs is not None:
                merged = theirs.weakened() if in_self else theirs
            else:  # pragma: no cover - unreachable
                merged = PathSet.empty()
            result.set(source, target, merged)
        return result

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PathMatrix):
            return NotImplemented
        return (
            self._handles.keys() == other._handles.keys()
            and self._entries == other._entries
        )

    def __hash__(self) -> int:  # pragma: no cover - matrices are mutable
        raise TypeError("PathMatrix is not hashable")

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def format(self, handles: Optional[Sequence[str]] = None) -> str:
        """Render the matrix as an aligned text table (paper-figure style)."""
        order = list(handles) if handles is not None else list(self._handles)
        header = [""] + order
        rows: List[List[str]] = [header]
        for source in order:
            row = [source]
            for target in order:
                if source == target:
                    row.append("S" if source in self._handles else "")
                else:
                    row.append(self.get(source, target).format())
            rows.append(row)
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = []
        for index, row in enumerate(rows):
            line = " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            lines.append(line.rstrip())
            if index == 0:
                lines.append("-+-".join("-" * width for width in widths))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.format()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PathMatrix(handles={list(self._handles)!r}, entries={len(self._entries)})"
