"""A small synchronous client for the analysis daemon.

:class:`AnalysisClient` owns one socket, performs the hello handshake
(refusing to talk across a :data:`~repro.server.protocol.PROTOCOL_VERSION`
mismatch), and exposes one method per server op.  It is what
``python -m repro client ...`` and the protocol test-suites build on —
deliberately synchronous, because callers are scripts and tests, not event
loops; concurrency is exercised by running many clients, each with its own
connection.

Requests are numbered per connection and responses are matched on the
echoed ``id``; :meth:`send` / :meth:`recv` are exposed separately for
callers that want to pipeline several frames before reading any response
(the server answers strictly in order per connection).

Error responses raise :class:`ServerError` carrying the structured
``code``/``message`` pair, so callers can tell a ``timeout`` from a
``bad_request`` without string-matching.
"""

from __future__ import annotations

import logging
import socket
from typing import Any, Dict, List, Optional, Tuple

from .protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
)


logger = logging.getLogger("repro.server.client")


class ServerError(RuntimeError):
    """The server answered with ``ok: false``."""

    def __init__(self, code: str, message: str, error: Dict[str, Any]):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        #: The full structured ``error`` object, details included.
        self.error = error


class ProtocolMismatch(RuntimeError):
    """The server speaks a different protocol version than this client."""


class AnalysisClient:
    """One connection to an analysis daemon (unix socket or TCP)."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 60.0,
        max_frame: int = DEFAULT_MAX_FRAME,
    ):
        if bool(socket_path) == bool(host):
            raise ValueError(
                "configure exactly one endpoint: socket_path (unix) or host/port (tcp)"
            )
        if host and port is None:
            raise ValueError("a TCP endpoint needs a port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame = max_frame
        self.hello: Optional[Dict[str, Any]] = None
        self._sock: Optional[socket.socket] = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # connection
    # ------------------------------------------------------------------

    def connect(self) -> Dict[str, Any]:
        """Connect and complete the hello handshake; returns the hello frame."""
        if self._sock is not None:
            return self.hello
        if self.socket_path:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            address: Any = self.socket_path
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            address = (self.host, self.port)
        sock.settimeout(self.timeout)
        try:
            sock.connect(address)
            hello = recv_frame(sock, self.max_frame)
        except Exception:
            sock.close()
            raise
        if hello is None:
            sock.close()
            raise ProtocolError("server closed the connection before saying hello")
        if hello.get("protocol") != PROTOCOL_VERSION:
            sock.close()
            raise ProtocolMismatch(
                f"server speaks protocol {hello.get('protocol')!r}, "
                f"this client speaks {PROTOCOL_VERSION}"
            )
        self._sock = sock
        self.hello = hello
        logger.debug("connected to %s (protocol %s)", address, hello.get("protocol"))
        return hello

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "AnalysisClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # framing
    # ------------------------------------------------------------------

    def send(self, op: str, **params: Any) -> int:
        """Send one request frame without waiting; returns its ``id``.

        Pair with :meth:`recv` to pipeline several requests on one
        connection — the server answers in order.
        """
        self.connect()
        self._next_id += 1
        request = {"id": self._next_id, "op": op}
        request.update(params)
        send_frame(self._sock, request, self.max_frame)
        return self._next_id

    def recv(self) -> Dict[str, Any]:
        """Read the next response frame."""
        if self._sock is None:
            raise ProtocolError("not connected")
        response = recv_frame(self._sock, self.max_frame)
        if response is None:
            raise ProtocolError("server closed the connection")
        return response

    def call(self, op: str, **params: Any) -> Dict[str, Any]:
        """One request/response round trip; returns the raw response."""
        request_id = self.send(op, **params)
        response = self.recv()
        if response.get("id") != request_id:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}"
            )
        return response

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """A round trip that raises :class:`ServerError` on ``ok: false``."""
        response = self.call(op, **params)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServerError(
                error.get("code", "unknown"), error.get("message", ""), error
            )
        return response

    # ------------------------------------------------------------------
    # one method per op
    # ------------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def protocol_version(self) -> Dict[str, Any]:
        return self.request("protocol_version")

    def analyze(
        self,
        workloads: Optional[List[str]] = None,
        programs: Optional[List[Dict[str, str]]] = None,
        depth: int = 4,
        adaptive: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {"depth": depth, "adaptive": adaptive}
        if workloads is not None:
            params["workloads"] = list(workloads)
        if programs is not None:
            params["programs"] = list(programs)
        if timeout is not None:
            params["timeout"] = timeout
        return self.request("analyze", **params)

    def bench(
        self,
        seeds: int = 10,
        family: str = "all",
        depth: int = 4,
        seed: int = 0,
        adaptive: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {
            "seeds": seeds,
            "family": family,
            "depth": depth,
            "seed": seed,
            "adaptive": adaptive,
        }
        if timeout is not None:
            params["timeout"] = timeout
        return self.request("bench", **params)

    def reanalyze(
        self,
        old_source: str,
        new_source: str,
        name: str = "program",
        adaptive: bool = False,
        verify: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Dirty-seeded re-analysis of an edited program over the warm cache."""
        params: Dict[str, Any] = {
            "old_source": old_source,
            "new_source": new_source,
            "name": name,
            "adaptive": adaptive,
            "verify": verify,
        }
        if timeout is not None:
            params["timeout"] = timeout
        return self.request("reanalyze", **params)

    def cache_stats(self) -> Dict[str, Any]:
        return self.request("cache_stats")

    def metrics(self, format: str = "json") -> Dict[str, Any]:
        """The server's live metrics registry.

        ``format="json"`` returns the structured snapshot + tail tables;
        ``format="prometheus"`` returns the text exposition under
        ``"text"``.
        """
        return self.request("metrics", format=format)

    def shutdown(self) -> Dict[str, Any]:
        """Request graceful shutdown; the server responds, then stops."""
        return self.request("shutdown")


def endpoint_kwargs(
    socket_path: Optional[str], host: Optional[str], port: Optional[int]
) -> Dict[str, Any]:
    """Normalized endpoint kwargs shared by the CLI's serve/client commands."""
    if socket_path:
        return {"socket_path": socket_path}
    return {"host": host, "port": port}
