"""A small synchronous client for the analysis daemon.

:class:`AnalysisClient` owns one socket, performs the hello handshake
(refusing to talk across a :data:`~repro.server.protocol.PROTOCOL_VERSION`
mismatch), and exposes one method per server op.  It is what
``python -m repro client ...`` and the protocol test-suites build on —
deliberately synchronous, because callers are scripts and tests, not event
loops; concurrency is exercised by running many clients, each with its own
connection.

Requests are numbered per connection and responses are matched on the
echoed ``id``; :meth:`send` / :meth:`recv` are exposed separately for
callers that want to pipeline several frames before reading any response
(the server answers strictly in order per connection).

Error responses raise :class:`ServerError` carrying the structured
``code``/``message`` pair, so callers can tell a ``timeout`` from a
``bad_request`` without string-matching.
"""

from __future__ import annotations

import logging
import random
import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from .protocol import (
    DEFAULT_MAX_FRAME,
    ERR_OVERLOADED,
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    TruncatedFrame,
    recv_frame,
    send_frame,
)


logger = logging.getLogger("repro.server.client")

#: Ops safe to re-send after a transport failure or an ``overloaded``
#: rejection: read-only ops plus ``analyze``/``bench``, whose results are
#: pure functions of the request (re-running one costs compute, never
#: correctness).  ``reanalyze`` mutates warm invalidation state and
#: ``shutdown`` is one-shot — neither is retried.
IDEMPOTENT_OPS = frozenset(
    {"ping", "protocol_version", "health", "analyze", "bench", "cache_stats", "metrics"}
)

#: Transport failures worth a reconnect-and-retry: the connection died (or
#: was refused) in a way that cannot have half-applied an idempotent op.
TRANSPORT_ERRORS = (OSError, TruncatedFrame, ConnectionClosed)


class ServerError(RuntimeError):
    """The server answered with ``ok: false``."""

    def __init__(self, code: str, message: str, error: Dict[str, Any]):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        #: The full structured ``error`` object, details included.
        self.error = error


class ProtocolMismatch(RuntimeError):
    """The server speaks a different protocol version than this client."""


class AnalysisClient:
    """One connection to an analysis daemon (unix socket or TCP)."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 60.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        retries: int = 0,
        backoff: float = 0.05,
        deadline: Optional[float] = None,
    ):
        """``retries`` re-attempts of *idempotent* ops (see
        :data:`IDEMPOTENT_OPS`) after a transport failure or a retryable
        ``overloaded`` rejection, reconnecting between attempts and sleeping
        an exponentially growing, jittered ``backoff`` (seconds, doubling
        per attempt).  ``deadline`` bounds one logical request — including
        every retry and sleep — in wall-clock seconds; when sleeping again
        would bust it, the last failure is raised instead.  The default
        ``retries=0`` keeps the historical fail-fast behavior.
        """
        if bool(socket_path) == bool(host):
            raise ValueError(
                "configure exactly one endpoint: socket_path (unix) or host/port (tcp)"
            )
        if host and port is None:
            raise ValueError("a TCP endpoint needs a port")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff <= 0:
            raise ValueError("backoff must be positive")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame = max_frame
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.deadline = deadline
        #: Lifetime count of re-attempts this client actually performed.
        self.retries_performed = 0
        self.hello: Optional[Dict[str, Any]] = None
        self._sock: Optional[socket.socket] = None
        self._next_id = 0
        # Seeded: chaos runs retry on a reproducible schedule; the jitter
        # exists to de-synchronize *distinct* clients, which construct
        # distinct generators and interleave differently.
        self._jitter = random.Random(0xC0FFEE)

    # ------------------------------------------------------------------
    # connection
    # ------------------------------------------------------------------

    def connect(self) -> Dict[str, Any]:
        """Connect and complete the hello handshake; returns the hello frame."""
        if self._sock is not None:
            return self.hello
        if self.socket_path:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            address: Any = self.socket_path
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            address = (self.host, self.port)
        sock.settimeout(self.timeout)
        try:
            sock.connect(address)
            hello = recv_frame(sock, self.max_frame)
        except (OSError, ProtocolError) as error:
            # The two ways a connect can legitimately fail: the transport
            # (refused, timed out, reset) or a garbled hello.  Anything else
            # propagates without the close — it is a bug, not a peer fault.
            logger.debug(
                "connect to %s failed: %s: %s", address, type(error).__name__, error
            )
            sock.close()
            raise
        if hello is None:
            sock.close()
            raise ConnectionClosed("server closed the connection before saying hello")
        if hello.get("protocol") != PROTOCOL_VERSION:
            sock.close()
            raise ProtocolMismatch(
                f"server speaks protocol {hello.get('protocol')!r}, "
                f"this client speaks {PROTOCOL_VERSION}"
            )
        self._sock = sock
        self.hello = hello
        logger.debug("connected to %s (protocol %s)", address, hello.get("protocol"))
        return hello

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError as error:
                # A socket that fails to close is already dead; note it
                # rather than masking whatever the caller was handling.
                logger.debug("error closing socket: %s", error)
            self._sock = None
            self.hello = None

    def __enter__(self) -> "AnalysisClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # framing
    # ------------------------------------------------------------------

    def send(self, op: str, **params: Any) -> int:
        """Send one request frame without waiting; returns its ``id``.

        Pair with :meth:`recv` to pipeline several requests on one
        connection — the server answers in order.
        """
        self.connect()
        self._next_id += 1
        request = {"id": self._next_id, "op": op}
        request.update(params)
        send_frame(self._sock, request, self.max_frame)
        return self._next_id

    def recv(self) -> Dict[str, Any]:
        """Read the next response frame."""
        if self._sock is None:
            raise ProtocolError("not connected")
        response = recv_frame(self._sock, self.max_frame)
        if response is None:
            raise ConnectionClosed("server closed the connection")
        return response

    def call(self, op: str, **params: Any) -> Dict[str, Any]:
        """One request/response round trip; returns the raw response."""
        request_id = self.send(op, **params)
        response = self.recv()
        if response.get("id") != request_id:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}"
            )
        return response

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """A round trip that raises :class:`ServerError` on ``ok: false``.

        With ``retries`` configured and ``op`` idempotent, a transport
        failure (connection refused/dropped/truncated) or an ``overloaded``
        rejection triggers reconnect-and-retry under exponential backoff
        with jitter, bounded by the client ``deadline``.  Every other error
        — and every error on a non-idempotent op — raises immediately.
        """
        if self.retries <= 0 or op not in IDEMPOTENT_OPS:
            return self._request_once(op, **params)
        deadline_at = (
            None if self.deadline is None else time.monotonic() + self.deadline
        )
        delay = self.backoff
        attempt = 0
        while True:
            try:
                return self._request_once(op, **params)
            except TRANSPORT_ERRORS as error:
                failure: Exception = error
                self.close()  # drop the broken socket; retry reconnects
            except ServerError as error:
                if error.code != ERR_OVERLOADED:
                    raise
                failure = error
            attempt += 1
            if attempt > self.retries:
                raise failure
            pause = delay * (0.5 + self._jitter.random())
            delay *= 2
            if deadline_at is not None and time.monotonic() + pause >= deadline_at:
                raise failure  # sleeping again would bust the deadline
            self.retries_performed += 1
            logger.warning(
                "retrying op=%s after %s: %s (attempt %d/%d, backoff %.3fs)",
                op,
                type(failure).__name__,
                failure,
                attempt,
                self.retries,
                pause,
            )
            time.sleep(pause)

    def _request_once(self, op: str, **params: Any) -> Dict[str, Any]:
        response = self.call(op, **params)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServerError(
                error.get("code", "unknown"), error.get("message", ""), error
            )
        return response

    # ------------------------------------------------------------------
    # one method per op
    # ------------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def health(self) -> Dict[str, Any]:
        """The server's liveness/load snapshot (status, in-flight, shed count)."""
        return self.request("health")

    def protocol_version(self) -> Dict[str, Any]:
        return self.request("protocol_version")

    def analyze(
        self,
        workloads: Optional[List[str]] = None,
        programs: Optional[List[Dict[str, str]]] = None,
        depth: int = 4,
        adaptive: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {"depth": depth, "adaptive": adaptive}
        if workloads is not None:
            params["workloads"] = list(workloads)
        if programs is not None:
            params["programs"] = list(programs)
        if timeout is not None:
            params["timeout"] = timeout
        return self.request("analyze", **params)

    def bench(
        self,
        seeds: int = 10,
        family: str = "all",
        depth: int = 4,
        seed: int = 0,
        adaptive: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {
            "seeds": seeds,
            "family": family,
            "depth": depth,
            "seed": seed,
            "adaptive": adaptive,
        }
        if timeout is not None:
            params["timeout"] = timeout
        return self.request("bench", **params)

    def reanalyze(
        self,
        old_source: str,
        new_source: str,
        name: str = "program",
        adaptive: bool = False,
        verify: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Dirty-seeded re-analysis of an edited program over the warm cache."""
        params: Dict[str, Any] = {
            "old_source": old_source,
            "new_source": new_source,
            "name": name,
            "adaptive": adaptive,
            "verify": verify,
        }
        if timeout is not None:
            params["timeout"] = timeout
        return self.request("reanalyze", **params)

    def cache_stats(self) -> Dict[str, Any]:
        return self.request("cache_stats")

    def metrics(self, format: str = "json") -> Dict[str, Any]:
        """The server's live metrics registry.

        ``format="json"`` returns the structured snapshot + tail tables;
        ``format="prometheus"`` returns the text exposition under
        ``"text"``.
        """
        return self.request("metrics", format=format)

    def shutdown(self) -> Dict[str, Any]:
        """Request graceful shutdown; the server responds, then stops."""
        return self.request("shutdown")


def endpoint_kwargs(
    socket_path: Optional[str], host: Optional[str], port: Optional[int]
) -> Dict[str, Any]:
    """Normalized endpoint kwargs shared by the CLI's serve/client commands."""
    if socket_path:
        return {"socket_path": socket_path}
    return {"host": host, "port": port}
