"""The long-lived asyncio analysis daemon.

:class:`AnalysisServer` listens on a unix or TCP socket, greets every
connection with a protocol-version hello frame, and serves the
length-prefixed JSON protocol of :mod:`repro.server.protocol` over one
warm :class:`~repro.server.service.AnalysisService`:

* **fast ops** (``ping``, ``protocol_version``, ``cache_stats``,
  ``shutdown``) are answered inline on the event loop;
* **heavy ops** (``analyze``, ``bench``) are scheduled onto a bounded
  :class:`~concurrent.futures.ThreadPoolExecutor` so the loop keeps
  multiplexing other clients while an analysis runs, wrapped in a
  per-request timeout that turns into a structured ``timeout`` error
  response instead of a dropped connection.  (A timed-out analysis thread
  runs to completion in the background — Python threads cannot be
  interrupted — and its stats still merge into the lifetime totals; only
  the response is abandoned.)

Connections are handled sequentially per peer: frames pipelined on one
socket are answered in order, so responses are never interleaved.  A peer
that disconnects mid-request costs nothing but the abandoned response.

**Graceful shutdown** (the ``shutdown`` op, or SIGINT/SIGTERM in
:meth:`AnalysisServer.run`): the listener closes immediately, new
``analyze``/``bench`` frames on surviving connections get a
``shutting_down`` error, in-flight requests drain (bounded by
``drain_timeout``), the service flushes its persistent cache, and only
then does the process exit.

For embedding — the protocol tests, notebooks — use
:meth:`AnalysisServer.start_background`, which runs the same event loop on
a daemon thread and blocks until the socket is listening.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, Optional, Tuple

from ..analysis.limits import DEFAULT_LIMITS, LimitsLike
from ..cache.backend import CacheConfig
from ..faults import FaultPlan, current_fault_plan, fault_fire, install_fault_plan
from . import protocol
from .protocol import (
    DEFAULT_MAX_FRAME,
    ERR_BAD_REQUEST,
    ERR_FRAME_TOO_LARGE,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ERR_SHUTTING_DOWN,
    ERR_TIMEOUT,
    ERR_UNKNOWN_COMMAND,
    PROTOCOL_VERSION,
    SERVER_NAME,
    FrameTooLarge,
    ProtocolError,
    TruncatedFrame,
    error_response,
    ok_response,
)
from .service import AnalysisService, RequestError

#: Every op the daemon answers (the protocol suite pins this vocabulary).
KNOWN_OPS = (
    "ping",
    "protocol_version",
    "health",
    "analyze",
    "bench",
    "reanalyze",
    "cache_stats",
    "metrics",
    "shutdown",
)

#: Ops dispatched to the worker pool under the request timeout.
HEAVY_OPS = ("analyze", "bench", "reanalyze")

logger = logging.getLogger("repro.server.daemon")


@dataclass(frozen=True)
class ServerConfig:
    """Where and how the daemon serves.

    Exactly one of ``socket_path`` (unix domain socket) or ``host``
    (TCP; ``port=0`` binds an ephemeral port, readable off
    ``AnalysisServer.endpoint`` once ready) must be set.
    """

    socket_path: Optional[str] = None
    host: Optional[str] = None
    port: int = 0
    #: Analysis worker threads.  The service serializes actual analysis
    #: (the interned domain is process-global), so this bounds how many
    #: requests may be *admitted* concurrently, not parallel compute.
    workers: int = 1
    #: Default per-request wall-clock budget for heavy ops, seconds.  A
    #: request may lower it with its own ``timeout`` field, never raise it.
    #: ``None`` disables the server-side cap.
    request_timeout: Optional[float] = 300.0
    #: Largest accepted/emitted frame payload, bytes.
    max_frame: int = DEFAULT_MAX_FRAME
    #: How long graceful shutdown waits for in-flight requests, seconds.
    drain_timeout: float = 30.0
    #: Requests slower than this are logged at WARNING and counted under
    #: ``server.slow_requests_total``; ``None`` disables the slow log.
    slow_request_threshold: Optional[float] = 5.0
    #: Backpressure: heavy requests beyond this many simultaneously admitted
    #: are *shed* with a structured, retryable ``overloaded`` error instead
    #: of being queued without bound.  Fast ops (ping, health, metrics, ...)
    #: always answer.  ``None`` or ``0`` disables shedding.
    max_inflight: Optional[int] = 64
    #: A validated fault plan installed process-wide at startup — the chaos
    #: hook for exercising ``server.frame`` drops and cache-tier faults in a
    #: live daemon.  ``None`` (the default) injects nothing and costs one
    #: pointer check per injection site.
    faults: Optional[FaultPlan] = None
    limits: LimitsLike = DEFAULT_LIMITS
    #: Persistent-store config; ``None`` → the service's private in-process
    #: memory store (warm across requests, gone with the daemon).
    cache: Optional[CacheConfig] = field(default=None)

    def validated(self) -> "ServerConfig":
        if bool(self.socket_path) == bool(self.host):
            raise ValueError(
                "configure exactly one endpoint: socket_path (unix) or host/port (tcp)"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_frame < protocol.HEADER.size:
            raise ValueError("max_frame is too small to carry any payload")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive (or None)")
        if self.slow_request_threshold is not None and self.slow_request_threshold <= 0:
            raise ValueError("slow_request_threshold must be positive (or None)")
        if self.max_inflight is not None and self.max_inflight < 0:
            raise ValueError("max_inflight must be >= 0 (0/None disables shedding)")
        if self.faults is not None:
            self.faults.validated()
        return self


class AnalysisServer:
    """One daemon: a listening socket over one warm :class:`AnalysisService`."""

    def __init__(self, config: ServerConfig, service: Optional[AnalysisService] = None):
        self.config = config.validated()
        self.service = service or AnalysisService(
            limits=self.config.limits, cache=self.config.cache
        )
        #: ``("unix", path)`` or ``("tcp", host, port)`` once listening.
        self.endpoint: Optional[Tuple] = None
        self._ready = threading.Event()
        self._finished = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping: Optional[asyncio.Event] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._connections: set = set()
        self._inflight = 0
        self._drained: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        #: The service's lifetime registry; the daemon records the
        #: transport-level metrics (per-op counters/latencies, connection
        #: and in-flight gauges, bytes) into the same place the warm suite
        #: runs land their workload histograms.
        self.metrics = self.service.metrics
        # Pre-register the level gauges so a scrape always reports them,
        # even before the first heavy request or connection.
        self.metrics.gauge("server.connections")
        self.metrics.gauge("server.inflight")
        self.metrics.gauge("server.queue_depth")
        self.metrics.counter("server.shed_total")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Serve until a ``shutdown`` request (or SIGINT/SIGTERM) — blocking."""
        try:
            asyncio.run(self._main())
        finally:
            self._finished.set()

    def start_background(self) -> "AnalysisServer":
        """Run the daemon on a background thread; returns once listening."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.run, name="repro-analysis-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("analysis server did not start listening within 30s")
        return self

    def request_stop(self) -> None:
        """Trigger graceful shutdown from any thread (idempotent)."""
        loop, stopping = self._loop, self._stopping
        if loop is not None and stopping is not None and not loop.is_closed():
            loop.call_soon_threadsafe(stopping.set)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for the daemon to finish; True when it has."""
        finished = self._finished.wait(timeout=timeout)
        if self._thread is not None and finished:
            self._thread.join(timeout=timeout)
        return finished

    # ------------------------------------------------------------------
    # event-loop body
    # ------------------------------------------------------------------

    async def _main(self) -> None:
        if self.config.faults is not None and current_fault_plan() is None:
            # Chaos mode: the plan is process-global, so it reaches the
            # cache tier and warm suite runs inside worker threads too.
            install_fault_plan(self.config.faults)
            logger.warning(
                "fault injection active: %s", "; ".join(self.config.faults.describe())
            )
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._drained = asyncio.Event()
        self._drained.set()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-analysis"
        )
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            # Signal handlers only exist on the main thread of the main
            # interpreter; background-thread servers rely on request_stop().
            for signum in (signal.SIGINT, signal.SIGTERM):
                self._loop.add_signal_handler(signum, self._stopping.set)

        if self.config.socket_path:
            path = self.config.socket_path
            with contextlib.suppress(OSError):
                os.unlink(path)  # a stale socket file from a dead daemon
            server = await asyncio.start_unix_server(self._handle_connection, path=path)
            self.endpoint = ("unix", path)
        else:
            server = await asyncio.start_server(
                self._handle_connection, host=self.config.host, port=self.config.port
            )
            bound = server.sockets[0].getsockname()
            self.endpoint = ("tcp", bound[0], bound[1])
        logger.info("listening on %s", self.endpoint)
        self._ready.set()

        try:
            async with server:
                await self._stopping.wait()
                # Graceful drain: stop accepting, let in-flight work finish.
                logger.info("draining: %d in-flight request(s)", self._inflight)
                server.close()
                await server.wait_closed()
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        self._drained.wait(), timeout=self.config.drain_timeout
                    )
                if self._inflight:
                    logger.warning(
                        "drain timeout: abandoning %d in-flight request(s)",
                        self._inflight,
                    )
        finally:
            for writer in list(self._connections):
                with contextlib.suppress(Exception):
                    writer.close()
            self._executor.shutdown(wait=False)
            # Flush the persistent store *after* the executor stops taking
            # work; close() takes the service lock, so it also waits out a
            # straggler analysis thread instead of racing it.
            self.service.close()
            if self.endpoint and self.endpoint[0] == "unix":
                with contextlib.suppress(OSError):
                    os.unlink(self.endpoint[1])

    async def _send(
        self, writer: asyncio.StreamWriter, message: Dict[str, Any]
    ) -> None:
        """Write one frame and account its bytes under ``server.bytes_sent_total``."""
        sent = await protocol.write_frame(writer, message, self.config.max_frame)
        self.metrics.counter("server.bytes_sent_total").inc(sent)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        max_frame = self.config.max_frame
        self._connections.add(writer)
        connections = self.metrics.gauge("server.connections")
        connections.inc()
        self.metrics.counter("server.connections_total").inc()
        received = self.metrics.counter("server.bytes_received_total")
        logger.debug("connection opened (%d live)", len(self._connections))
        try:
            await self._send(writer, protocol.hello(self.config.workers, max_frame))
            while True:
                try:
                    message, nbytes = await protocol.read_frame_sized(reader, max_frame)
                    received.inc(nbytes)
                except FrameTooLarge as error:
                    # The declared length alone is disqualifying; the body
                    # was never read, so the stream cannot be re-synced.
                    logger.warning("dropping connection: %s", error)
                    await self._send(
                        writer,
                        error_response(
                            None,
                            ERR_FRAME_TOO_LARGE,
                            str(error),
                            declared=error.declared,
                            limit=error.limit,
                        ),
                    )
                    break
                except TruncatedFrame as error:
                    logger.debug("peer vanished mid-frame: %s", error)
                    break  # nothing left to answer
                except ProtocolError as error:
                    # Framing is intact — the payload was just not a JSON
                    # object.  Answer structurally and keep the connection.
                    logger.warning("bad frame payload: %s", error)
                    await self._send(
                        writer, error_response(None, protocol.ERR_BAD_FRAME, str(error))
                    )
                    continue
                if message is None:
                    break  # clean EOF
                rule = fault_fire("server.frame", str(message.get("op")))
                if rule is not None and rule.kind == "drop":
                    # Injected connection drop: hang up after reading the
                    # request, before any response — the client sees a clean
                    # EOF, exactly what a daemon restart looks like.  Counted
                    # here directly (suite-side export skips server.* sites).
                    self.metrics.counter(
                        "faults.injected_total", site="server.frame", kind="drop"
                    ).inc()
                    logger.warning(
                        "injected connection drop (op=%r id=%r)",
                        message.get("op"),
                        message.get("id"),
                    )
                    break
                response, action = await self._dispatch(message)
                try:
                    await self._send(writer, response)
                except FrameTooLarge as error:
                    logger.error(
                        "response for id=%r exceeds the frame limit: %s",
                        message.get("id"),
                        error,
                    )
                    await self._send(
                        writer,
                        error_response(
                            message.get("id"),
                            ERR_INTERNAL,
                            f"response exceeds the frame limit: {error}",
                        ),
                    )
                if action == "shutdown":
                    logger.info("shutdown requested by peer")
                    self._stopping.set()
                    break
        except (ConnectionResetError, BrokenPipeError, TruncatedFrame) as error:
            # Peer went away; the daemon stays healthy.
            logger.debug("connection lost: %s: %s", type(error).__name__, error)
        finally:
            connections.dec()
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
            logger.debug("connection closed (%d live)", len(self._connections))

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    async def _dispatch(self, message: Dict[str, Any]) -> Tuple[Dict[str, Any], Optional[str]]:
        """Route one request, with per-op accounting around the real dispatch.

        Every request — known or not — lands in ``server.requests_total``
        and ``server.request_seconds`` under its op label (``unknown`` for
        an unrecognized or missing op), counted *before* dispatch so a
        ``metrics`` scrape's own request is visible in its own response.
        Failures add ``server.errors_total``; anything over the configured
        slow-request threshold is logged at WARNING and counted.
        """
        op = message.get("op")
        op_label = op if isinstance(op, str) and op in KNOWN_OPS else "unknown"
        self.metrics.counter("server.requests_total", op=op_label).inc()
        started = time.perf_counter_ns()
        response, action = await self._dispatch_inner(message)
        elapsed = (time.perf_counter_ns() - started) / 1e9
        self.metrics.histogram("server.request_seconds", op=op_label).observe(elapsed)
        if response.get("ok") is not True:
            self.metrics.counter("server.errors_total", op=op_label).inc()
        threshold = self.config.slow_request_threshold
        if threshold is not None and elapsed >= threshold:
            self.metrics.counter("server.slow_requests_total", op=op_label).inc()
            logger.warning(
                "slow request: op=%s id=%r took %.3fs (threshold %.3gs)",
                op_label,
                message.get("id"),
                elapsed,
                threshold,
            )
        return response, action

    async def _dispatch_inner(
        self, message: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], Optional[str]]:
        request_id = message.get("id")
        op = message.get("op")
        if not isinstance(op, str):
            return (
                error_response(
                    request_id, ERR_BAD_REQUEST, 'request must carry an "op" string'
                ),
                None,
            )
        if op == "ping":
            return ok_response(request_id, pong=True), None
        if op == "health":
            return self._health_response(request_id), None
        if op == "protocol_version":
            return (
                ok_response(
                    request_id,
                    server=SERVER_NAME,
                    protocol=PROTOCOL_VERSION,
                    ops=list(KNOWN_OPS),
                ),
                None,
            )
        if op == "shutdown":
            return (
                ok_response(
                    request_id,
                    stopping=True,
                    requests_served=self.service.requests_served,
                    inflight=self._inflight,
                ),
                "shutdown",
            )
        if op == "cache_stats":
            return ok_response(request_id, **self.service.cache_stats()), None
        if op == "metrics":
            try:
                return ok_response(request_id, **self.service.metrics_payload(message)), None
            except RequestError as error:
                return error_response(request_id, ERR_BAD_REQUEST, str(error)), None
        if op in HEAVY_OPS:
            return await self._dispatch_heavy(request_id, op, message), None
        return (
            error_response(
                request_id,
                ERR_UNKNOWN_COMMAND,
                f"unknown op {op!r}",
                known=list(KNOWN_OPS),
            ),
            None,
        )

    def _health_response(self, request_id: Any) -> Dict[str, Any]:
        """Liveness + load in one cheap frame, answered even under overload.

        ``status`` summarizes for probes: ``draining`` once shutdown began,
        ``degraded`` while the persistent cache tier has tripped its circuit
        breaker, ``ok`` otherwise.  The rest is the raw admission state a
        backoff-aware client or load balancer wants.
        """
        draining = self._stopping is not None and self._stopping.is_set()
        cache_degraded = bool(getattr(self.service.cache, "degraded", False))
        status = "draining" if draining else ("degraded" if cache_degraded else "ok")
        return ok_response(
            request_id,
            status=status,
            ready=not draining,
            inflight=self._inflight,
            queue_depth=max(0, self._inflight - self.config.workers),
            max_inflight=self.config.max_inflight,
            workers=self.config.workers,
            cache_degraded=cache_degraded,
            shed_total=int(self.metrics.counter("server.shed_total").value),
            requests_served=self.service.requests_served,
        )

    async def _dispatch_heavy(
        self, request_id: Any, op: str, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        if self._stopping.is_set():
            return error_response(
                request_id, ERR_SHUTTING_DOWN, "server is draining; not accepting work"
            )
        max_inflight = self.config.max_inflight
        if max_inflight and self._inflight >= max_inflight:
            # Load shedding: beyond the admission cap, refuse cheaply and
            # structurally *before* touching the executor — the client's
            # backoff loop owns the retry, not a server-side queue.
            self.metrics.counter("server.shed_total").inc()
            logger.warning(
                "shedding op=%s id=%r: %d in-flight >= max_inflight=%d",
                op,
                request_id,
                self._inflight,
                max_inflight,
            )
            return error_response(
                request_id,
                ERR_OVERLOADED,
                f"server is at its admission limit ({max_inflight} in-flight); retry",
                max_inflight=max_inflight,
                inflight=self._inflight,
                retryable=True,
            )
        timeout = self.config.request_timeout
        requested = message.get("timeout")
        if requested is not None:
            if not isinstance(requested, (int, float)) or requested <= 0:
                return error_response(
                    request_id, ERR_BAD_REQUEST, "timeout must be a positive number"
                )
            timeout = min(timeout, requested) if timeout is not None else float(requested)
        handlers = {
            "analyze": self.service.analyze,
            "bench": self.service.bench,
            "reanalyze": self.service.reanalyze,
        }
        handler = handlers[op]
        self._inflight += 1
        self._drained.clear()
        # Admission accounting: requests beyond the worker count sit in the
        # executor's queue, so queue depth is the in-flight overflow.
        self.metrics.gauge("server.inflight").set(self._inflight)
        self.metrics.gauge("server.queue_depth").set(
            max(0, self._inflight - self.config.workers)
        )
        try:
            payload = await asyncio.wait_for(
                self._loop.run_in_executor(self._executor, partial(handler, message)),
                timeout=timeout,
            )
        except asyncio.TimeoutError:
            logger.warning(
                "request timeout: op=%s id=%r exceeded %.3gs", op, request_id, timeout
            )
            return error_response(
                request_id,
                ERR_TIMEOUT,
                f"{op} exceeded its {timeout:g}s budget",
                timeout=timeout,
            )
        except RequestError as error:
            logger.info("bad request: op=%s id=%r: %s", op, request_id, error)
            return error_response(request_id, ERR_BAD_REQUEST, str(error))
        except Exception as error:  # noqa: BLE001 - surfaced to the client
            logger.exception("internal error serving op=%s id=%r", op, request_id)
            return error_response(
                request_id, ERR_INTERNAL, f"{type(error).__name__}: {error}"
            )
        finally:
            self._inflight -= 1
            self.metrics.gauge("server.inflight").set(self._inflight)
            self.metrics.gauge("server.queue_depth").set(
                max(0, self._inflight - self.config.workers)
            )
            if self._inflight == 0:
                self._drained.set()
        return ok_response(request_id, **payload)


def run_server(config: ServerConfig) -> int:
    """Blocking CLI entry: serve until shutdown; returns an exit status."""
    server = AnalysisServer(config)
    server.run()
    return 0
