"""The analysis server's wire protocol: length-prefixed JSON frames.

Every message — in both directions — is one **frame**:

========  ==================================================================
bytes     meaning
========  ==================================================================
0..3      payload length ``N`` as an unsigned 32-bit big-endian integer
4..4+N-1  the payload: one UTF-8 JSON **object**
========  ==================================================================

Requests carry ``{"id": <int>, "op": <str>, ...params}``; responses echo
the ``id`` and carry either ``{"ok": true, ...payload}`` or
``{"ok": false, "error": {"code": <str>, "message": <str>}}``.  The server
sends one unsolicited **hello** frame immediately after accepting a
connection (``{"server": ..., "protocol": ...}``) — the protocol-version
handshake: a client that speaks a different :data:`PROTOCOL_VERSION` must
disconnect instead of issuing requests.

Frames larger than the negotiated maximum are rejected *before* the body
is read — the declared length alone condemns them — with a structured
``frame_too_large`` error response, after which the connection is closed
(an over-limit peer cannot be re-synchronized safely).  A well-framed
payload that fails to parse as a JSON object gets a ``bad_frame`` error
and the connection stays open: the framing layer is still in sync.

This module is transport-agnostic on purpose: the asyncio daemon
(:mod:`repro.server.daemon`) uses the ``read_frame``/``write_frame``
stream coroutines, the synchronous client (:mod:`repro.server.client`)
and the protocol tests use ``send_frame``/``recv_frame`` over plain
sockets, and both share the same ``encode_frame``/``decode_frame`` core.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, Mapping, Optional, Tuple

#: Version of the frame layout + command vocabulary.  Bump on any change a
#: v(N-1) client could misinterpret; the hello handshake carries it.
PROTOCOL_VERSION = 1

#: Advertised in the hello frame so operators can tell apart whatever else
#: ends up listening on the socket.
SERVER_NAME = "repro-analysis-server"

#: Default cap on a single frame's payload, generous against the largest
#: canonical analyze response seen in the benches while still bounding a
#: hostile or corrupt length prefix to one allocation refusal.
DEFAULT_MAX_FRAME = 8 * 1024 * 1024

#: The 4-byte unsigned big-endian length prefix.
HEADER = struct.Struct(">I")

# Error codes carried in ``{"error": {"code": ...}}`` responses.
ERR_BAD_FRAME = "bad_frame"
ERR_FRAME_TOO_LARGE = "frame_too_large"
ERR_BAD_REQUEST = "bad_request"
ERR_UNKNOWN_COMMAND = "unknown_command"
ERR_TIMEOUT = "timeout"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_OVERLOADED = "overloaded"
ERR_INTERNAL = "internal_error"


class ProtocolError(Exception):
    """A frame violated the protocol (bad header, bad JSON, not an object)."""


class TruncatedFrame(ProtocolError):
    """The connection died mid-frame — there is nothing left to resync with.

    Distinguished from a plain :class:`ProtocolError` (bad JSON inside an
    intact frame) because the correct reactions differ: a truncated frame
    means the peer is gone and the connection must be dropped, while a bad
    payload gets a structured ``bad_frame`` error response and the
    conversation continues.
    """


class ConnectionClosed(ProtocolError):
    """The peer closed the connection cleanly where a frame was expected.

    Raised by the client when the server hangs up *between* frames — a
    clean EOF, not a truncated one.  Split from :class:`TruncatedFrame`
    because a clean close is the signature of a dropped-but-healthy server
    (restart, idle reap, injected drop) and is therefore safe to retry for
    idempotent requests, while a mid-frame truncation may have left a
    request half-processed.
    """


class FrameTooLarge(ProtocolError):
    """A frame declared a payload beyond the negotiated maximum."""

    def __init__(self, declared: int, limit: int):
        super().__init__(f"frame declares {declared} bytes; limit is {limit}")
        self.declared = declared
        self.limit = limit


def encode_frame(message: Mapping[str, Any], max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialize one message into header + JSON payload bytes."""
    payload = json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise FrameTooLarge(len(payload), max_frame)
    return HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Dict[str, Any]:
    """Parse one frame payload; raises :class:`ProtocolError` unless it is a JSON object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame payload is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


# ---------------------------------------------------------------------------
# asyncio stream transport (the daemon side)
# ---------------------------------------------------------------------------


async def read_frame_sized(
    reader: asyncio.StreamReader, max_frame: int = DEFAULT_MAX_FRAME
) -> Tuple[Optional[Dict[str, Any]], int]:
    """:func:`read_frame` plus the frame's wire size (header + payload).

    The size lets the daemon account bytes-received without re-encoding;
    ``(None, 0)`` on clean EOF before a header.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None, 0  # clean EOF between frames
        raise TruncatedFrame(
            f"connection closed mid-header ({len(error.partial)}/{HEADER.size} bytes)"
        ) from None
    (length,) = HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(length, max_frame)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise TruncatedFrame(
            f"connection closed mid-frame ({len(error.partial)}/{length} bytes)"
        ) from None
    return decode_frame(payload), HEADER.size + length


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = DEFAULT_MAX_FRAME
) -> Optional[Dict[str, Any]]:
    """Read one frame from a stream; ``None`` on clean EOF before a header."""
    message, _size = await read_frame_sized(reader, max_frame)
    return message


async def write_frame(
    writer: asyncio.StreamWriter,
    message: Mapping[str, Any],
    max_frame: int = DEFAULT_MAX_FRAME,
) -> int:
    """Write one frame to a stream and drain it; returns its wire size."""
    data = encode_frame(message, max_frame)
    writer.write(data)
    await writer.drain()
    return len(data)


# ---------------------------------------------------------------------------
# blocking socket transport (the client side and the raw-socket tests)
# ---------------------------------------------------------------------------


def send_frame(
    sock: socket.socket,
    message: Mapping[str, Any],
    max_frame: int = DEFAULT_MAX_FRAME,
) -> None:
    """Send one frame over a blocking socket."""
    sock.sendall(encode_frame(message, max_frame))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise TruncatedFrame(
                f"connection closed mid-read ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, max_frame: int = DEFAULT_MAX_FRAME
) -> Optional[Dict[str, Any]]:
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    first = sock.recv(HEADER.size)
    if not first:
        return None
    header = first + (_recv_exactly(sock, HEADER.size - len(first)) if len(first) < HEADER.size else b"")
    (length,) = HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(length, max_frame)
    return decode_frame(_recv_exactly(sock, length))


# ---------------------------------------------------------------------------
# message builders
# ---------------------------------------------------------------------------


def hello(workers: int, max_frame: int) -> Dict[str, Any]:
    """The unsolicited greeting a server sends on every new connection."""
    return {
        "server": SERVER_NAME,
        "protocol": PROTOCOL_VERSION,
        "workers": workers,
        "max_frame": max_frame,
    }


def ok_response(request_id: Any, **payload: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"id": request_id, "ok": True}
    response.update(payload)
    return response


def error_response(
    request_id: Any, code: str, message: str, **details: Any
) -> Dict[str, Any]:
    error: Dict[str, Any] = {"code": code, "message": message}
    if details:
        error.update(details)
    return {"id": request_id, "ok": False, "error": error}
