"""Analysis-as-a-service: the long-lived daemon over warm analysis state.

The one-shot CLI tears down the interning tables, transfer memos and
persistent store between invocations; this package keeps them alive in a
long-lived asyncio daemon and serves them to many concurrent clients over
a small length-prefixed JSON protocol.

* :mod:`.protocol` — the frame layout, op vocabulary and error codes;
* :mod:`.service` — :class:`AnalysisService`, the warm shared state
  (server-lifetime transfer cache + open backend + merged stats) and the
  request handlers over it;
* :mod:`.daemon` — :class:`AnalysisServer`, the asyncio socket server
  with its bounded worker pool, per-request timeouts and graceful drain;
* :mod:`.client` — :class:`AnalysisClient`, the synchronous client the
  ``repro client`` CLI and the protocol test-suites share.
"""

from .client import AnalysisClient, ProtocolMismatch, ServerError
from .daemon import AnalysisServer, ServerConfig, run_server
from .protocol import DEFAULT_MAX_FRAME, PROTOCOL_VERSION, SERVER_NAME
from .service import AnalysisService, RequestError

__all__ = [
    "AnalysisClient",
    "AnalysisServer",
    "AnalysisService",
    "DEFAULT_MAX_FRAME",
    "PROTOCOL_VERSION",
    "ProtocolMismatch",
    "RequestError",
    "SERVER_NAME",
    "ServerConfig",
    "ServerError",
    "run_server",
]
