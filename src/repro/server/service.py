"""The warm analysis service behind the daemon's protocol layer.

One :class:`AnalysisService` owns everything the one-shot CLI used to tear
down between invocations:

* one **server-lifetime** :class:`~repro.analysis.transfer.TransferCache`
  with an open persistent :class:`~repro.cache.backend.CacheBackend`
  behind it (a private in-process memory store by default, a disk store
  shared with the batch CLI when configured);
* the process-global interned path/matrix domain and ``GLOBAL_SYMBOLS``
  table, which stay hot simply because the process stays alive;
* server-lifetime merged :class:`~repro.analysis.context.AnalysisStats`.

Every request gets a *fresh* :class:`~repro.analysis.engine.BatchAnalyzer`
attached to the shared cache (``transfer_cache=...``), so per-request
stats are exact deltas; the request's items run through
:meth:`~repro.workloads.suite.ShardedSuiteRunner.run_warm` — the same
suite machinery the sharded CLI uses, pointed at the warm batch instead of
fresh worker processes — and the per-request stats are merged into the
lifetime totals that ``cache_stats`` reports.

Why the second request is cheap: the in-memory transfer memo keys on
``id(stmt)``, so a re-submitted program (freshly parsed, new statement
objects) misses it — but the persistent tier keys on **content**, so every
transfer the first request computed is decoded instead of recomputed.
That read-through is the nonzero ``persistent_cache_hit_rate`` the
one-shot CLI could never show.

The service is thread-safe under the daemon's bounded worker pool: one
internal lock serializes the analysis itself (the interning tables are
process-global and convergence is pointer-based, so analysis must not
race), while snapshot reads (``cache_stats``) stay lock-free.
"""

from __future__ import annotations

import logging
import threading
import time
import uuid
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..analysis.context import AnalysisStats
from ..analysis.engine import BatchAnalyzer
from ..analysis.limits import DEFAULT_LIMITS, AnalysisLimits, LimitsLike, base_limits
from ..analysis.pathset import intern_table_sizes
from ..analysis.reanalysis import IncrementalSession, result_digest
from ..analysis.transfer import TransferCache
from ..cache.backend import CacheConfig, open_backend
from ..obs.metrics import MetricsRegistry, latency_tails, render_prometheus
from ..sil.normalize import parse_and_normalize
from ..workloads.generators import FAMILIES, GeneratorConfig, generate_scenarios
from ..workloads.suite import WORKLOADS, ShardedSuiteReport, ShardedSuiteRunner, source

#: Operations the service implements (the daemon adds ping/protocol_version,
#: which never reach the service).
SERVICE_OPS = ("analyze", "bench", "reanalyze", "cache_stats", "metrics")

logger = logging.getLogger("repro.server.service")


class RequestError(ValueError):
    """A request was well-framed but semantically invalid (→ ``bad_request``)."""


def _stats_payload(stats: AnalysisStats) -> Dict[str, float]:
    """Counters plus the derived hit rates, without the process-global tables."""
    payload: Dict[str, float] = dict(stats.counters())
    payload["transfer_cache_hit_rate"] = round(stats.transfer_cache_hit_rate, 4)
    payload["persistent_cache_hit_rate"] = round(stats.persistent_cache_hit_rate, 4)
    return payload


class AnalysisService:
    """Warm shared analysis state + the request handlers over it."""

    def __init__(
        self,
        limits: LimitsLike = DEFAULT_LIMITS,
        cache: Optional[CacheConfig] = None,
        entry: str = "main",
    ):
        self.limits = limits
        self.entry = entry
        # A daemon without an explicit store still deserves a persistent
        # tier — it is the whole point of staying alive.  The in-process
        # memory backend under a unique namespace gives cross-*request*
        # content-addressed hits without touching disk; a CacheConfig from
        # the CLI (--cache-dir) swaps in a store shared with batch runs.
        self.cache_config = (
            cache.validated()
            if cache is not None
            else CacheConfig(
                backend="memory", directory=f"analysis-server-{uuid.uuid4().hex}"
            )
        )
        self.cache = TransferCache(
            base_limits(limits).transfer_cache_size,
            policy=self.cache_config.policy,
            backend=open_backend(self.cache_config),
        )
        self.started_at = time.time()
        self.requests_served = 0
        self.requests_by_op: Dict[str, int] = {op: 0 for op in SERVICE_OPS}
        self._lifetime = AnalysisStats()
        #: Server-lifetime observability registry.  The daemon records its
        #: per-op request counters / latency histograms / transport gauges
        #: here, and every warm suite run's per-workload histograms are
        #: absorbed in — one registry, one ``metrics`` op.
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._closed = False
        logger.info(
            "analysis service ready (cache backend=%s, policy=%s)",
            self.cache_config.backend,
            self.cache_config.policy,
        )

    # ------------------------------------------------------------------
    # request parsing
    # ------------------------------------------------------------------

    def _items(self, params: Mapping[str, Any]) -> List[Tuple[str, str]]:
        """The (name, source) items an ``analyze`` request names.

        ``workloads`` picks named suite programs (all of them when the
        request names neither workloads nor inline programs); ``programs``
        carries inline ``{"name": ..., "source": ...}`` SIL sources.
        """
        names = params.get("workloads")
        programs = params.get("programs")
        if names is None and programs is None:
            names = list(WORKLOADS)
        names = list(names or [])
        unknown = [name for name in names if name not in WORKLOADS]
        if unknown:
            raise RequestError(
                f"unknown workloads: {unknown}; known: {sorted(WORKLOADS)}"
            )
        depth = params.get("depth", 4)
        if not isinstance(depth, int) or depth < 1:
            raise RequestError(f"depth must be a positive integer, got {depth!r}")
        items = [(name, source(name, depth=depth)) for name in names]
        for entry in programs or []:
            if (
                not isinstance(entry, Mapping)
                or not isinstance(entry.get("name"), str)
                or not isinstance(entry.get("source"), str)
            ):
                raise RequestError(
                    'each inline program must be {"name": <str>, "source": <str>}'
                )
            items.append((entry["name"], entry["source"]))
        if not items:
            raise RequestError("nothing to analyze: empty workloads/programs")
        return items

    def _request_limits(self, params: Mapping[str, Any]) -> LimitsLike:
        if params.get("adaptive", False):
            return AnalysisLimits.adaptive(base_limits(self.limits))
        return self.limits

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def analyze(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Analyze named workloads / inline programs against the warm state."""
        items = self._items(params)
        try:
            runner = ShardedSuiteRunner(items, shards=1)
        except ValueError as error:  # duplicate names
            raise RequestError(str(error)) from None
        report = self._run_warm(runner, self._request_limits(params))
        self._count("analyze")
        return {
            "results": report.results,
            "failures": report.failures,
            "widening": report.widening,
            "results_digest": report.results_digest(),
            "stats": _stats_payload(report.stats),
            "intern_table_growth": report.intern_tables,
            "seconds": round(report.seconds, 4),
        }

    def bench(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """A whole population (named workloads + generated scenarios), warm.

        The daemon's counterpart of ``python -m repro bench``: the same
        generator population and the same suite-runner report shape, but
        served from the warm cache instead of fresh worker processes.
        """
        seeds = params.get("seeds", 10)
        if not isinstance(seeds, int) or seeds < 0:
            raise RequestError(f"seeds must be a non-negative integer, got {seeds!r}")
        family = params.get("family", "all")
        families = None if family == "all" else str(family).split(",")
        for name in families or []:
            if name not in FAMILIES:
                raise RequestError(
                    f"unknown family {name!r}; known: {', '.join(FAMILIES)}"
                )
        config = GeneratorConfig(
            procedures=params.get("procedures", 2),
            depth=params.get("depth", 4),
            aliasing=params.get("aliasing", 0.3),
        ).clamped()
        scenarios = generate_scenarios(
            seeds, base_seed=params.get("seed", 0), config=config, families=families
        )
        items = [(name, source(name, depth=min(config.depth, 4))) for name in WORKLOADS]
        items += [(s.name, s.source) for s in scenarios]
        report = self._run_warm(
            ShardedSuiteRunner(items, shards=1), self._request_limits(params)
        )
        self._count("bench")
        payload = report.as_dict()
        payload["population"] = {
            "named_workloads": len(WORKLOADS),
            "generated_scenarios": len(scenarios),
            "base_seed": params.get("seed", 0),
            "families": list(families) if families else list(FAMILIES),
        }
        return payload

    def reanalyze(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Dirty-seeded re-analysis of an edited program over the warm cache.

        The request carries the old and new program sources; the service
        solves the old version (warm against the server-lifetime persistent
        tier), diffs, invalidates, and re-solves only the dirty frontier —
        an :class:`~repro.analysis.reanalysis.IncrementalSession` per
        request over the shared :class:`TransferCache`, so per-request
        stats stay exact deltas and still merge into the lifetime totals.
        ``verify: true`` additionally runs a from-scratch solve of the new
        version and reports whether the warm solution matched it exactly.
        """
        old_source = params.get("old_source")
        new_source = params.get("new_source")
        if not isinstance(old_source, str) or not isinstance(new_source, str):
            raise RequestError(
                'reanalyze needs "old_source" and "new_source" program strings'
            )
        name = str(params.get("name", "program"))
        verify = bool(params.get("verify", False))
        limits = self._request_limits(params)
        try:
            old_program, old_info = parse_and_normalize(old_source)
            new_program, new_info = parse_and_normalize(new_source)
        except Exception as error:  # noqa: BLE001 - front-end rejection
            raise RequestError(f"{type(error).__name__}: {error}") from None
        with self._lock:
            if self._closed:
                raise RequestError("service is closed")
            session = IncrementalSession(
                limits=limits, entry=self.entry, transfer_cache=self.cache
            )
            base = session.analyze(old_program, old_info)
            report = session.reanalyze(new_program, new_info, verify=verify)
            session.flush()
            self._lifetime = self._lifetime.merge(session.stats)
            self.requests_served += 1
        self._count("reanalyze")
        payload = report.as_dict()
        payload["program"] = name
        payload["base_digest"] = result_digest(base)
        # The whole request's counter deltas (base solve + re-analysis);
        # the lifetime totals stay the sum of these across requests.
        payload["request_stats"] = _stats_payload(session.stats)
        return payload

    def cache_stats(self, params: Mapping[str, Any] = None) -> Dict[str, Any]:
        """Server-lifetime totals, cache occupancy and store statistics."""
        self._count("cache_stats")  # before the snapshot: the call counts itself
        backend = self.cache.backend
        payload = {
            "server": {
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "requests_served": self.requests_served,
                "requests_by_op": dict(self.requests_by_op),
            },
            "lifetime_stats": _stats_payload(self._lifetime),
            "transfer_cache": {
                "entries": len(self.cache),
                "capacity": self.cache.capacity,
                "policy": self.cache.policy,
                "evictions": self.cache.evictions,
            },
            "persistent": backend.stats() if backend is not None else None,
            "intern_tables": intern_table_sizes(),
        }
        return payload

    def metrics_payload(self, params: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """The live observability registry, as JSON or Prometheus text.

        ``format: "json"`` (default) returns the raw registry snapshot plus
        derived tail tables; ``format: "prometheus"`` returns the text
        exposition under ``"text"``.  Counted *before* the snapshot, like
        ``cache_stats``: the scrape shows itself in ``requests_by_op``.
        """
        fmt = (params or {}).get("format", "json")
        if fmt not in ("json", "prometheus"):
            raise RequestError(
                f'metrics format must be "json" or "prometheus", got {fmt!r}'
            )
        self._count("metrics")
        # Warm runs export cache.degraded per run and absorb() sums gauges,
        # so pin the gauge to the live truth before every scrape.
        self.metrics.gauge("cache.degraded").set(1 if self.cache.degraded else 0)
        if fmt == "prometheus":
            return {"format": "prometheus", "text": render_prometheus(self.metrics)}
        return {
            "format": "json",
            "metrics": self.metrics.as_dict(),
            "tails": {
                "server.request_seconds": latency_tails(
                    self.metrics, "server.request_seconds", "op"
                ),
                "suite.workload_seconds": latency_tails(
                    self.metrics, "suite.workload_seconds", "workload"
                ),
            },
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def lifetime_stats(self) -> AnalysisStats:
        return self._lifetime

    def flush(self) -> None:
        """Write any buffered transfer deltas to the persistent store."""
        with self._lock:
            self.cache.flush(self._lifetime)

    def close(self) -> None:
        """Flush and release the persistent backend (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self.cache.flush(self._lifetime)
            if self.cache.backend is not None:
                self.cache.backend.close()
                self.cache.backend = None
        logger.info(
            "analysis service closed after %d requests (%.1fs uptime)",
            self.requests_served,
            time.time() - self.started_at,
        )

    # ------------------------------------------------------------------

    def _run_warm(self, runner: ShardedSuiteRunner, limits: LimitsLike) -> ShardedSuiteReport:
        """One request through the warm batch, lifetime totals updated.

        The lock serializes actual analysis across the daemon's worker
        threads: the interned domain is process-global and convergence is
        a pointer check, so two interleaved analyses could otherwise race
        the hash-cons tables.  Protocol-level concurrency (many clients,
        pipelined frames) is the daemon's job; compute is serialized here.
        """
        with self._lock:
            if self._closed:
                raise RequestError("service is closed")
            batch = BatchAnalyzer(
                limits=limits, entry=self.entry, transfer_cache=self.cache
            )
            report = runner.run_warm(batch)
            # run_warm reports are exact deltas, so lifetime totals stay the
            # sum of the per-request stats the responses carried — and the
            # per-workload metric histograms accumulate the same way.
            self._lifetime = self._lifetime.merge(report.stats)
            self.metrics.absorb(report.metrics)
            self.requests_served += 1
        logger.debug(
            "warm run: %d workloads, %d failures, %.3fs",
            len(report.results),
            len(report.failures),
            report.seconds,
        )
        return report

    def _count(self, op: str) -> None:
        self.requests_by_op[op] = self.requests_by_op.get(op, 0) + 1
