"""The batch-analysis command line: ``python -m repro <command>``.

Three subcommands turn the reproduction into a workload-serving frontend:

* ``analyze`` — analyze named workloads and/or generated scenarios,
  optionally sharded across worker processes, and print per-workload
  outcomes plus the merged :class:`~repro.analysis.context.AnalysisStats`.
* ``bench`` — run a whole population (every named workload + a seeded
  random scenario population) through the sharded suite runner, verify the
  sharded results are bit-identical to a single-process run, and write the
  merged per-shard stats artifact (``BENCH_analysis.json``).
* ``generate`` — emit seeded random SIL scenario sources (stdout or
  ``--out`` directory), optionally cross-checked against the reference
  engine.

Everything is built on the PR-1 architecture: scenarios travel as source
text, every analysis goes through ``AnalysisContext`` and the pass
pipeline, and sharding happens in :class:`repro.workloads.suite.
ShardedSuiteRunner` — no side-channel entry points.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .analysis.context import AnalysisStats
from .analysis.limits import DEFAULT_LIMITS, AnalysisLimits, LimitsLike
from .workloads.generators import (
    FAMILIES,
    GeneratorConfig,
    Scenario,
    cross_check_scenario,
    generate_scenarios,
)
from .workloads.suite import WORKLOADS, ShardedSuiteReport, ShardedSuiteRunner, source

#: Default artifact path of ``bench`` (matches the pytest bench artifact).
DEFAULT_ARTIFACT = "BENCH_analysis.json"


def _add_generator_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="base seed of the population")
    parser.add_argument(
        "--family",
        choices=FAMILIES + ("all",),
        default="all",
        help="scenario family (default: round-robin over all families)",
    )
    parser.add_argument(
        "--procedures", type=int, default=2, help="walker procedures per scenario"
    )
    parser.add_argument(
        "--depth", type=int, default=4, help="structure depth / length constant"
    )
    parser.add_argument(
        "--aliasing", type=float, default=0.3, help="handle-overlap probability in [0,1]"
    )


def _add_limits_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="adaptive analysis limits: re-run workloads whose widening "
        "counters fired with stepped-up domain bounds",
    )


def _effective_limits(args: argparse.Namespace) -> LimitsLike:
    if getattr(args, "adaptive", False):
        return AnalysisLimits.adaptive()
    return DEFAULT_LIMITS


def _generator_config(args: argparse.Namespace) -> GeneratorConfig:
    """The effective (clamped) generator config the population will use."""
    return GeneratorConfig(
        procedures=args.procedures, depth=args.depth, aliasing=args.aliasing
    ).clamped()


def _population(args: argparse.Namespace, count: int) -> List[Scenario]:
    families = None if args.family == "all" else [args.family]
    return generate_scenarios(
        count, base_seed=args.seed, config=_generator_config(args), families=families
    )


def _print_report(report: ShardedSuiteReport, matrices: bool = False) -> None:
    for name, canonical in report.results.items():
        procedures = len(canonical["entry_matrices"])
        diagnostics = len(canonical["diagnostics"])
        print(f"  ok    {name:24s} procs={procedures:<3d} diagnostics={diagnostics}")
        if matrices:
            for procedure, matrix in canonical["entry_matrices"].items():
                for source_handle, target_handle, paths in matrix["entries"]:
                    print(f"          {procedure}: {source_handle} -> {target_handle} : {paths}")
    for name, error in report.failures.items():
        print(f"  FAIL  {name:24s} {error}")
    print()
    print(f"shards ({len(report.shards)}):")
    header = f"  {'shard':>5s} {'n':>4s} {'pops':>6s} {'hits':>7s} {'misses':>7s} {'seconds':>8s}"
    print(header)
    for shard in report.shards:
        stats = shard.stats
        print(
            f"  {shard.shard:5d} {len(shard.workloads):4d} {stats.worklist_pops:6d} "
            f"{stats.transfer_cache_hits:7d} {stats.transfer_cache_misses:7d} "
            f"{shard.seconds:8.3f}"
        )
    print()
    print("merged AnalysisStats:")
    # Counters only: the intern tables live in the worker processes.
    for key, value in report.stats.counters().items():
        print(f"  {key:28s} {value}")
    print(f"  {'transfer_cache_hit_rate':28s} {report.stats.transfer_cache_hit_rate:.4f}")

    widening_counters = AnalysisStats.WIDENING_FIELDS + ("adaptive_escalations",)
    widened = {
        name: row
        for name, row in report.widening.items()
        if any(row.get(counter, 0) for counter in widening_counters)
    }
    print()
    print(f"widening telemetry ({len(widened)}/{len(report.widening)} workloads widened):")
    for name, row in widened.items():
        parts = [
            f"{counter}={row[counter]}"
            for counter in widening_counters
            if row.get(counter, 0)
        ]
        limits_used = row.get("final_limits", {})
        print(f"  {name:24s} {' '.join(parts)}"
              f"  (final max_segments={limits_used.get('max_segments')}, "
              f"max_paths={limits_used.get('max_paths_per_entry')})")


def _census(items: Sequence[Tuple[str, str]]) -> Dict[str, Dict[str, int]]:
    """Parallelism census over (name, source) items, batch-prepared oracles.

    Items that fail to parse or analyze get an ``error`` row instead of
    aborting the census (matching the suite's failure isolation).
    """
    from .parallel.oracle import PathMatrixOracle, parallelism_census
    from .analysis.limits import DEFAULT_LIMITS
    from .analysis.transfer import TransferCache
    from .sil.normalize import parse_and_normalize

    shared_cache = TransferCache(DEFAULT_LIMITS.transfer_cache_size)
    census: Dict[str, Dict[str, int]] = {}
    for name, text in items:
        try:
            program, info = parse_and_normalize(text)
            oracle = PathMatrixOracle(transfer_cache=shared_cache)
            oracle.prepare(program, info)
            census[name] = parallelism_census(program, info, oracle=oracle)
        except Exception as error:  # noqa: BLE001 - surfaced per workload
            census[name] = {"error": f"{type(error).__name__}: {error}"}
    return census


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def cmd_analyze(args: argparse.Namespace) -> int:
    if args.list:
        print("named workloads:")
        for name in WORKLOADS:
            print(f"  {name}")
        print("scenario families:")
        for family in FAMILIES:
            print(f"  {family}")
        return 0

    names = args.names or (list(WORKLOADS) if not args.generated else [])
    unknown = [name for name in names if name not in WORKLOADS]
    if unknown:
        print(f"unknown workloads: {unknown}; known: {sorted(WORKLOADS)}", file=sys.stderr)
        return 2
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        print(f"duplicate workloads: {duplicates}", file=sys.stderr)
        return 2
    items = [(name, source(name, depth=args.depth)) for name in names]
    if args.generated:
        items += [(s.name, s.source) for s in _population(args, args.generated)]

    runner = ShardedSuiteRunner(items, shards=args.shards, limits=_effective_limits(args))
    report = runner.run()
    print(f"analyzed {len(report.results)}/{len(items)} workloads "
          f"across {len(report.shards)} shard(s) in {report.seconds:.3f}s"
          f"{' [adaptive limits]' if args.adaptive else ''}")
    _print_report(report, matrices=args.matrices)

    if args.census:
        print("\nparallelism census (path-matrix oracle):")
        for name, row in _census(items).items():
            if "error" in row:
                print(f"  {name:24s} FAIL {row['error']}")
            else:
                print(
                    f"  {name:24s} groups={row['groups']:<3d} "
                    f"call_groups={row['call_groups']:<3d} "
                    f"independent={row['independent_answers']}/{row['queries']}"
                )
    return 1 if report.failures else 0


def cmd_bench(args: argparse.Namespace) -> int:
    config = _generator_config(args)
    scenarios = _population(args, args.seeds)
    items = [(name, source(name, depth=min(config.depth, 4))) for name in WORKLOADS]
    items += [(s.name, s.source) for s in scenarios]
    print(
        f"population: {len(WORKLOADS)} named workloads + {len(scenarios)} generated "
        f"scenarios (seed {args.seed}, families "
        f"{args.family if args.family != 'all' else ', '.join(FAMILIES)})"
    )

    runner = ShardedSuiteRunner(items, shards=args.shards, limits=_effective_limits(args))
    report = runner.run()
    print(f"\nsharded run ({args.shards} shards): {report.seconds:.3f}s"
          f"{' [adaptive limits]' if args.adaptive else ''}")
    _print_report(report)

    artifact: Dict[str, object] = {
        "population": {
            "named_workloads": len(WORKLOADS),
            "generated_scenarios": len(scenarios),
            "base_seed": args.seed,
            "adaptive_limits": bool(args.adaptive),
            "families": list(FAMILIES) if args.family == "all" else [args.family],
            # The *effective* (clamped) knobs the population was generated
            # with, not the raw CLI values.
            "generator": {
                "procedures": config.procedures,
                "depth": config.depth,
                "aliasing": config.aliasing,
            },
        },
        "sharded": report.as_dict(),
    }

    verified: Optional[bool] = None
    if not args.no_verify:
        single = runner.run_single_process()
        verified = report.matches(single)
        speedup = single.seconds / report.seconds if report.seconds else 0.0
        print(f"\nsingle-process reference: {single.seconds:.3f}s "
              f"(sharded speedup {speedup:.2f}x)")
        print(f"sharded results bit-identical to single process: {verified}")
        artifact["single_process"] = {"seconds": round(single.seconds, 4)}
        artifact["verified_identical"] = verified

    output = Path(args.output)
    output.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {output}")

    if report.failures or verified is False:
        return 1
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    scenarios = _population(args, args.count)
    if args.verify:
        for scenario in scenarios:
            if not cross_check_scenario(scenario):
                print(f"cross-check FAILED: {scenario.name}", file=sys.stderr)
                return 1
        print(f"cross-checked {len(scenarios)} scenarios against the reference engine",
              file=sys.stderr)
    if args.out:
        directory = Path(args.out)
        directory.mkdir(parents=True, exist_ok=True)
        for scenario in scenarios:
            (directory / f"{scenario.name}.sil").write_text(scenario.source.strip() + "\n")
        print(f"wrote {len(scenarios)} scenarios to {directory}")
    else:
        for scenario in scenarios:
            print(f"{{ scenario {scenario.name} (family {scenario.family}, "
                  f"seed {scenario.seed}) }}")
            print(scenario.source.strip())
            print()
    return 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Batch path-matrix analysis over workload suites and "
        "generated SIL scenario populations.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser(
        "analyze", help="analyze named workloads and/or generated scenarios"
    )
    analyze.add_argument("names", nargs="*", help="workload names (default: all)")
    analyze.add_argument("--shards", type=int, default=1, help="worker processes")
    analyze.add_argument(
        "--generated", type=int, default=0, metavar="N", help="add N generated scenarios"
    )
    analyze.add_argument("--matrices", action="store_true", help="print main entry matrices")
    analyze.add_argument(
        "--census", action="store_true", help="report the parallelism census per workload"
    )
    analyze.add_argument("--list", action="store_true", help="list workloads and families")
    _add_generator_options(analyze)
    _add_limits_options(analyze)
    analyze.set_defaults(func=cmd_analyze)

    bench = commands.add_parser(
        "bench",
        help="sharded benchmark over the named workloads + a generated population; "
        "writes the merged stats artifact",
    )
    bench.add_argument("--shards", type=int, default=4, help="worker processes")
    bench.add_argument(
        "--seeds", type=int, default=50, metavar="N", help="generated scenarios in the population"
    )
    bench.add_argument(
        "--output", default=DEFAULT_ARTIFACT, help="merged stats artifact path"
    )
    bench.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the single-process bit-identity verification run",
    )
    _add_generator_options(bench)
    _add_limits_options(bench)
    bench.set_defaults(func=cmd_bench)

    generate = commands.add_parser(
        "generate", help="emit seeded random SIL scenarios (stdout or --out directory)"
    )
    generate.add_argument("--count", type=int, default=5, help="scenarios to generate")
    generate.add_argument("--out", help="directory for .sil files (default: stdout)")
    generate.add_argument(
        "--verify",
        action="store_true",
        help="cross-check each scenario against the reference engine",
    )
    _add_generator_options(generate)
    generate.set_defaults(func=cmd_generate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
