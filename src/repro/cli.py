"""The batch-analysis command line: ``python -m repro <command>``.

Four subcommands turn the reproduction into a workload-serving frontend:

* ``analyze`` — analyze named workloads and/or generated scenarios,
  optionally sharded across worker processes, streaming per-workload
  outcomes as shards finish, plus the merged
  :class:`~repro.analysis.context.AnalysisStats`.
* ``bench`` — run a whole population (every named workload + a seeded
  random scenario population) through the sharded suite runner, verify the
  sharded results are bit-identical to a single-process run, and write the
  merged per-shard stats artifact (``BENCH_analysis.json``).  ``--time``
  adds the wall-clock harness (per-workload median analysis time + peak
  interning-table sizes in a ``timing`` section); ``--profile`` dumps a
  cProfile top-20 per workload to an artifact directory.
* ``generate`` — emit seeded random SIL scenario sources (stdout or
  ``--out`` directory), optionally cross-checked against the reference
  engine.
* ``reanalyze`` — cross-run incremental re-analysis of an edited program:
  solve the old version, diff, invalidate, re-solve only the dirty
  frontier, and (by default) verify the warm solution bit-identical to a
  from-scratch solve of the new version.  Takes two ``.sil`` files or a
  seeded generated scenario plus a seeded edit script.
* ``cache`` — inspect (``stats``), empty (``clear``) or compact
  (``compact``: stale-generation sweep + SQLite VACUUM) a persistent
  transfer-cache store created with ``--cache-dir``.
* ``serve`` — run the long-lived analysis daemon
  (:mod:`repro.server`): one warm transfer cache + interned domain
  serving ``analyze``/``bench``/``reanalyze``/``cache_stats`` requests to
  many clients over a unix or TCP socket, until a ``shutdown`` request.
* ``client`` — talk to a running daemon: ``ping``, ``version``,
  ``analyze``, ``bench``, ``reanalyze``, ``cache-stats``, ``shutdown``.

``analyze`` and ``bench`` accept the persistent-cache knobs: ``--cache-dir``
(a disk store shards and *runs* share — rerunning against the same
directory serves transfers from the store instead of recomputing them),
``--cache-backend``, ``--cache-policy`` and ``--cache-size``.

Everything is built on the PR-1 architecture: scenarios travel as source
text, every analysis goes through ``AnalysisContext`` and the pass
pipeline, and sharding happens in :class:`repro.workloads.suite.
ShardedSuiteRunner` — no side-channel entry points.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .analysis.context import AnalysisStats
from .analysis.limits import DEFAULT_LIMITS, AnalysisLimits, LimitsLike, base_limits
from .cache import BACKENDS, POLICIES, STORE_FILENAME, CacheConfig, DiskBackend
from .faults import FAULT_KINDS, KNOWN_SITES, FaultPlan
from .workloads.generators import (
    EDIT_KINDS,
    FAMILIES,
    EditScript,
    GeneratorConfig,
    Scenario,
    cross_check_scenario,
    generate_edited_pair,
    generate_scenario,
    generate_scenarios,
)
from .workloads.suite import (
    DEFAULT_MAX_ATTEMPTS,
    WORKLOADS,
    ShardedSuiteReport,
    ShardedSuiteRunner,
    source,
)

#: Default artifact path of ``bench`` (matches the pytest bench artifact).
DEFAULT_ARTIFACT = "BENCH_analysis.json"


def _family_arg(value: str) -> str:
    """Validate ``--family``: one family, a comma list, or ``all``."""
    if value == "all":
        return value
    for family in value.split(","):
        if family not in FAMILIES:
            raise argparse.ArgumentTypeError(
                f"unknown family {family!r}; choose from "
                f"{', '.join(FAMILIES)}, a comma-separated list, or 'all'"
            )
    return value


def _family_list(args: argparse.Namespace) -> List[str]:
    """The effective family round-robin of the population."""
    return list(FAMILIES) if args.family == "all" else args.family.split(",")


def _add_generator_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="base seed of the population")
    parser.add_argument(
        "--family",
        type=_family_arg,
        default="all",
        help="scenario family or comma-separated list, e.g. dag,deep,mixed "
        "(default: round-robin over all families)",
    )
    parser.add_argument(
        "--procedures", type=int, default=2, help="walker procedures per scenario"
    )
    parser.add_argument(
        "--depth", type=int, default=4, help="structure depth / length constant"
    )
    parser.add_argument(
        "--aliasing", type=float, default=0.3, help="handle-overlap probability in [0,1]"
    )


def _add_limits_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="adaptive analysis limits: re-run workloads whose widening "
        "counters fired with stepped-up domain bounds",
    )


def _add_trace_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="flight recorder: capture parse/solve/cache/dispatch spans for "
        "this run and write a Chrome trace-event JSON file (load it in "
        "Perfetto or chrome://tracing)",
    )


def _add_chaos_options(
    parser: argparse.ArgumentParser, max_attempts: bool = True
) -> None:
    parser.add_argument(
        "--chaos",
        action="append",
        default=None,
        metavar="SITE=KIND[:PROB[:MATCH[:DELAY]]]",
        help="inject a deterministic seeded fault at SITE "
        f"(sites: {', '.join(KNOWN_SITES)}; kinds: {', '.join(FAULT_KINDS)}); "
        "repeatable. Example: --chaos 'shard.workload=crash:1.0:@0' crashes "
        "every workload's first attempt",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed of the fault plan's deterministic probability draws "
        "(default: 0)",
    )
    if max_attempts:
        parser.add_argument(
            "--max-attempts",
            type=int,
            default=DEFAULT_MAX_ATTEMPTS,
            metavar="N",
            help="attempts per workload before a crashed shard's work is "
            f"reported as failed (default: {DEFAULT_MAX_ATTEMPTS})",
        )


def _fault_plan(args: argparse.Namespace) -> Optional[FaultPlan]:
    """The validated fault plan ``--chaos``/``--chaos-seed`` describe.

    Raises ``ValueError`` on a malformed spec (reported as exit 2, like the
    cache-flag errors).
    """
    specs = getattr(args, "chaos", None)
    if not specs:
        return None
    return FaultPlan.parse(specs, seed=getattr(args, "chaos_seed", 0))


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent transfer-cache directory shared across shards and "
        "runs (enables the disk backend; rerunning against the same "
        "directory serves cached transfers instead of recomputing)",
    )
    parser.add_argument(
        "--cache-backend",
        choices=BACKENDS,
        default=None,
        help="persistent store kind (default: disk when --cache-dir is "
        "given, otherwise no persistent tier)",
    )
    parser.add_argument(
        "--cache-policy",
        choices=POLICIES,
        default="lru",
        help="eviction policy of the transfer-cache layers (default: lru)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=None,
        metavar="N",
        help="in-memory transfer-cache capacity in entries "
        f"(default: {DEFAULT_LIMITS.transfer_cache_size})",
    )


def _effective_limits(args: argparse.Namespace) -> LimitsLike:
    base = DEFAULT_LIMITS
    size = getattr(args, "cache_size", None)
    if size is not None:
        base = replace(base, transfer_cache_size=max(1, size))
    if getattr(args, "adaptive", False):
        return AnalysisLimits.adaptive(base)
    return base


def _cache_config(args: argparse.Namespace) -> Optional[CacheConfig]:
    """The persistent-store config the CLI flags describe (None: no tier).

    Raises ``ValueError`` on inconsistent flags (e.g. ``--cache-backend
    disk`` without ``--cache-dir``).
    """
    backend = getattr(args, "cache_backend", None)
    directory = getattr(args, "cache_dir", None)
    if backend is None and directory:
        backend = "disk"
    if backend is None:
        return None
    return CacheConfig(
        backend=backend, directory=directory, policy=args.cache_policy
    ).validated()


def _warn_if_memory_backend_sharded(
    cache: Optional[CacheConfig], shards: int, item_count: int
) -> None:
    """The memory backend is process-local: flushed deltas die with forked
    shard workers, so a multi-shard run gains nothing across runs.  Warn
    rather than fail — single-shard (inline) use is the supported case."""
    if cache is not None and cache.backend == "memory" and min(shards, item_count) > 1:
        print(
            "warning: --cache-backend memory is process-local; shard workers "
            "discard their flushed deltas at exit. Use --cache-dir (disk) for "
            "a store that outlives worker processes.",
            file=sys.stderr,
        )


def _generator_config(args: argparse.Namespace) -> GeneratorConfig:
    """The effective (clamped) generator config the population will use."""
    return GeneratorConfig(
        procedures=args.procedures, depth=args.depth, aliasing=args.aliasing
    ).clamped()


def _population(args: argparse.Namespace, count: int) -> List[Scenario]:
    families = None if args.family == "all" else args.family.split(",")
    return generate_scenarios(
        count, base_seed=args.seed, config=_generator_config(args), families=families
    )


def _print_workload_rows(
    results: Dict[str, Dict], failures: Dict[str, str], matrices: bool = False
) -> None:
    """Per-workload ``ok``/``FAIL`` rows (used streaming and post-merge)."""
    for name, canonical in results.items():
        procedures = len(canonical["entry_matrices"])
        diagnostics = len(canonical["diagnostics"])
        print(f"  ok    {name:24s} procs={procedures:<3d} diagnostics={diagnostics}")
        if matrices:
            for procedure, matrix in canonical["entry_matrices"].items():
                for source_handle, target_handle, paths in matrix["entries"]:
                    print(f"          {procedure}: {source_handle} -> {target_handle} : {paths}")
    for name, error in failures.items():
        print(f"  FAIL  {name:24s} {error}")


def _print_report(
    report: ShardedSuiteReport,
    matrices: bool = False,
    rows: bool = True,
    cache: Optional[CacheConfig] = None,
    cache_size: Optional[int] = None,
    cache_policy: Optional[str] = None,
) -> None:
    if rows:
        _print_workload_rows(report.results, report.failures, matrices)
        print()
    print(f"shards ({len(report.shards)}):")
    header = f"  {'shard':>5s} {'n':>4s} {'pops':>6s} {'hits':>7s} {'misses':>7s} {'seconds':>8s}"
    print(header)
    for shard in report.shards:
        stats = shard.stats
        print(
            f"  {shard.shard:5d} {len(shard.workloads):4d} {stats.worklist_pops:6d} "
            f"{stats.transfer_cache_hits:7d} {stats.transfer_cache_misses:7d} "
            f"{shard.seconds:8.3f}"
        )
    print()
    stats = report.stats
    size = cache_size if cache_size is not None else DEFAULT_LIMITS.transfer_cache_size
    if cache_policy is not None:
        policy = cache_policy
    else:
        policy = cache.policy if cache is not None else "lru"
    if cache is None:
        tier = "none (in-process only)"
    else:
        where = f" @ {cache.directory}" if cache.directory else ""
        tier = f"{cache.backend}{where}"
    print(f"transfer cache: size={size} policy={policy} persistent={tier}")
    if stats.persistent_cache_requests:
        print(
            f"  persistent: hits={stats.persistent_cache_hits} "
            f"misses={stats.persistent_cache_misses} "
            f"hit_rate={stats.persistent_cache_hit_rate:.4f} "
            f"writes={stats.persistent_cache_writes} "
            f"evictions={stats.persistent_cache_evictions}"
        )
    print()
    print("merged AnalysisStats:")
    # Counters only: the intern tables live in the worker processes.
    for key, value in report.stats.counters().items():
        print(f"  {key:28s} {value}")
    print(f"  {'transfer_cache_hit_rate':28s} {report.stats.transfer_cache_hit_rate:.4f}")
    if report.intern_tables:
        print()
        print("interning-table growth (summed across shard workers):")
        for table in sorted(report.intern_tables):
            print(f"  {table:28s} {report.intern_tables[table]}")

    tails = report.tails()
    if tails:
        print()
        print("workload latency tails (from merged histogram buckets):")
        print(f"  {'workload':24s} {'n':>4s} {'p50':>10s} {'p90':>10s} {'p99':>10s}")
        for name, row in tails.items():
            print(
                f"  {name:24s} {row['count']:4d} {row['p50_seconds']:10.6f} "
                f"{row['p90_seconds']:10.6f} {row['p99_seconds']:10.6f}"
            )

    widening_counters = AnalysisStats.WIDENING_FIELDS + ("adaptive_escalations",)
    widened = {
        name: row
        for name, row in report.widening.items()
        if any(row.get(counter, 0) for counter in widening_counters)
    }
    print()
    print(f"widening telemetry ({len(widened)}/{len(report.widening)} workloads widened):")
    for name, row in widened.items():
        parts = [
            f"{counter}={row[counter]}"
            for counter in widening_counters
            if row.get(counter, 0)
        ]
        limits_used = row.get("final_limits", {})
        print(f"  {name:24s} {' '.join(parts)}"
              f"  (final max_segments={limits_used.get('max_segments')}, "
              f"max_paths={limits_used.get('max_paths_per_entry')})")


def _census(items: Sequence[Tuple[str, str]]) -> Dict[str, Dict[str, int]]:
    """Parallelism census over (name, source) items, batch-prepared oracles.

    Items that fail to parse or analyze get an ``error`` row instead of
    aborting the census (matching the suite's failure isolation).
    """
    from .parallel.oracle import PathMatrixOracle, parallelism_census
    from .analysis.limits import DEFAULT_LIMITS
    from .analysis.transfer import TransferCache
    from .sil.normalize import parse_and_normalize

    shared_cache = TransferCache(DEFAULT_LIMITS.transfer_cache_size)
    census: Dict[str, Dict[str, int]] = {}
    for name, text in items:
        try:
            program, info = parse_and_normalize(text)
            oracle = PathMatrixOracle(transfer_cache=shared_cache)
            oracle.prepare(program, info)
            census[name] = parallelism_census(program, info, oracle=oracle)
        except Exception as error:  # noqa: BLE001 - surfaced per workload
            census[name] = {"error": f"{type(error).__name__}: {error}"}
    return census


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def cmd_analyze(args: argparse.Namespace) -> int:
    if args.list:
        print("named workloads:")
        for name in WORKLOADS:
            print(f"  {name}")
        print("scenario families:")
        for family in FAMILIES:
            print(f"  {family}")
        return 0

    names = args.names or (list(WORKLOADS) if not args.generated else [])
    unknown = [name for name in names if name not in WORKLOADS]
    if unknown:
        print(f"unknown workloads: {unknown}; known: {sorted(WORKLOADS)}", file=sys.stderr)
        return 2
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        print(f"duplicate workloads: {duplicates}", file=sys.stderr)
        return 2
    items = [(name, source(name, depth=args.depth)) for name in names]
    if args.generated:
        items += [(s.name, s.source) for s in _population(args, args.generated)]

    try:
        cache = _cache_config(args)
        faults = _fault_plan(args)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    _warn_if_memory_backend_sharded(cache, args.shards, len(items))
    limits = _effective_limits(args)
    runner = ShardedSuiteRunner(
        items,
        shards=args.shards,
        limits=limits,
        cache=cache,
        policy=args.cache_policy,
        faults=faults,
        max_attempts=args.max_attempts,
    )
    if faults is not None:
        print(f"chaos: {'; '.join(faults.describe())} (seed {faults.seed}, "
              f"max attempts {args.max_attempts})")

    # Streaming collection: rows appear as each shard finishes, not behind
    # the final barrier.
    def stream(output: Dict) -> None:
        _print_workload_rows(output["results"], output["failures"], matrices=args.matrices)
        sys.stdout.flush()

    print(f"analyzing {len(items)} workloads across {min(args.shards, len(items))} "
          f"shard(s), streaming:")
    report = runner.run(progress=stream)
    print()
    print(f"analyzed {len(report.results)}/{len(items)} workloads "
          f"across {len(report.shards)} shard(s) in {report.seconds:.3f}s"
          f"{' [adaptive limits]' if args.adaptive else ''}")
    _print_report(
        report,
        rows=False,
        cache=cache,
        cache_size=base_limits(limits).transfer_cache_size,
        cache_policy=args.cache_policy,
    )

    if args.census:
        print("\nparallelism census (path-matrix oracle):")
        for name, row in _census(items).items():
            if "error" in row:
                print(f"  {name:24s} FAIL {row['error']}")
            else:
                print(
                    f"  {name:24s} groups={row['groups']:<3d} "
                    f"call_groups={row['call_groups']:<3d} "
                    f"independent={row['independent_answers']}/{row['queries']}"
                )
    return 1 if report.failures else 0


def cmd_bench(args: argparse.Namespace) -> int:
    config = _generator_config(args)
    scenarios = _population(args, args.seeds)
    items = [(name, source(name, depth=min(config.depth, 4))) for name in WORKLOADS]
    items += [(s.name, s.source) for s in scenarios]
    print(
        f"population: {len(WORKLOADS)} named workloads + {len(scenarios)} generated "
        f"scenarios (seed {args.seed}, families {', '.join(_family_list(args))})"
    )

    try:
        cache = _cache_config(args)
        faults = _fault_plan(args)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    _warn_if_memory_backend_sharded(cache, args.shards, len(items))
    limits = _effective_limits(args)
    runner = ShardedSuiteRunner(
        items,
        shards=args.shards,
        limits=limits,
        cache=cache,
        policy=args.cache_policy,
        faults=faults,
        max_attempts=args.max_attempts,
    )
    if faults is not None:
        print(f"chaos: {'; '.join(faults.describe())} (seed {faults.seed}, "
              f"max attempts {args.max_attempts})")

    def stream(output: Dict) -> None:
        print(
            f"  shard {output['shard']} finished: {len(output['workloads'])} workloads "
            f"({len(output['failures'])} failed) in {output['seconds']:.3f}s",
            flush=True,
        )

    report = runner.run(progress=stream)
    print(f"\nsharded run ({args.shards} shards): {report.seconds:.3f}s"
          f"{' [adaptive limits]' if args.adaptive else ''}")
    _print_report(
        report,
        cache=cache,
        cache_size=base_limits(limits).transfer_cache_size,
        cache_policy=args.cache_policy,
    )

    artifact: Dict[str, object] = {
        "population": {
            "named_workloads": len(WORKLOADS),
            "generated_scenarios": len(scenarios),
            "base_seed": args.seed,
            "adaptive_limits": bool(args.adaptive),
            "families": _family_list(args),
            # The *effective* (clamped) knobs the population was generated
            # with, not the raw CLI values.
            "generator": {
                "procedures": config.procedures,
                "depth": config.depth,
                "aliasing": config.aliasing,
            },
        },
        # The persistent-cache configuration and outcome of this run.  The
        # persistent hit rate is the cold-vs-warm signal: ~0 against a fresh
        # --cache-dir, approaching 1 when rerun against a populated one —
        # while "results_digest" (under "sharded") must not move at all.
        "cache": {
            "backend": cache.backend if cache is not None else None,
            "directory": cache.directory if cache is not None else None,
            "policy": args.cache_policy,
            "transfer_cache_size": base_limits(limits).transfer_cache_size,
            "persistent": {
                "hits": report.stats.persistent_cache_hits,
                "misses": report.stats.persistent_cache_misses,
                "hit_rate": round(report.stats.persistent_cache_hit_rate, 4),
                "writes": report.stats.persistent_cache_writes,
                "evictions": report.stats.persistent_cache_evictions,
            },
        },
        "sharded": report.as_dict(),
        # Tail-latency accounting: per-workload p50/p90/p99 (plus the exact
        # bucket-merged "_overall" row) derived from the fixed-boundary
        # histograms every shard shipped home.
        "tails": report.tails(),
    }

    if faults is not None:
        # The chaos ledger: what was injected and what the recovery paths
        # did about it.  The headline acceptance check is elsewhere in the
        # artifact — "results_digest" must match a fault-free run's.
        counters = report.metrics.as_dict().get("counters", {})

        def metric_total(metric: str) -> int:
            return sum(
                int(entry["value"])
                for entry in counters.values()
                if entry["name"] == metric
            )

        chaos = {
            "plan": faults.describe(),
            "seed": faults.seed,
            "max_attempts": args.max_attempts,
            "injected": {
                key: int(entry["value"])
                for key, entry in sorted(counters.items())
                if entry["name"] == "faults.injected_total"
            },
            "workload_retries": metric_total("suite.workload_retries"),
            "shard_crashes": metric_total("suite.shard_crashes_total"),
            "workloads_abandoned": metric_total("suite.workloads_abandoned_total"),
            "cache_quarantined": metric_total("cache.quarantined_total"),
            "cache_backend_errors": metric_total("cache.backend_errors_total"),
            "attempts": {
                name: count for name, count in sorted(report.attempts.items()) if count
            },
        }
        artifact["chaos"] = chaos
        print(
            f"\nchaos ledger: {sum(chaos['injected'].values())} faults injected, "
            f"{chaos['workload_retries']} workload retries, "
            f"{chaos['shard_crashes']} shard crashes, "
            f"{chaos['workloads_abandoned']} abandoned, "
            f"{chaos['cache_quarantined']} cache entries quarantined"
        )

    ratchet_regressed = False
    if args.time or args.profile:
        from .workloads.timing import (
            DEFAULT_RATCHET_TOLERANCE,
            PROFILE_TOP,
            check_cold_medians,
            format_profile_top,
            format_ratchet,
            format_timing,
            time_items,
        )

        # --profile alone only needs the profiled run per workload, not the
        # full timing medians — drop to a single rep in that case.
        reps = args.time_reps if args.time else 1
        print(f"\nwall-clock timing ({reps} reps per workload"
              f"{', profiling' if args.profile else ''}):")
        timing = time_items(
            items,
            limits=limits,
            reps=reps,
            profile_dir=args.profile_dir if args.profile else None,
        )
        print(format_timing(timing))
        if args.profile:
            profile_top = timing.get("profile_top")
            if profile_top:
                print(f"\naggregated cross-workload profile (top {PROFILE_TOP} "
                      f"by total tottime):")
                print(format_profile_top(profile_top))
            print(f"cProfile top-{PROFILE_TOP} tables written to {args.profile_dir}/ "
                  f"(aggregate: {args.profile_dir}/_aggregate.txt)")
        if args.time:
            artifact["timing"] = timing
        if args.ratchet is not None:
            if not args.time:
                print("--ratchet requires --time", file=sys.stderr)
                return 2
            baseline_path = Path(args.ratchet)
            try:
                baseline_timing = json.loads(baseline_path.read_text())["timing"]
            except (OSError, KeyError, json.JSONDecodeError) as error:
                print(
                    f"cannot load ratchet baseline timing from {baseline_path}: "
                    f"{type(error).__name__}: {error}",
                    file=sys.stderr,
                )
                return 2
            tolerance = (
                args.ratchet_tolerance
                if args.ratchet_tolerance is not None
                else DEFAULT_RATCHET_TOLERANCE
            )
            verdict = check_cold_medians(timing, baseline_timing, tolerance=tolerance)
            print(f"\ncold-median ratchet vs {baseline_path} "
                  f"({verdict['workloads_compared']} shared workloads):")
            print(format_ratchet(verdict))
            artifact["ratchet"] = verdict
            ratchet_regressed = bool(verdict["regressed"])

    edit_replay_failed = False
    if args.edit_replay:
        from .workloads.timing import format_edit_replay, measure_edit_replay

        print("\nedit-replay bench (dirty-seeded re-analysis vs cold solves):")
        replay = measure_edit_replay(limits=base_limits(limits))
        print(format_edit_replay(replay))
        artifact["edit_replay"] = replay
        every_cell_verified = all(
            cell["verified"] for cell in replay["cells"].values()
        )
        edit_replay_failed = not (
            every_cell_verified
            and replay["scaling"]["scales_with_edit_not_program"]
        )
        if edit_replay_failed:
            print("edit-replay bench FAILED: verification or scaling did not hold",
                  file=sys.stderr)

    verified: Optional[bool] = None
    if not args.no_verify:
        single = runner.run_single_process()
        verified = report.matches(single)
        speedup = single.seconds / report.seconds if report.seconds else 0.0
        print(f"\nsingle-process reference: {single.seconds:.3f}s "
              f"(sharded speedup {speedup:.2f}x)")
        print(f"sharded results bit-identical to single process: {verified}")
        artifact["single_process"] = {"seconds": round(single.seconds, 4)}
        artifact["verified_identical"] = verified

    output = Path(args.output)
    output.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {output}")

    if report.failures or verified is False or ratchet_regressed or edit_replay_failed:
        return 1
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    scenarios = _population(args, args.count)
    if args.verify:
        for scenario in scenarios:
            if not cross_check_scenario(scenario):
                print(f"cross-check FAILED: {scenario.name}", file=sys.stderr)
                return 1
        print(f"cross-checked {len(scenarios)} scenarios against the reference engine",
              file=sys.stderr)
    if args.out:
        directory = Path(args.out)
        directory.mkdir(parents=True, exist_ok=True)
        for scenario in scenarios:
            (directory / f"{scenario.name}.sil").write_text(scenario.source.strip() + "\n")
        print(f"wrote {len(scenarios)} scenarios to {directory}")
    else:
        for scenario in scenarios:
            print(f"{{ scenario {scenario.name} (family {scenario.family}, "
                  f"seed {scenario.seed}) }}")
            print(scenario.source.strip())
            print()
    return 0


def _resolve_edit_pair(
    args: argparse.Namespace,
) -> Tuple[str, str, Optional[EditScript], str]:
    """``(old_source, new_source, script, name)`` from files or the generator.

    File mode: both positionals given.  Generated mode: neither given — a
    seeded scenario plus a seeded edit script (``--edits``/``--edit-kind``/
    ``--target``) produce the pair deterministically.
    """
    if bool(args.old) != bool(args.new):
        raise ValueError("give both OLD and NEW source files, or neither (generated mode)")
    if args.old:
        return (
            Path(args.old).read_text(),
            Path(args.new).read_text(),
            None,
            Path(args.new).stem,
        )
    scenario = generate_scenario(
        args.seed,
        GeneratorConfig(
            family=args.family, procedures=args.procedures, depth=args.depth
        ),
    )
    kinds = tuple(args.edit_kind) if args.edit_kind else None
    pair = generate_edited_pair(
        scenario.source,
        args.edit_seed,
        edits=args.edits,
        kinds=kinds,
        target_procedure=args.target,
    )
    return pair.old_source, pair.new_source, pair.script, scenario.name


def _print_reanalysis(report, name: str, script: Optional[EditScript]) -> None:
    delta = report.delta
    print(
        f"program {name}: {len(delta.changed)} changed, {len(delta.added)} added, "
        f"{len(delta.removed)} removed, {len(delta.unchanged)} unchanged procedures"
    )
    if script is not None:
        print(f"edit script (seed {script.seed}): "
              + "; ".join(step.describe() for step in script.steps))
    print(f"dirty seed ({report.dirty_seed_size}): "
          + (", ".join(report.dirty_seed) or "-"))
    reanalyzed = ", ".join(report.procedures_reanalyzed) or "-"
    print(
        f"re-analyzed {len(report.procedures_reanalyzed)}/{report.procedures_total} "
        f"procedures ({reanalyzed})"
    )
    print(
        f"summaries: reused={report.summaries_reused} "
        f"invalidated={report.summaries_invalidated}; "
        f"transfer entries invalidated={report.transfers_invalidated}"
    )
    fired = {name: value for name, value in report.widening.items() if value}
    if fired:
        print("widening: " + " ".join(f"{k}={v}" for k, v in sorted(fired.items())))
    print(f"digest {report.digest[:12]} in {report.seconds:.3f}s")
    if report.verified is not None:
        print(
            f"verified against cold solve: {report.verified} "
            f"(cold digest {report.cold_digest[:12]})"
        )


def cmd_reanalyze(args: argparse.Namespace) -> int:
    from .analysis.reanalysis import IncrementalSession
    from .sil.normalize import parse_and_normalize

    try:
        old_source, new_source, script, name = _resolve_edit_pair(args)
    except (OSError, ValueError, KeyError) as error:
        print(error, file=sys.stderr)
        return 2
    try:
        cache = _cache_config(args)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    try:
        old_program, old_info = parse_and_normalize(old_source)
        new_program, new_info = parse_and_normalize(new_source)
    except Exception as error:  # noqa: BLE001 - front-end rejection
        print(f"front end rejected input: {type(error).__name__}: {error}", file=sys.stderr)
        return 2

    session = IncrementalSession(
        limits=_effective_limits(args), cache=cache, policy=args.cache_policy
    )
    try:
        session.analyze(old_program, old_info)
        report = session.reanalyze(new_program, new_info, verify=not args.no_verify)
        session.flush()
    finally:
        session.close()

    payload = report.as_dict()
    payload["program"] = name
    if script is not None:
        payload["edit_script"] = script.as_dict()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        _print_reanalysis(report, name, script)
    if args.output:
        output = Path(args.output)
        output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        if not args.json:
            print(f"wrote {output}")
    return 1 if report.verified is False else 0


def _open_store(args: argparse.Namespace) -> Optional[DiskBackend]:
    """Open the disk store under ``--cache-dir``; None if never created."""
    store_path = Path(args.cache_dir) / STORE_FILENAME
    if not store_path.exists():
        return None
    return DiskBackend(args.cache_dir, policy=args.cache_policy)


def cmd_cache_stats(args: argparse.Namespace) -> int:
    backend = _open_store(args)
    if backend is None:
        message = f"no transfer-cache store under {args.cache_dir} (nothing written yet)"
        if args.json:
            print(json.dumps({"path": str(Path(args.cache_dir) / STORE_FILENAME),
                              "entries": 0, "exists": False}, indent=2, sort_keys=True))
        else:
            print(message)
        return 0
    try:
        stats = backend.stats()
    finally:
        backend.close()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        for key in sorted(stats):
            print(f"  {key:12s} {stats[key]}")
    return 0


def cmd_cache_clear(args: argparse.Namespace) -> int:
    backend = _open_store(args)
    if backend is None:
        print(f"no transfer-cache store under {args.cache_dir}; nothing to clear")
        return 0
    try:
        dropped = backend.clear()
    finally:
        backend.close()
    print(f"cleared {dropped} entries from {args.cache_dir}")
    return 0


def cmd_cache_compact(args: argparse.Namespace) -> int:
    backend = _open_store(args)
    if backend is None:
        print(f"no transfer-cache store under {args.cache_dir}; nothing to compact")
        return 0
    try:
        result = backend.compact(max_age=args.max_age)
        stats = backend.stats()
    finally:
        backend.close()
    if args.json:
        print(json.dumps({"compact": result, "stats": stats}, indent=2, sort_keys=True))
        return 0
    print(
        f"swept {result['swept']} stale entries (unused for > {args.max_age} "
        f"generations), {result['remaining']} remain"
    )
    print(
        f"store size {result['size_bytes_before']} -> {result['size_bytes_after']} bytes "
        f"(reclaimed {result['reclaimed_bytes']})"
    )
    print(
        f"lifetime: compactions={stats['compactions']} swept={stats['swept']} "
        f"invalidations={stats['invalidations']}"
    )
    return 0


# ---------------------------------------------------------------------------
# Daemon: serve / client
# ---------------------------------------------------------------------------


def _endpoint_error(args: argparse.Namespace) -> Optional[str]:
    """Validate the shared --socket | --host/--port endpoint flags."""
    if bool(args.socket) == bool(args.host):
        return "configure exactly one endpoint: --socket PATH or --host HOST --port PORT"
    if args.host and args.port is None:
        return "--host needs --port"
    return None


def cmd_serve(args: argparse.Namespace) -> int:
    import logging

    from .server import DEFAULT_MAX_FRAME, ServerConfig, run_server

    message = _endpoint_error(args)
    if message:
        print(message, file=sys.stderr)
        return 2
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
    )
    try:
        cache = _cache_config(args)
        faults = _fault_plan(args)
        config = ServerConfig(
            socket_path=args.socket,
            host=args.host,
            port=args.port if args.port is not None else 0,
            workers=args.workers,
            request_timeout=args.request_timeout if args.request_timeout > 0 else None,
            max_frame=args.max_frame if args.max_frame else DEFAULT_MAX_FRAME,
            drain_timeout=args.drain_timeout,
            limits=_effective_limits(args),
            cache=cache,
            slow_request_threshold=(
                args.slow_threshold if args.slow_threshold > 0 else None
            ),
            max_inflight=args.max_inflight if args.max_inflight > 0 else None,
            faults=faults,
        ).validated()
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    where = args.socket or f"{args.host}:{args.port}"
    store = f"{cache.backend} @ {cache.directory}" if cache else "memory (private)"
    print(
        f"analysis server listening on {where} "
        f"(workers={config.workers}, persistent store: {store})",
        flush=True,
    )
    return run_server(config)


def _client(args: argparse.Namespace):
    from .server import AnalysisClient
    from .server.client import endpoint_kwargs

    return AnalysisClient(
        **endpoint_kwargs(args.socket, args.host, args.port),
        timeout=args.timeout,
        retries=getattr(args, "retries", 0),
        deadline=getattr(args, "deadline", None),
    )


def _print_response(response: Dict, as_json: bool) -> int:
    if as_json:
        print(json.dumps(response, indent=2, sort_keys=True))
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    from .server import ProtocolMismatch, ServerError
    from .server.protocol import ProtocolError

    message = _endpoint_error(args)
    if message:
        print(message, file=sys.stderr)
        return 2
    try:
        with _client(args) as client:
            return args.client_func(args, client)
    except ServerError as error:
        print(f"server error: {error}", file=sys.stderr)
        return 1
    except ProtocolMismatch as error:
        print(f"protocol mismatch: {error}", file=sys.stderr)
        return 1
    except ProtocolError as error:
        # Covers ConnectionClosed/TruncatedFrame: the connection died
        # mid-conversation (daemon restart, injected drop) and the request
        # was not retried to completion — suggest the knob that would.
        print(
            f"connection to the analysis server failed: {error} "
            "(idempotent requests can ride this out with --retries)",
            file=sys.stderr,
        )
        return 1
    except (ConnectionError, FileNotFoundError, TimeoutError, OSError) as error:
        print(f"cannot reach the analysis server: {error}", file=sys.stderr)
        return 1


def client_ping(args: argparse.Namespace, client) -> int:
    alive = client.ping()
    print("pong" if alive else "no pong")
    return 0 if alive else 1


def client_version(args: argparse.Namespace, client) -> int:
    response = client.protocol_version()
    if args.json:
        return _print_response(response, True)
    print(f"server:   {response['server']}")
    print(f"protocol: {response['protocol']}")
    print(f"ops:      {', '.join(response['ops'])}")
    return 0


def client_analyze(args: argparse.Namespace, client) -> int:
    response = client.analyze(
        workloads=args.names or None,
        depth=args.depth,
        adaptive=args.adaptive,
        timeout=args.timeout_request,
    )
    if args.json:
        return _print_response(response, True)
    _print_workload_rows(response["results"], response["failures"])
    stats = response["stats"]
    print()
    print(
        f"analyzed {len(response['results'])} workloads in {response['seconds']}s "
        f"(digest {response['results_digest'][:12]})"
    )
    print(
        f"  transfer cache:   hits={stats['transfer_cache_hits']} "
        f"misses={stats['transfer_cache_misses']} "
        f"hit_rate={stats['transfer_cache_hit_rate']}"
    )
    print(
        f"  persistent tier:  hits={stats['persistent_cache_hits']} "
        f"misses={stats['persistent_cache_misses']} "
        f"hit_rate={stats['persistent_cache_hit_rate']} "
        f"writes={stats['persistent_cache_writes']}"
    )
    return 1 if response["failures"] else 0


def client_bench(args: argparse.Namespace, client) -> int:
    response = client.bench(
        seeds=args.seeds,
        family=args.family,
        depth=args.depth,
        seed=args.seed,
        adaptive=args.adaptive,
        timeout=args.timeout_request,
    )
    if args.json:
        return _print_response(response, True)
    population = response["population"]
    print(
        f"population: {population['named_workloads']} named workloads + "
        f"{population['generated_scenarios']} generated scenarios "
        f"(seed {population['base_seed']})"
    )
    print(
        f"analyzed {len(response['results'])} workloads "
        f"({len(response['failures'])} failed) in {response['seconds']:.3f}s"
    )
    stats = response["stats"]
    print(
        f"  persistent tier: hits={stats['persistent_cache_hits']} "
        f"misses={stats['persistent_cache_misses']}"
    )
    return 1 if response["failures"] else 0


def client_reanalyze(args: argparse.Namespace, client) -> int:
    try:
        old_source, new_source, script, name = _resolve_edit_pair(args)
    except (OSError, ValueError, KeyError) as error:
        print(error, file=sys.stderr)
        return 2
    response = client.reanalyze(
        old_source,
        new_source,
        name=name,
        adaptive=args.adaptive,
        verify=not args.no_verify,
        timeout=args.timeout_request,
    )
    if args.json:
        return _print_response(response, True)
    if script is not None:
        print(f"edit script (seed {script.seed}): "
              + "; ".join(step.describe() for step in script.steps))
    print(f"dirty seed ({response['dirty_seed_size']}): "
          + (", ".join(response["dirty_seed"]) or "-"))
    print(
        f"re-analyzed {len(response['procedures_reanalyzed'])}/"
        f"{response['procedures_total']} procedures "
        f"({', '.join(response['procedures_reanalyzed']) or '-'})"
    )
    print(
        f"summaries: reused={response['summaries_reused']} "
        f"invalidated={response['summaries_invalidated']}; "
        f"transfer entries invalidated={response['transfers_invalidated']}"
    )
    print(f"digest {response['digest'][:12]} in {response['seconds']}s "
          f"(base {response['base_digest'][:12]})")
    if "verified" in response:
        print(
            f"verified against cold solve: {response['verified']} "
            f"(cold digest {response['cold_digest'][:12]})"
        )
        return 0 if response["verified"] else 1
    return 0


def client_cache_stats(args: argparse.Namespace, client) -> int:
    response = client.cache_stats()
    if args.json:
        return _print_response(response, True)
    server = response["server"]
    print(
        f"server: up {server['uptime_seconds']}s, "
        f"{server['requests_served']} analysis requests served "
        f"({', '.join(f'{op}={n}' for op, n in sorted(server['requests_by_op'].items()))})"
    )
    print("lifetime stats:")
    for key, value in sorted(response["lifetime_stats"].items()):
        print(f"  {key:28s} {value}")
    cache = response["transfer_cache"]
    print(
        f"transfer cache: {cache['entries']}/{cache['capacity']} entries "
        f"(policy {cache['policy']}, {cache['evictions']} evictions)"
    )
    if response["persistent"]:
        print("persistent store:")
        for key, value in sorted(response["persistent"].items()):
            print(f"  {key:28s} {value}")
    print("intern tables:")
    for key, value in sorted(response["intern_tables"].items()):
        print(f"  {key:28s} {value}")
    return 0


def client_metrics(args: argparse.Namespace, client) -> int:
    if args.prometheus:
        response = client.metrics(format="prometheus")
        print(response["text"], end="")
        return 0
    response = client.metrics()
    if args.json:
        return _print_response(response, True)
    metrics = response["metrics"]
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    if counters:
        print("counters:")
        for key, entry in counters.items():
            print(f"  {key:44s} {entry['value']}")
    if gauges:
        print("gauges:")
        for key, entry in gauges.items():
            print(f"  {key:44s} {entry['value']}")
    for name, tails in sorted(response["tails"].items()):
        if not tails:
            continue
        print()
        print(f"{name} tails (from histogram buckets):")
        print(f"  {'label':24s} {'n':>6s} {'p50':>10s} {'p90':>10s} {'p99':>10s}")
        for label, row in tails.items():
            print(
                f"  {label:24s} {row['count']:6d} {row['p50_seconds']:10.6f} "
                f"{row['p90_seconds']:10.6f} {row['p99_seconds']:10.6f}"
            )
    return 0


def client_health(args: argparse.Namespace, client) -> int:
    response = client.health()
    if args.json:
        return _print_response(response, True)
    print(f"status:          {response['status']}")
    print(f"ready:           {response['ready']}")
    print(f"inflight:        {response['inflight']}"
          + (f" / max {response['max_inflight']}" if response["max_inflight"] else ""))
    print(f"queue depth:     {response['queue_depth']}")
    print(f"workers:         {response['workers']}")
    print(f"cache degraded:  {response['cache_degraded']}")
    print(f"requests shed:   {response['shed_total']}")
    print(f"requests served: {response['requests_served']}")
    return 0 if response["ready"] else 1


def client_shutdown(args: argparse.Namespace, client) -> int:
    response = client.shutdown()
    print(
        f"server stopping (served {response['requests_served']} analysis requests, "
        f"{response['inflight']} in flight)"
    )
    return 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Batch path-matrix analysis over workload suites and "
        "generated SIL scenario populations.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser(
        "analyze", help="analyze named workloads and/or generated scenarios"
    )
    analyze.add_argument("names", nargs="*", help="workload names (default: all)")
    analyze.add_argument("--shards", type=int, default=1, help="worker processes")
    analyze.add_argument(
        "--generated", type=int, default=0, metavar="N", help="add N generated scenarios"
    )
    analyze.add_argument("--matrices", action="store_true", help="print main entry matrices")
    analyze.add_argument(
        "--census", action="store_true", help="report the parallelism census per workload"
    )
    analyze.add_argument("--list", action="store_true", help="list workloads and families")
    _add_generator_options(analyze)
    _add_limits_options(analyze)
    _add_cache_options(analyze)
    _add_chaos_options(analyze)
    _add_trace_option(analyze)
    analyze.set_defaults(func=cmd_analyze)

    bench = commands.add_parser(
        "bench",
        help="sharded benchmark over the named workloads + a generated population; "
        "writes the merged stats artifact",
    )
    bench.add_argument("--shards", type=int, default=4, help="worker processes")
    bench.add_argument(
        "--seeds", type=int, default=50, metavar="N", help="generated scenarios in the population"
    )
    bench.add_argument(
        "--output", default=DEFAULT_ARTIFACT, help="merged stats artifact path"
    )
    bench.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the single-process bit-identity verification run",
    )
    bench.add_argument(
        "--time",
        action="store_true",
        help="wall-clock harness: record per-workload median analysis time "
        "and peak interning-table sizes into the artifact's timing section",
    )
    bench.add_argument(
        "--time-reps",
        type=int,
        default=5,
        metavar="N",
        help="analyses per workload for the timing median (default: 5)",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="dump a cProfile top-20 per workload to the --profile-dir "
        "artifact directory (off by default)",
    )
    bench.add_argument(
        "--ratchet",
        metavar="BASELINE",
        default=None,
        help="cold-median ratchet: compare this run's --time cold medians "
        "against the timing section of a committed bench artifact "
        "(e.g. BENCH_analysis.json) and exit nonzero on regression "
        "beyond --ratchet-tolerance; medians are normalized by each "
        "side's calibration loop so baselines port across machines",
    )
    bench.add_argument(
        "--ratchet-tolerance",
        type=float,
        default=None,
        metavar="FRACTION",
        help="allowed fractional cold-median regression before the ratchet "
        "fails (default: 0.5)",
    )
    bench.add_argument(
        "--edit-replay",
        action="store_true",
        help="run the edit-replay bench (dirty-seeded re-analysis of edited "
        "programs vs cold solves over a program-size x edit-count grid) "
        "into the artifact's edit_replay section; exits nonzero unless "
        "every cell verifies bit-identical and re-analysis cost scales "
        "with edit size rather than program size",
    )
    bench.add_argument(
        "--profile-dir",
        default="BENCH_profiles",
        metavar="DIR",
        help="artifact directory for --profile output (default: BENCH_profiles)",
    )
    _add_generator_options(bench)
    _add_limits_options(bench)
    _add_cache_options(bench)
    _add_chaos_options(bench)
    _add_trace_option(bench)
    bench.set_defaults(func=cmd_bench)

    def _add_reanalyze_inputs(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("old", nargs="?", help="old program source file (.sil)")
        sub.add_argument("new", nargs="?", help="edited program source file (.sil)")
        sub.add_argument(
            "--family",
            choices=FAMILIES,
            default="deep",
            help="generated mode: scenario family (default: deep)",
        )
        sub.add_argument(
            "--seed", type=int, default=0, help="generated mode: scenario seed"
        )
        sub.add_argument(
            "--procedures", type=int, default=2, help="generated mode: walker procedures"
        )
        sub.add_argument(
            "--depth", type=int, default=6, help="generated mode: structure depth"
        )
        sub.add_argument(
            "--edits", type=int, default=1, metavar="N", help="edit-script length"
        )
        sub.add_argument(
            "--edit-seed", type=int, default=0, help="edit-script seed"
        )
        sub.add_argument(
            "--edit-kind",
            action="append",
            choices=EDIT_KINDS,
            default=None,
            metavar="KIND",
            help=f"restrict edit kinds (repeatable; from {', '.join(EDIT_KINDS)})",
        )
        sub.add_argument(
            "--target",
            default=None,
            metavar="PROC",
            help="pin every edit to one procedure (deterministic CI replays)",
        )
        sub.add_argument(
            "--no-verify",
            action="store_true",
            help="skip the from-scratch verification solve of the new version",
        )

    reanalyze = commands.add_parser(
        "reanalyze",
        help="incremental re-analysis of an edited program: diff, invalidate, "
        "re-solve the dirty frontier, verify against a cold solve",
    )
    _add_reanalyze_inputs(reanalyze)
    reanalyze.add_argument("--json", action="store_true", help="machine-readable output")
    reanalyze.add_argument(
        "--output", default=None, metavar="PATH", help="also write the JSON report here"
    )
    _add_limits_options(reanalyze)
    _add_cache_options(reanalyze)
    reanalyze.set_defaults(func=cmd_reanalyze)

    generate = commands.add_parser(
        "generate", help="emit seeded random SIL scenarios (stdout or --out directory)"
    )
    generate.add_argument("--count", type=int, default=5, help="scenarios to generate")
    generate.add_argument("--out", help="directory for .sil files (default: stdout)")
    generate.add_argument(
        "--verify",
        action="store_true",
        help="cross-check each scenario against the reference engine",
    )
    _add_generator_options(generate)
    generate.set_defaults(func=cmd_generate)

    cache = commands.add_parser(
        "cache", help="inspect or clear a persistent transfer-cache store"
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_commands.add_parser(
        "stats", help="entry count, size and lifetime hit/miss/write/eviction totals"
    )
    cache_stats.add_argument("--json", action="store_true", help="machine-readable output")
    cache_stats.set_defaults(func=cmd_cache_stats)
    cache_clear = cache_commands.add_parser("clear", help="drop every stored entry")
    cache_clear.set_defaults(func=cmd_cache_clear)
    cache_compact = cache_commands.add_parser(
        "compact",
        help="sweep entries unused for --max-age generations, then VACUUM "
        "the store file",
    )
    cache_compact.add_argument(
        "--max-age",
        type=int,
        default=8,
        metavar="N",
        help="sweep entries last used more than N flush generations ago "
        "(default: 8)",
    )
    cache_compact.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    cache_compact.set_defaults(func=cmd_cache_compact)
    for sub in (cache_stats, cache_clear, cache_compact):
        sub.add_argument("--cache-dir", required=True, metavar="DIR", help="store directory")
        sub.add_argument(
            "--cache-policy", choices=POLICIES, default="lru", help=argparse.SUPPRESS
        )

    endpoint = argparse.ArgumentParser(add_help=False)
    endpoint.add_argument(
        "--socket", metavar="PATH", default=None, help="unix domain socket path"
    )
    endpoint.add_argument("--host", default=None, help="TCP bind/connect host")
    endpoint.add_argument(
        "--port", type=int, default=None, help="TCP port (0: ephemeral when serving)"
    )

    serve = commands.add_parser(
        "serve",
        parents=[endpoint],
        help="run the long-lived analysis daemon over warm interning/cache state",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="bounded analysis worker pool size (default: 1)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="per-request budget for analyze/bench; 0 disables (default: 300)",
    )
    serve.add_argument(
        "--max-frame",
        type=int,
        default=None,
        metavar="BYTES",
        help="largest accepted/emitted frame payload (default: 8 MiB)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="graceful-shutdown wait for in-flight requests (default: 30)",
    )
    serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="stdlib logging threshold for the repro.server.* loggers "
        "(default: info)",
    )
    serve.add_argument(
        "--slow-threshold",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="log a warning (and count server.slow_requests_total) for any "
        "request slower than this; 0 disables (default: 5)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="admission cap: heavy requests beyond N simultaneously in "
        "flight are shed with a retryable 'overloaded' error; 0 disables "
        "(default: 64)",
    )
    _add_limits_options(serve)
    _add_cache_options(serve)
    _add_chaos_options(serve, max_attempts=False)
    _add_trace_option(serve)
    serve.set_defaults(func=cmd_serve)

    client = commands.add_parser(
        "client", help="talk to a running analysis daemon (see: serve)"
    )
    client_commands = client.add_subparsers(dest="client_command", required=True)

    def client_parser(name: str, func, help: str) -> argparse.ArgumentParser:
        sub = client_commands.add_parser(name, parents=[endpoint], help=help)
        sub.add_argument(
            "--timeout",
            type=float,
            default=120.0,
            metavar="SECONDS",
            help="client-side socket timeout (default: 120)",
        )
        sub.add_argument(
            "--retries",
            type=int,
            default=0,
            metavar="N",
            help="re-attempts of idempotent requests after a transport "
            "failure or an 'overloaded' rejection, with exponential "
            "backoff + jitter (default: 0, fail fast)",
        )
        sub.add_argument(
            "--deadline",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock bound on one request including every retry "
            "and backoff sleep (default: none)",
        )
        sub.set_defaults(func=cmd_client, client_func=func)
        return sub

    health_cmd = client_parser(
        "health", client_health, "liveness/load snapshot: status, in-flight, shed count"
    )

    client_parser("ping", client_ping, "liveness round trip")
    version = client_parser(
        "version", client_version, "protocol-version handshake + op vocabulary"
    )
    c_analyze = client_parser(
        "analyze", client_analyze, "analyze named workloads on the warm server"
    )
    c_analyze.add_argument("names", nargs="*", help="workload names (default: all)")
    c_analyze.add_argument("--depth", type=int, default=4, help="workload depth constant")
    c_analyze.add_argument(
        "--timeout-request",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request budget (may lower the server's, never raise it)",
    )
    _add_limits_options(c_analyze)
    c_bench = client_parser(
        "bench", client_bench, "run a generated population on the warm server"
    )
    c_bench.add_argument(
        "--seeds", type=int, default=10, metavar="N", help="generated scenarios"
    )
    c_bench.add_argument(
        "--family", type=_family_arg, default="all", help="scenario families"
    )
    c_bench.add_argument("--depth", type=int, default=4, help="structure depth")
    c_bench.add_argument("--seed", type=int, default=0, help="base seed")
    c_bench.add_argument(
        "--timeout-request",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request budget (may lower the server's, never raise it)",
    )
    _add_limits_options(c_bench)
    c_reanalyze = client_parser(
        "reanalyze",
        client_reanalyze,
        "incremental re-analysis of an edited program on the warm server",
    )
    _add_reanalyze_inputs(c_reanalyze)
    c_reanalyze.add_argument(
        "--timeout-request",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request budget (may lower the server's, never raise it)",
    )
    _add_limits_options(c_reanalyze)
    stats_cmd = client_parser(
        "cache-stats",
        client_cache_stats,
        "server-lifetime stats, cache occupancy and intern-table sizes",
    )
    metrics_cmd = client_parser(
        "metrics",
        client_metrics,
        "live server metrics: per-op request counters, latency tails, gauges",
    )
    metrics_cmd.add_argument(
        "--prometheus",
        action="store_true",
        help="print the Prometheus text exposition instead of tables",
    )
    client_parser("shutdown", client_shutdown, "graceful shutdown: drain, flush, exit")
    for sub in (version, c_analyze, c_bench, c_reanalyze, stats_cmd, metrics_cmd, health_cmd):
        sub.add_argument("--json", action="store_true", help="machine-readable output")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return args.func(args)
    # Flight recorder: install the process-global tracer around the whole
    # command so every instrumented layer (parse, passes, solver visits,
    # cache flushes, codec, shard dispatch) records into one timeline, then
    # write the Chrome trace-event document whatever the exit path.
    from .obs.trace import install_tracer, uninstall_tracer

    tracer = install_tracer()
    try:
        return args.func(args)
    finally:
        uninstall_tracer()
        spans = tracer.write_chrome(trace_path)
        print(
            f"trace: {spans} span events -> {trace_path} "
            "(load in Perfetto or chrome://tracing)",
            file=sys.stderr,
        )
