"""A Lucassen–Gifford-style region/effect baseline oracle.

The related-work section of the paper discusses effect systems
[Luc87, LG88]: every linked structure lives in a *region*, a computation's
effect records which regions it may read or write, and two computations
commute when their write effects touch disjoint regions.  Such systems
"effectively differentiate between totally disjoint linked structures" but
cannot distinguish different parts of the *same* structure: "even though
the left and right sub-trees of a binary tree do not share any storage, the
effect system forces both sub-trees to be associated with the same region".

This oracle reproduces that precision level:

* handle variables of a procedure are partitioned into regions with a
  flow-insensitive union-find: copying a handle, loading a field, or
  storing a field merges the two variables' regions (they belong to the
  same structure); a handle returned from / passed to a call is merged with
  the other handles involved in that call;
* read/write effects per region are derived from the statements (and, for
  calls, from the callee summaries' read-only/update classification — effect
  systems do infer read-only effects);
* two statements are independent iff no region is written by one and
  touched by the other (plus the usual scalar-variable check).

It parallelizes computations on *different* trees but never the two
sub-trees of one tree — exactly the gap the path-matrix analysis closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.summaries import ProcedureSummary, compute_summaries
from ..parallel.oracle import DependenceOracle
from ..sil import ast
from ..sil.typecheck import TypeInfo
from .conservative import _variables, _writes_variable


class _UnionFind:
    """Tiny union-find over variable names."""

    def __init__(self) -> None:
        self.parent: Dict[str, str] = {}

    def add(self, item: str) -> None:
        self.parent.setdefault(item, item)

    def find(self, item: str) -> str:
        self.add(item)
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, first: str, second: str) -> None:
        self.parent[self.find(first)] = self.find(second)

    def same(self, first: str, second: str) -> bool:
        return self.find(first) == self.find(second)


@dataclass
class _Effects:
    """Regions read / written by one statement."""

    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)


class RegionOracle(DependenceOracle):
    """Region-granularity interference (Lucassen–Gifford precision level)."""

    name = "region-effects"

    def __init__(self) -> None:
        self.program: Optional[ast.Program] = None
        self.info: Optional[TypeInfo] = None
        self.summaries: Dict[str, ProcedureSummary] = {}
        self.regions: Dict[str, _UnionFind] = {}

    # ------------------------------------------------------------------

    def prepare(self, program: ast.Program, info: TypeInfo) -> None:
        self.program = program
        self.info = info
        self.summaries = compute_summaries(program, info)
        self.regions = {}
        for proc in program.all_callables:
            self.regions[proc.name] = self._build_regions(proc, info)

    def _build_regions(self, proc: ast.Procedure, info: TypeInfo) -> _UnionFind:
        scope = info.for_procedure(proc.name)
        regions = _UnionFind()
        for name in scope.handle_variables():
            regions.add(name)
        for stmt in ast.walk_stmt(proc.body):
            if isinstance(stmt, ast.CopyHandle):
                regions.union(stmt.target, stmt.source)
            elif isinstance(stmt, ast.LoadField):
                regions.union(stmt.target, stmt.source)
            elif isinstance(stmt, ast.StoreField) and stmt.source is not None:
                regions.union(stmt.target, stmt.source)
            elif isinstance(stmt, (ast.ProcCall, ast.FuncAssign)):
                # All handle values flowing through one call are tied to the
                # same structure from the region system's point of view only
                # if the callee links them; being conservative about the
                # callee, merge a handle result with the handle arguments.
                handle_args = [
                    arg.ident
                    for param, arg in zip(self.program.callable(stmt.name).params, stmt.args)
                    if param.type is ast.SilType.HANDLE and isinstance(arg, ast.Name)
                ]
                if (
                    isinstance(stmt, ast.FuncAssign)
                    and scope.is_handle(stmt.target)
                    and handle_args
                ):
                    summary = self.summaries.get(stmt.name)
                    if summary is None or not summary.result_may_be_fresh or summary.result_derived_from:
                        for arg in handle_args:
                            regions.union(stmt.target, arg)
        return regions

    # ------------------------------------------------------------------

    def _effects(self, stmt: ast.Stmt, procedure: str) -> _Effects:
        assert self.program is not None
        regions = self.regions[procedure]
        effects = _Effects()
        if isinstance(stmt, ast.LoadField):
            effects.reads.add(regions.find(stmt.source))
        elif isinstance(stmt, ast.LoadValue):
            effects.reads.add(regions.find(stmt.source))
        elif isinstance(stmt, ast.StoreField):
            effects.writes.add(regions.find(stmt.target))
        elif isinstance(stmt, ast.StoreValue):
            effects.writes.add(regions.find(stmt.target))
            for sub in ast.walk_expr(stmt.expr):
                if isinstance(sub, ast.FieldAccess) and isinstance(sub.base, ast.Name):
                    effects.reads.add(regions.find(sub.base.ident))
        elif isinstance(stmt, ast.ScalarAssign):
            for sub in ast.walk_expr(stmt.expr):
                if isinstance(sub, ast.FieldAccess) and isinstance(sub.base, ast.Name):
                    effects.reads.add(regions.find(sub.base.ident))
        elif isinstance(stmt, (ast.ProcCall, ast.FuncAssign)):
            callee = self.program.callable(stmt.name)
            summary = self.summaries[stmt.name]
            for param, arg in zip(callee.params, stmt.args):
                if param.type is not ast.SilType.HANDLE or not isinstance(arg, ast.Name):
                    continue
                region = regions.find(arg.ident)
                if summary.is_update(param.name):
                    effects.writes.add(region)
                else:
                    effects.reads.add(region)
        return effects

    # ------------------------------------------------------------------

    def independent(
        self,
        first: ast.Stmt,
        second: ast.Stmt,
        group_start: ast.Stmt,
        procedure: str,
    ) -> bool:
        assert self.info is not None, "prepare() must be called first"
        if _writes_variable(first) & _variables(second):
            return False
        if _writes_variable(second) & _variables(first):
            return False
        first_effects = self._effects(first, procedure)
        second_effects = self._effects(second, procedure)
        if first_effects.writes & (second_effects.reads | second_effects.writes):
            return False
        if second_effects.writes & (first_effects.reads | first_effects.writes):
            return False
        return True
