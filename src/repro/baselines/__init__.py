"""Baseline dependence oracles the paper's analysis is compared against.

* :class:`ConservativeOracle` — no pointer information at all (any heap
  write conflicts with any heap access);
* :class:`RegionOracle` — Lucassen–Gifford-style region/effect precision
  (disjoint structures are distinguished; parts of the same structure are
  not).

Both plug into :func:`repro.parallel.parallelize_program` in place of the
default :class:`~repro.parallel.oracle.PathMatrixOracle`.
"""

from .conservative import ConservativeOracle
from .regions import RegionOracle

__all__ = ["ConservativeOracle", "RegionOracle"]
