"""The fully conservative baseline oracle.

This is what a parallelizing compiler with *no* pointer/interference
analysis for recursive data structures must assume (the situation the
paper's introduction describes): any two handles may refer to overlapping
storage, so

* two heap accesses conflict whenever at least one of them may write;
* a call that receives a handle argument must be assumed to read *and*
  write arbitrary heap nodes;
* scalar variables are still disambiguated by name (that part of classical
  dependence analysis works fine without pointer information).

It is sound but exposes essentially no parallelism on pointer programs —
the lower bound against which the path-matrix oracle is compared (bench
EXT-C).
"""

from __future__ import annotations

from typing import Optional, Set

from ..parallel.oracle import DependenceOracle
from ..sil import ast
from ..sil.typecheck import TypeInfo


def _variables(stmt: ast.Stmt) -> Set[str]:
    """Every variable name a statement mentions."""
    names: Set[str] = set()
    if isinstance(stmt, (ast.AssignNil, ast.AssignNew)):
        names.add(stmt.target)
    elif isinstance(stmt, ast.CopyHandle):
        names.update((stmt.target, stmt.source))
    elif isinstance(stmt, ast.LoadField):
        names.update((stmt.target, stmt.source))
    elif isinstance(stmt, ast.StoreField):
        names.add(stmt.target)
        if stmt.source is not None:
            names.add(stmt.source)
    elif isinstance(stmt, ast.LoadValue):
        names.update((stmt.target, stmt.source))
    elif isinstance(stmt, ast.StoreValue):
        names.add(stmt.target)
        names.update(ast.names_in_expr(stmt.expr))
    elif isinstance(stmt, ast.ScalarAssign):
        names.add(stmt.target)
        names.update(ast.names_in_expr(stmt.expr))
    elif isinstance(stmt, (ast.ProcCall, ast.FuncAssign)):
        for arg in stmt.args:
            names.update(ast.names_in_expr(arg))
        if isinstance(stmt, ast.FuncAssign):
            names.add(stmt.target)
    return names


def _writes_variable(stmt: ast.Stmt) -> Set[str]:
    """Variables the statement assigns."""
    if isinstance(
        stmt,
        (ast.AssignNil, ast.AssignNew, ast.CopyHandle, ast.LoadField, ast.LoadValue, ast.ScalarAssign),
    ):
        return {stmt.target}
    if isinstance(stmt, ast.FuncAssign):
        return {stmt.target}
    return set()


class ConservativeOracle(DependenceOracle):
    """No alias information: every heap write conflicts with every heap access."""

    name = "conservative"

    def __init__(self) -> None:
        self.program: Optional[ast.Program] = None
        self.info: Optional[TypeInfo] = None

    def prepare(self, program: ast.Program, info: TypeInfo) -> None:
        self.program = program
        self.info = info

    # ------------------------------------------------------------------

    def _call_has_handle_args(self, stmt: ast.Stmt) -> bool:
        assert self.program is not None
        callee = self.program.callable(stmt.name)  # type: ignore[union-attr]
        return bool(callee.handle_params)

    def _reads_heap(self, stmt: ast.Stmt) -> bool:
        if isinstance(stmt, (ast.LoadField, ast.LoadValue, ast.StoreField, ast.StoreValue)):
            return True
        if isinstance(stmt, (ast.StoreValue, ast.ScalarAssign)):
            return any(isinstance(sub, ast.FieldAccess) for sub in ast.walk_expr(stmt.expr))
        if isinstance(stmt, (ast.ProcCall, ast.FuncAssign)):
            return self._call_has_handle_args(stmt)
        return False

    def _writes_heap(self, stmt: ast.Stmt) -> bool:
        if isinstance(stmt, (ast.StoreField, ast.StoreValue)):
            return True
        if isinstance(stmt, (ast.ProcCall, ast.FuncAssign)):
            # Without summaries the callee must be assumed to update anything
            # it can reach through a handle argument.
            return self._call_has_handle_args(stmt)
        return False

    # ------------------------------------------------------------------

    def independent(
        self,
        first: ast.Stmt,
        second: ast.Stmt,
        group_start: ast.Stmt,
        procedure: str,
    ) -> bool:
        assert self.info is not None, "prepare() must be called first"
        # Scalar-variable conflicts (classical dependence analysis).
        if _writes_variable(first) & _variables(second):
            return False
        if _writes_variable(second) & _variables(first):
            return False
        # Heap conflicts: a heap write conflicts with any heap access.
        if self._writes_heap(first) and self._reads_heap(second):
            return False
        if self._writes_heap(second) and self._reads_heap(first):
            return False
        return True
