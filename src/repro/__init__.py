"""repro — reproduction of Hendren & Nicolau (1989).

*Parallelizing Programs with Recursive Data Structures*: the SIL language,
path-matrix interference analysis for TREE/DAG data structures, and the
three parallelization methods built on top of it, together with a parallel
execution simulator, baseline analyses and the paper's workloads.

Quickstart::

    from repro import parse_and_normalize, analyze_program, parallelize_program

    core, info = parse_and_normalize(source_text)
    result = analyze_program(core, info)
    parallel = parallelize_program(core, info)
"""

from .sil import (
    ast,
    builder,
    check_program,
    format_program,
    normalize_program,
    parse_and_normalize,
    parse_program,
)

__version__ = "0.1.0"

__all__ = [
    "ast",
    "builder",
    "parse_program",
    "parse_and_normalize",
    "normalize_program",
    "check_program",
    "format_program",
    "analyze_program",
    "parallelize_program",
    "__version__",
]


def analyze_program(program, info=None, **kwargs):
    """Run the whole-program path-matrix analysis (lazy import convenience)."""
    from .analysis.engine import analyze_program as _analyze

    return _analyze(program, info, **kwargs)


def parallelize_program(program, info=None, **kwargs):
    """Parallelize a core SIL program (lazy import convenience)."""
    from .parallel.transform import parallelize_program as _parallelize

    return _parallelize(program, info, **kwargs)
