"""Deterministic seeded fault injection (the chaos harness).

The subsystem splits cleanly in two:

* :mod:`~repro.faults.plan` — the frozen, picklable *description*:
  :class:`FaultPlan` / :class:`FaultRule`, the CLI spec grammar, and the
  seeded hash draw that makes every decision replayable.
* :mod:`~repro.faults.inject` — the per-process *evaluator*:
  :class:`FaultInjector`, the module-global install point production code
  consults through :func:`fault_fire` (a single ``None`` check when no
  plan is installed), and :func:`fault_scope` for plan lifetimes.

See ``docs/architecture.md`` §"Failure modes & degradation" for the fault
taxonomy and which layer tolerates which fault.
"""

from .inject import (
    FaultInjector,
    InjectedWorkerCrash,
    current_fault_plan,
    current_injector,
    fault_fire,
    fault_scope,
    injected_counts,
    install_fault_plan,
    uninstall_fault_plan,
)
from .plan import FAULT_KINDS, KNOWN_SITES, FaultPlan, FaultRule

__all__ = [
    "FAULT_KINDS",
    "KNOWN_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedWorkerCrash",
    "current_fault_plan",
    "current_injector",
    "fault_fire",
    "fault_scope",
    "injected_counts",
    "install_fault_plan",
    "uninstall_fault_plan",
]
