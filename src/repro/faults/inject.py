"""The per-process fault injector and the module-global install point.

Production code asks one question at each injection site::

    rule = fault_fire("cache.get", key)
    if rule is not None and rule.kind == "io_error":
        raise sqlite3.OperationalError("injected disk I/O error")

With no plan installed (the default, and the only state production runs
ever see) :func:`fault_fire` is a single module-global ``None`` check —
the zero-cost guarantee the cold-median ratchet pins.

With a plan installed, the injector keeps a per-``(site, key)``
**occurrence counter** so successive decisions at the same site/key get
independent deterministic draws: a cache read that failed is retried under
occurrence 2 and (at sub-1.0 probability, or with an occurrence-scoped
``match``) succeeds; a workload whose first attempt crashed its shard is
requeued with a new attempt-tagged key and survives.  Counters of every
injected fault are kept per ``(site, kind)`` for export as
``faults.injected_total{site,kind}``.

Process model: the installer is module-global, so **forked** pool workers
inherit the parent's injector (decisions stay deterministic because they
hash coordinates, not RNG state), while **spawned** workers install the
plan that rode in on their shard payload.  The daemon installs its
config's plan once at startup.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from .plan import FaultPlan, FaultRule, draw


class InjectedWorkerCrash(RuntimeError):
    """Raised by a ``shard.worker`` crash rule: the worker dies before
    producing any output, exercising the runner's whole-shard requeue path
    (vs. ``shard.workload`` crashes, which poison a partial output)."""


class FaultInjector:
    """Evaluates one :class:`FaultPlan`'s rules; owns all mutable state."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan.validated()
        self._by_site: Dict[str, Tuple[FaultRule, ...]] = {}
        for rule in plan.rules:
            self._by_site[rule.site] = self._by_site.get(rule.site, ()) + (rule,)
        self._occurrences: Dict[Tuple[str, str], int] = {}
        self._injected: Dict[Tuple[str, str], int] = {}
        self._lock = threading.Lock()

    def fire(self, site: str, key: str = "") -> Optional[FaultRule]:
        """The rule that fires at this site for this key, if any.

        Each call advances the ``(site, key)`` occurrence counter, giving
        retries of the same operation independent draws.  The decision key
        rules match against is ``"{key}#{occurrence}"`` (1-based).
        """
        rules = self._by_site.get(site)
        if not rules:
            return None
        with self._lock:
            occurrence = self._occurrences.get((site, key), 0) + 1
            self._occurrences[(site, key)] = occurrence
            full_key = f"{key}#{occurrence}"
            for rule in rules:
                if rule.match and rule.match not in full_key:
                    continue
                if draw(self.plan.seed, site, rule.kind, full_key) < rule.probability:
                    count = self._injected.get((site, rule.kind), 0) + 1
                    self._injected[(site, rule.kind)] = count
                    return rule
        return None

    def injected_counts(self) -> Dict[Tuple[str, str], int]:
        """A snapshot of ``{(site, kind): fires}`` in this process."""
        with self._lock:
            return dict(self._injected)


# ---------------------------------------------------------------------------
# module-global install point
# ---------------------------------------------------------------------------

_INJECTOR: Optional[FaultInjector] = None


def install_fault_plan(plan: FaultPlan) -> FaultInjector:
    """Install ``plan`` process-globally; returns the live injector."""
    global _INJECTOR
    _INJECTOR = FaultInjector(plan)
    return _INJECTOR


def uninstall_fault_plan() -> None:
    global _INJECTOR
    _INJECTOR = None


def current_injector() -> Optional[FaultInjector]:
    return _INJECTOR


def current_fault_plan() -> Optional[FaultPlan]:
    injector = _INJECTOR
    return injector.plan if injector is not None else None


def fault_fire(site: str, key: str = "") -> Optional[FaultRule]:
    """The one call compiled into production paths; ``None`` when idle."""
    injector = _INJECTOR
    if injector is None:
        return None
    return injector.fire(site, key)


def injected_counts() -> Dict[Tuple[str, str], int]:
    """``{(site, kind): fires}`` so far in this process; empty when idle."""
    injector = _INJECTOR
    if injector is None:
        return {}
    return injector.injected_counts()


@contextmanager
def fault_scope(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Install ``plan`` for the duration of a block (no-op when ``None``).

    Restores whatever was installed before, so a runner given an explicit
    plan never leaks it into the rest of the process — and a runner given
    ``None`` leaves an ambient (e.g. daemon-installed) plan untouched.
    """
    global _INJECTOR
    if plan is None:
        yield
        return
    previous = _INJECTOR
    _INJECTOR = FaultInjector(plan)
    try:
        yield
    finally:
        _INJECTOR = previous
