"""Declarative fault plans: *what* to inject, *where*, and *how often*.

A :class:`FaultPlan` is a frozen, picklable description of the faults a
chaos run should experience: a seed plus a tuple of :class:`FaultRule`
rows, each naming an injection **site** (a dotted string like
``"shard.workload"`` compiled into the production code), a fault **kind**
(one of :data:`FAULT_KINDS`), a firing probability, and an optional
``match`` substring that restricts the rule to specific decision keys.

Plans carry no mutable state — all bookkeeping (occurrence counters,
injected totals) lives in the per-process :class:`~repro.faults.inject.
FaultInjector` — so a plan can ride a :data:`~repro.workloads.suite.
ShardPayload` into a spawned worker, or a :class:`~repro.server.daemon.
ServerConfig` into a daemon, unchanged.

Determinism is the design center: whether a fault fires is a pure function
of ``(seed, site, kind, key, occurrence)`` (see :func:`draw`), never of
wall-clock time or process-global RNG state, so a chaos scenario replays
identically run over run — which is what lets the chaos suite assert
*bit-identical* result digests against fault-free baselines.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: The fault taxonomy.  Sites interpret the kinds they understand and
#: ignore the rest (a ``drop`` rule on a cache site never fires anything).
FAULT_KINDS = ("crash", "io_error", "corrupt", "slow", "drop")

#: The injection sites compiled into the production code.  The set is open
#: (``FaultRule`` does not reject unknown sites, so plans stay forward
#: compatible), but these are the ones that exist today.
KNOWN_SITES = (
    "shard.worker",  # worker process dies before analyzing (kind: crash)
    "shard.workload",  # mid-shard poisoning / slowdown (kinds: crash, slow)
    "cache.get",  # persistent-store read raises an I/O error (kind: io_error)
    "cache.write",  # persistent-store flush raises an I/O error (kind: io_error)
    "cache.payload",  # stored payload is corrupted before decode (kind: corrupt)
    "server.frame",  # daemon drops the connection after a request (kind: drop)
)


def draw(seed: int, site: str, kind: str, full_key: str) -> float:
    """The deterministic uniform draw in ``[0, 1)`` behind every decision.

    SHA-256 over the decision coordinates, so the outcome is identical in
    every process that evaluates the same coordinates — regardless of which
    pool worker picked up the payload, and regardless of evaluation order.
    """
    digest = hashlib.sha256(
        f"{seed}|{site}|{kind}|{full_key}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: fire ``kind`` at ``site`` with ``probability``.

    ``match`` (when non-empty) restricts the rule to decision keys whose
    ``"{key}#{occurrence}"`` form contains it as a substring — e.g.
    ``match="@0"`` on ``shard.workload`` fires only on a workload's first
    attempt (retries carry ``@1``, ``@2`` … keys), and ``match="#1"`` on
    ``cache.get`` fires only on the first try of each key, so the backend's
    bounded retry deterministically succeeds.  ``delay`` is the sleep, in
    seconds, a ``slow`` rule injects.
    """

    site: str
    kind: str
    probability: float = 1.0
    match: str = ""
    delay: float = 0.01

    def validated(self) -> "FaultRule":
        if not self.site:
            raise ValueError("fault rule needs a site")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if not (0.0 < self.probability <= 1.0):
            raise ValueError(
                f"fault probability must be in (0, 1], got {self.probability}"
            )
        if self.delay < 0:
            raise ValueError(f"fault delay must be >= 0, got {self.delay}")
        return self

    def describe(self) -> str:
        spec = f"{self.site}={self.kind}:{self.probability:g}"
        if self.match:
            spec += f":{self.match}"
        return spec


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the rules; frozen and picklable, carries no state."""

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def validated(self) -> "FaultPlan":
        for rule in self.rules:
            rule.validated()
        return self

    def rules_for(self, site: str) -> Tuple[FaultRule, ...]:
        return tuple(rule for rule in self.rules if rule.site == site)

    def describe(self) -> List[str]:
        """The rules back in their CLI spec form (for artifacts/logs)."""
        return [rule.describe() for rule in self.rules]

    @classmethod
    def parse(cls, specs: Sequence[str], seed: int = 0) -> "FaultPlan":
        """Build a plan from CLI rule specs.

        Grammar (colons separate the optional tail pieces)::

            SITE=KIND[:PROBABILITY[:MATCH[:DELAY]]]

        e.g. ``shard.workload=crash:1.0:@0`` (every workload's first
        attempt crashes its shard) or ``cache.get=io_error:0.25``.
        """
        rules = []
        for spec in specs:
            text = spec.strip()
            if "=" not in text:
                raise ValueError(
                    f"bad fault spec {spec!r}: expected SITE=KIND[:PROB[:MATCH[:DELAY]]]"
                )
            site, _, tail = text.partition("=")
            pieces = tail.split(":")
            kind = pieces[0].strip()
            probability = 1.0
            match = ""
            delay = 0.01
            if len(pieces) > 1 and pieces[1].strip():
                try:
                    probability = float(pieces[1])
                except ValueError:
                    raise ValueError(
                        f"bad fault spec {spec!r}: probability {pieces[1]!r} is not a number"
                    ) from None
            if len(pieces) > 2:
                match = pieces[2].strip()
            if len(pieces) > 3 and pieces[3].strip():
                try:
                    delay = float(pieces[3])
                except ValueError:
                    raise ValueError(
                        f"bad fault spec {spec!r}: delay {pieces[3]!r} is not a number"
                    ) from None
            if len(pieces) > 4:
                raise ValueError(f"bad fault spec {spec!r}: too many ':' pieces")
            rules.append(
                FaultRule(
                    site=site.strip(),
                    kind=kind,
                    probability=probability,
                    match=match,
                    delay=delay,
                ).validated()
            )
        return cls(rules=tuple(rules), seed=int(seed)).validated()
