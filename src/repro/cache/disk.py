"""The disk-backed persistent transfer-cache store (SQLite).

One SQLite file per cache directory, holding content-addressed canonical
payloads (see :mod:`repro.cache.codec`) plus the access metadata the
eviction policies rank by and a cumulative-counter table the ``repro cache
stats`` subcommand reads:

* ``entries(key, payload, created, last_used, hits)`` — ``key`` is the
  SHA-256 transfer key; ``created``/``last_used`` are ticks of a store-wide
  logical clock (one tick per flush), so recency survives across runs
  without wall-clock dependence;
* ``meta(key, value)`` — the logical clock and lifetime ``hits`` /
  ``misses`` / ``writes`` / ``evictions`` totals.

Write discipline: reads during analysis are plain ``SELECT``s (hit/miss
and touch bookkeeping is buffered in memory); all mutation happens in one
``BEGIN IMMEDIATE`` transaction per :meth:`DiskBackend.write` call — the
end-of-run/shard flush.  Shard workers therefore share a store with at
most one short write transaction per shard, and WAL mode keeps concurrent
readers unblocked while one writes.  ``INSERT OR IGNORE`` makes concurrent
flushes of the same computed transfer idempotent: the store is
content-addressed, so equal keys always carry equal payloads and the race
winner is irrelevant.

Capacity is enforced inside the same transaction: when the entry count
exceeds the configured cap the policy picks victims —

* ``lru``: smallest ``last_used`` tick first,
* ``lfu``: fewest ``hits`` first (ties: least recently used),
* ``fifo``: smallest ``created`` tick first.
"""

from __future__ import annotations

import logging
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Tuple, TypeVar

from ..faults import fault_fire
from .backend import DEFAULT_STORE_CAPACITY

logger = logging.getLogger("repro.cache.disk")

#: File name inside the cache directory.
STORE_FILENAME = "transfer-cache.sqlite"

#: Bounded in-process retry budget for transient ``sqlite3.OperationalError``
#: failures ("database is locked", "disk I/O error") — total attempts, so 3
#: means the original try plus two retries before the error surfaces.
DEFAULT_IO_RETRIES = 3

#: First retry backoff; doubles per retry.  Tiny on purpose: the common
#: transient cause is a sibling shard holding the write lock for one short
#: flush transaction.
_RETRY_BACKOFF_SECONDS = 0.005

_T = TypeVar("_T")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    key       TEXT PRIMARY KEY,
    payload   TEXT NOT NULL,
    created   INTEGER NOT NULL,
    last_used INTEGER NOT NULL,
    hits      INTEGER NOT NULL DEFAULT 0,
    stmt      TEXT
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""

_COUNTERS = (
    "hits",
    "misses",
    "writes",
    "evictions",
    "invalidations",
    "compactions",
    "swept",
    "retries",
)

_EVICTION_ORDER = {
    "lru": "last_used ASC, key ASC",
    "lfu": "hits ASC, last_used ASC, key ASC",
    "fifo": "created ASC, key ASC",
}


class DiskBackend:
    """A content-addressed SQLite store shared by shards and by runs."""

    kind = "disk"

    def __init__(
        self,
        directory: str,
        policy: str = "lru",
        capacity: int = DEFAULT_STORE_CAPACITY,
        timeout: float = 60.0,
        io_retries: int = DEFAULT_IO_RETRIES,
    ):
        if policy not in _EVICTION_ORDER:
            raise ValueError(f"unknown cache policy {policy!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / STORE_FILENAME
        self.policy = policy
        self.capacity = max(1, int(capacity))
        # Autocommit connection: transactions are managed explicitly with
        # BEGIN IMMEDIATE, so pysqlite's implicit-transaction machinery can
        # never collide with ours.
        # check_same_thread=False + an internal lock: the long-lived
        # analysis daemon drives one backend from its worker threads *and*
        # its event loop (stats, shutdown flush), so thread affinity is the
        # backend's problem, not every caller's.  The lock serializes all
        # connection use — SQLite objects are safe to share but not to use
        # concurrently.
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(
            str(self.path),
            timeout=timeout,
            isolation_level=None,
            check_same_thread=False,
        )
        self._connection.executescript(_SCHEMA)
        # Stores created before statement-label tracking lack the ``stmt``
        # column; add it in place (NULL for old rows — they simply never
        # match an invalidation sweep, which is safe for a content-addressed
        # store).  The index keeps delete-by-label a range scan.
        columns = {
            row[1]
            for row in self._connection.execute("PRAGMA table_info(entries)")
        }
        if "stmt" not in columns:
            self._connection.execute("ALTER TABLE entries ADD COLUMN stmt TEXT")
        self._connection.execute(
            "CREATE INDEX IF NOT EXISTS entries_stmt ON entries (stmt)"
        )
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.commit()
        # Session-local bookkeeping, folded into the store at write() time.
        self.io_retries = max(1, int(io_retries))
        self._session_hits = 0
        self._session_misses = 0
        self._session_retries = 0
        self._touched: Dict[str, int] = {}

    def _with_retry(self, site: str, key: str, operation: Callable[[], _T]) -> _T:
        """Run ``operation`` with a bounded retry on transient SQLite errors.

        ``sqlite3.OperationalError`` covers the two recoverable operational
        faults a shared store actually sees — "database is locked" (a
        sibling shard mid-flush) and transient "disk I/O error" — so those
        get ``io_retries`` total attempts with a small doubling backoff
        before surfacing to the caller (where the transfer layer's circuit
        breaker takes over).  Retries are counted session-locally and folded
        into the lifetime ``retries`` meta counter at flush, like
        hits/misses.  ``site``/``key`` also form a fault-injection point so
        the chaos suite can drive exactly this path.
        """
        backoff = _RETRY_BACKOFF_SECONDS
        for attempt in range(self.io_retries):
            try:
                rule = fault_fire(site, key)
                if rule is not None and rule.kind == "io_error":
                    raise sqlite3.OperationalError(
                        f"injected disk I/O error ({site}, key={key!r})"
                    )
                return operation()
            except sqlite3.OperationalError as error:
                if attempt + 1 >= self.io_retries:
                    raise
                self._session_retries += 1
                logger.warning(
                    "transient sqlite error on %s (%s); retry %d/%d in %.0f ms",
                    site,
                    error,
                    attempt + 1,
                    self.io_retries - 1,
                    backoff * 1000,
                )
                time.sleep(backoff)
                backoff *= 2
        raise AssertionError("unreachable: retry loop returns or raises")

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            row = self._connection.execute("SELECT COUNT(*) FROM entries").fetchone()
        return int(row[0])

    def get(self, key: str) -> Optional[str]:
        with self._lock:
            row = self._with_retry(
                "cache.get",
                key,
                lambda: self._connection.execute(
                    "SELECT payload FROM entries WHERE key = ?", (key,)
                ).fetchone(),
            )
            if row is None:
                self._session_misses += 1
                return None
            self._session_hits += 1
            self._touched[key] = self._touched.get(key, 0) + 1
            return row[0]

    def write(
        self, pending: Mapping[str, str], labels: Optional[Mapping[str, str]] = None
    ) -> Tuple[int, int]:
        with self._lock:
            # The whole flush transaction is the retry unit: _write_locked
            # rolls back on any failure, so a retry starts clean.
            return self._with_retry(
                "cache.write", "flush", lambda: self._write_locked(pending, labels)
            )

    def _write_locked(
        self, pending: Mapping[str, str], labels: Optional[Mapping[str, str]] = None
    ) -> Tuple[int, int]:
        connection = self._connection
        connection.execute("BEGIN IMMEDIATE")
        try:
            # Record which policy ranked this store's evictions (last writer
            # wins) so `repro cache stats` — which opens with the default
            # policy — reports the policy the data was actually shaped by.
            connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('policy', ?)",
                (self.policy,),
            )
            clock = self._bump_meta_locked("clock", 1)
            written = 0
            for key, payload in pending.items():
                label = labels.get(key) if labels is not None else None
                cursor = connection.execute(
                    "INSERT OR IGNORE INTO entries (key, payload, created, last_used, hits, stmt) "
                    "VALUES (?, ?, ?, ?, 0, ?)",
                    (key, payload, clock, clock, label),
                )
                written += cursor.rowcount
            for key, touches in self._touched.items():
                connection.execute(
                    "UPDATE entries SET hits = hits + ?, last_used = ? WHERE key = ?",
                    (touches, clock, key),
                )
            evicted = self._enforce_capacity_locked()
            self._bump_meta_locked("hits", self._session_hits)
            self._bump_meta_locked("misses", self._session_misses)
            self._bump_meta_locked("writes", written)
            self._bump_meta_locked("evictions", evicted)
            self._bump_meta_locked("retries", self._session_retries)
            connection.commit()
        except BaseException:
            connection.rollback()
            raise
        self._session_hits = 0
        self._session_misses = 0
        self._session_retries = 0
        self._touched.clear()
        return written, evicted

    def discard(self, key: str) -> None:
        """Delete an entry whose payload proved unusable (self-healing).

        Performed immediately (single autocommit statement, not deferred to
        flush) so the recomputed replacement — which ``write`` only admits
        for keys absent from the store — actually lands.  The touch and hit
        recorded by the failed ``get`` are reclassified as a miss so the
        bad row neither inflates the store's hit totals nor gets its
        recency refreshed on the way out.
        """
        with self._lock:
            self._connection.execute("DELETE FROM entries WHERE key = ?", (key,))
            touches = self._touched.pop(key, 0)
            if touches:
                self._session_hits -= touches
                self._session_misses += touches

    def invalidate(self, labels) -> int:
        """Delete every row stored under the given statement labels.

        The targeted-invalidation contract of incremental re-analysis:
        rows keyed by statements an edit removed or rewrote can never be
        looked up again (the store is content-addressed), so they are
        reclaimed; every other row stays warm.  Rows from stores written
        before label tracking carry ``NULL`` labels and never match.
        """
        doomed = sorted(set(labels))
        if not doomed:
            return 0
        with self._lock:
            connection = self._connection
            connection.execute("BEGIN IMMEDIATE")
            try:
                placeholders = ",".join("?" for _ in doomed)
                cursor = connection.execute(
                    f"DELETE FROM entries WHERE stmt IN ({placeholders})", doomed
                )
                dropped = cursor.rowcount
                self._bump_meta_locked("invalidations", dropped)
                connection.commit()
            except BaseException:
                connection.rollback()
                raise
        return dropped

    def compact(self, max_age: int = 8) -> Dict[str, int]:
        """Sweep stale generations and reclaim file space (``VACUUM``).

        An entry is stale when it has not been read or written for more
        than ``max_age`` flush generations of the store's logical clock —
        the populations old runs left behind and nothing warm touches
        anymore.  The sweep and its counter updates run in one
        ``BEGIN IMMEDIATE`` transaction; the ``VACUUM`` (which must run
        outside any transaction) then returns the freed pages to the
        filesystem.  Lifetime ``compactions``/``swept`` totals are
        surfaced by :meth:`stats` (the ``repro cache compact``/``stats``
        subcommands).
        """
        with self._lock:
            connection = self._connection
            size_before = os.path.getsize(self.path)
            connection.execute("BEGIN IMMEDIATE")
            try:
                clock = self._read_meta("clock")
                cutoff = clock - max(0, int(max_age))
                cursor = connection.execute(
                    "DELETE FROM entries WHERE last_used < ?", (cutoff,)
                )
                swept = cursor.rowcount
                self._bump_meta_locked("compactions", 1)
                self._bump_meta_locked("swept", swept)
                connection.commit()
            except BaseException:
                connection.rollback()
                raise
            connection.execute("VACUUM")
            try:
                size_after = os.path.getsize(self.path)
            except OSError:  # pragma: no cover - racing deletion
                size_after = 0
        return {
            "swept": swept,
            "remaining": len(self),
            "size_bytes_before": size_before,
            "size_bytes_after": size_after,
            "reclaimed_bytes": max(0, size_before - size_after),
        }

    # ------------------------------------------------------------------
    # Management surface
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> Dict[str, object]:
        counters = {name: self._read_meta(name) for name in _COUNTERS}
        requests = counters["hits"] + counters["misses"]
        try:
            size_bytes = os.path.getsize(self.path)
        except OSError:  # pragma: no cover - racing deletion
            size_bytes = 0
        # Report the policy the store was last *written* under, not this
        # connection's configuration — the eviction counters were ranked by
        # the former.
        policy_row = self._connection.execute(
            "SELECT value FROM meta WHERE key = 'policy'"
        ).fetchone()
        return {
            "backend": self.kind,
            "path": str(self.path),
            "policy": str(policy_row[0]) if policy_row is not None else self.policy,
            "entries": len(self),
            "capacity": self.capacity,
            "size_bytes": size_bytes,
            "hit_rate": round(counters["hits"] / requests, 4) if requests else 0.0,
            **counters,
        }

    def clear(self) -> int:
        with self._lock:
            return self._clear_locked()

    def _clear_locked(self) -> int:
        connection = self._connection
        connection.execute("BEGIN IMMEDIATE")
        try:
            dropped = int(connection.execute("SELECT COUNT(*) FROM entries").fetchone()[0])
            connection.execute("DELETE FROM entries")
            connection.execute("DELETE FROM meta")
            connection.commit()
        except BaseException:
            connection.rollback()
            raise
        self._session_hits = 0
        self._session_misses = 0
        self._session_retries = 0
        self._touched.clear()
        return dropped

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    # ------------------------------------------------------------------

    def _read_meta(self, key: str) -> int:
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def _bump_meta_locked(self, key: str, amount: int) -> int:
        """Add ``amount`` to a meta counter inside the open transaction."""
        self._connection.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = value + excluded.value",
            (key, amount),
        )
        return self._read_meta(key)

    def _enforce_capacity_locked(self) -> int:
        count = int(self._connection.execute("SELECT COUNT(*) FROM entries").fetchone()[0])
        excess = count - self.capacity
        if excess <= 0:
            return 0
        order = _EVICTION_ORDER[self.policy]
        self._connection.execute(
            f"DELETE FROM entries WHERE key IN "
            f"(SELECT key FROM entries ORDER BY {order} LIMIT ?)",
            (excess,),
        )
        return excess
