"""Eviction policies for bounded cache layers.

One small mapping type, :class:`PolicyCache`, backs both the in-memory
transfer-cache layer (:class:`repro.analysis.transfer.TransferCache`) and
the in-process :class:`~repro.cache.memory.MemoryBackend`; the disk store
re-implements the same orderings in SQL (see :mod:`repro.cache.disk`).
Three policies are available:

``lru``
    Least-recently-used: a hit refreshes the entry; the victim is the entry
    untouched for longest.  The default — transfer lookups cluster heavily
    around the current fixed-point region.
``lfu``
    Least-frequently-used: the victim is the entry with the fewest hits
    (ties broken towards the least recently used).  Keeps long-lived
    shared transfers alive across workloads even when a large scan of
    one-off matrices passes through.
``fifo``
    A plain size cap in insertion order: hits do not refresh anything.
    The cheapest policy, and the baseline the others are measured against.

Evictions are counted on the cache (``evictions``) and surfaced by the
callers into :class:`~repro.analysis.context.AnalysisStats`, whose counters
merge exactly across shard processes — the same discipline as the widening
telemetry.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

#: The selectable eviction policies, in documentation order.
POLICIES = ("lru", "lfu", "fifo")


class PolicyCache:
    """A size-bounded mapping with a selectable eviction policy.

    Semantics shared by all policies: ``put`` of an existing key is a no-op
    beyond a policy touch (entries are immutable once admitted — the caches
    built on this are content-addressed), and capacity is enforced on
    admission, never below one entry.
    """

    __slots__ = (
        "capacity",
        "policy",
        "evictions",
        "_entries",
        "_hits",
        "_tick",
        "_clock",
        "_lfu_heap",
    )

    def __init__(self, capacity: int, policy: str = "lru"):
        if policy not in POLICIES:
            raise ValueError(f"unknown cache policy {policy!r}; known: {POLICIES}")
        self.capacity = max(1, int(capacity))
        self.policy = policy
        self.evictions = 0
        self._entries: "OrderedDict[object, object]" = OrderedDict()
        self._hits: Dict[object, int] = {}
        self._tick: Dict[object, int] = {}
        self._clock = 0
        # lfu victim selection: a lazy-deletion min-heap of
        # (hits, tick, key) snapshots.  Stale snapshots (the key was since
        # touched, removed, or re-admitted) are skipped on pop, giving
        # amortized O(log n) eviction instead of an O(n) scan per victim.
        self._lfu_heap: List[Tuple[int, int, object]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[object]:
        return iter(self._entries)

    def get(self, key: object) -> Optional[object]:
        """The stored value, recording a policy touch; ``None`` on a miss."""
        if key not in self._entries:
            return None
        self._touch(key)
        return self._entries[key]

    def put(self, key: object, value: object) -> int:
        """Admit ``key`` (touch-only if present); returns evictions performed."""
        if key in self._entries:
            self._touch(key)
            return 0
        evicted = 0
        while len(self._entries) >= self.capacity:
            self._evict_one()
            evicted += 1
        self._entries[key] = value
        if self.policy == "lfu":
            self._hits[key] = 0
            self._clock += 1
            self._tick[key] = self._clock
            self._lfu_push(key)
        return evicted

    def remove(self, key: object) -> bool:
        """Drop an entry without counting an eviction (e.g. it proved unusable)."""
        if key not in self._entries:
            return False
        del self._entries[key]
        self._hits.pop(key, None)
        self._tick.pop(key, None)
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._hits.clear()
        self._tick.clear()
        self._lfu_heap.clear()

    # ------------------------------------------------------------------

    def _touch(self, key: object) -> None:
        # The per-key frequency/recency bookkeeping feeds lfu victim
        # selection only; lru orders via the OrderedDict and fifo never
        # reorders, so neither pays for it on the hot lookup path.
        if self.policy == "lru":
            self._entries.move_to_end(key)
        elif self.policy == "lfu":
            self._hits[key] += 1
            self._clock += 1
            self._tick[key] = self._clock
            self._lfu_push(key)

    def _lfu_push(self, key: object) -> None:
        heapq.heappush(self._lfu_heap, (self._hits[key], self._tick[key], key))
        # The heap accumulates one stale snapshot per touch; rebuild when it
        # dwarfs the live entry set so memory stays bounded by the capacity.
        if len(self._lfu_heap) > 8 * max(self.capacity, len(self._entries)):
            self._lfu_heap = [
                (self._hits[entry_key], self._tick[entry_key], entry_key)
                for entry_key in self._entries
            ]
            heapq.heapify(self._lfu_heap)

    def _evict_one(self) -> None:
        if self.policy == "lfu":
            # Fewest hits, ties towards the least recently used: pop until a
            # snapshot matches the key's current state (lazy deletion).
            while True:
                hits, tick, victim = heapq.heappop(self._lfu_heap)
                if self._hits.get(victim) == hits and self._tick.get(victim) == tick:
                    break
        else:
            # lru: least recently used is first (hits move_to_end);
            # fifo: oldest insertion is first (hits never reorder).
            victim = next(iter(self._entries))
        del self._entries[victim]
        self._hits.pop(victim, None)
        self._tick.pop(victim, None)
        self.evictions += 1

    def items(self) -> List[Tuple[object, object]]:
        return list(self._entries.items())
