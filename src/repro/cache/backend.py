"""The persistent cache-backend protocol and its configuration.

A :class:`CacheBackend` is the second tier behind the in-process memoized
transfer cache: a content-addressed store of canonical transfer payloads
(see :mod:`repro.cache.codec`) keyed by SHA-256 hex digests.  The analysis
layer talks to it through exactly two hot calls —

* :meth:`CacheBackend.get` — read-through on an in-memory miss;
* :meth:`CacheBackend.write` — one batched flush of this run's computed
  deltas (plus read-touch metadata), performed when a run or shard
  completes, never per transfer;

plus a cold management surface (``stats`` / ``clear`` / ``close``) used by
the ``repro cache`` CLI subcommand.

Backends are **not** shipped across process boundaries.  A
:class:`CacheConfig` — a small frozen dataclass — travels in the shard
payload instead, and each worker opens its own backend from it
(:func:`open_backend`); SQLite connections and fork do not mix.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Tuple

try:  # Protocol is 3.8+; keep a graceful fallback for exotic interpreters.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py<3.8 only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from .policy import POLICIES

#: Backend kinds :func:`open_backend` understands.
BACKENDS = ("memory", "disk")

#: The exception surface a persistent backend is allowed to fail with.
#: The transfer layer catches exactly these around every backend call —
#: counting them toward its circuit breaker instead of raising into the
#: analysis hot path — so a backend that fails with anything else is a
#: bug, not an operational fault.
BACKEND_ERRORS: Tuple[type, ...] = (sqlite3.Error, OSError)

#: Default cap on persistent-store *entries* (not bytes).  Transfer payloads
#: are small (a few hundred bytes), so the default bounds the store around
#: tens of MB while staying far above any tier-1 workload's unique-key count.
DEFAULT_STORE_CAPACITY = 1 << 17


@runtime_checkable
class CacheBackend(Protocol):
    """What the transfer layer and the CLI need from a persistent store."""

    #: ``"memory"`` or ``"disk"`` — mirrored from the opening config.
    kind: str

    def get(self, key: str) -> Optional[str]:
        """The payload stored under ``key``, or ``None``; records a touch."""

    def write(
        self, pending: Mapping[str, str], labels: Optional[Mapping[str, str]] = None
    ) -> Tuple[int, int]:
        """Flush computed deltas and touch metadata; enforce capacity.

        Returns ``(written, evicted)`` — entries newly admitted (a key
        already present counts zero: the store is content-addressed, equal
        keys hold equal payloads) and entries evicted by the policy.
        ``labels`` optionally maps pending keys to their statement labels
        (:func:`repro.sil.delta.statement_label`), stored alongside each
        row so :meth:`invalidate` can sweep by edited statement.
        """

    def invalidate(self, labels) -> int:
        """Drop every entry recorded under the given statement labels.

        The targeted counterpart of :meth:`clear`: rows whose statement was
        removed or rewritten by an edit are deleted, everything else stays
        warm.  Rows written before label tracking (or via a labels-less
        :meth:`write`) have no label and are never matched — which is safe:
        the store is content-addressed, so a stale row can never be looked
        up by the edited program; invalidation reclaims space, it does not
        guard correctness.  Returns the number of entries dropped.
        """

    def discard(self, key: str) -> None:
        """Drop one entry whose payload proved unusable (corrupt/foreign).

        Reclassifies the lookup that surfaced it as a miss — the caller
        will recompute, and the recomputed delta re-admits the key at the
        next :meth:`write` (which skips keys *present* in the store, so the
        bad row must actually be gone).
        """

    def stats(self) -> Dict[str, object]:
        """Cumulative store statistics (entry count, hits/misses/... )."""

    def clear(self) -> int:
        """Drop every entry (and reset cumulative counters); returns count."""

    def close(self) -> None:
        """Release any underlying resources; further calls are undefined."""

    def __len__(self) -> int:
        """Current number of stored entries."""


@dataclass(frozen=True)
class CacheConfig:
    """Everything needed to open the same persistent store anywhere.

    Frozen and made of primitives, so it pickles into shard payloads the
    same way :class:`~repro.analysis.limits.AnalysisLimits` does.  The
    ``policy`` governs both the in-memory transfer-cache layer and the
    store's own capacity enforcement.
    """

    backend: str = "disk"
    #: Store directory (``disk``) or a shared-store namespace (``memory``).
    directory: Optional[str] = None
    policy: str = "lru"
    #: Entry cap of the *persistent* store (the in-memory layer is bounded
    #: separately by ``AnalysisLimits.transfer_cache_size``).
    capacity: int = DEFAULT_STORE_CAPACITY

    def validated(self) -> "CacheConfig":
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown cache backend {self.backend!r}; known: {BACKENDS}")
        if self.policy not in POLICIES:
            raise ValueError(f"unknown cache policy {self.policy!r}; known: {POLICIES}")
        if self.backend == "disk" and not self.directory:
            raise ValueError("the disk cache backend requires a directory (--cache-dir)")
        return replace(self, capacity=max(1, int(self.capacity)))


def open_backend(config: CacheConfig) -> CacheBackend:
    """Open (creating if needed) the store a config describes."""
    config = config.validated()
    if config.backend == "memory":
        from .memory import shared_memory_backend

        return shared_memory_backend(
            namespace=config.directory or "default",
            policy=config.policy,
            capacity=config.capacity,
        )
    from .disk import DiskBackend

    return DiskBackend(config.directory, policy=config.policy, capacity=config.capacity)
