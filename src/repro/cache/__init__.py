"""Persistent cross-run transfer-cache subsystem.

The memoized transfer application of :mod:`repro.analysis.transfer` is the
hot path of the whole analysis; this package makes its results outlive a
process.  Layers, bottom to top:

* :mod:`~repro.cache.codec` — canonical (process- and hash-seed-
  independent) keys and payloads for transfer results, including the
  captured widening tally so replayed hits keep the telemetry exact;
* :mod:`~repro.cache.policy` — the bounded :class:`PolicyCache` with
  selectable eviction (``lru`` / ``lfu`` / ``fifo``) and eviction counters;
* :mod:`~repro.cache.backend` — the :class:`CacheBackend` protocol, the
  picklable :class:`CacheConfig` that travels into shard workers, and the
  :func:`open_backend` factory;
* :mod:`~repro.cache.memory` / :mod:`~repro.cache.disk` — the in-process
  shared store and the SQLite content-addressed store shards and runs
  share on disk.

Wiring: :class:`repro.analysis.transfer.TransferCache` takes an optional
backend and reads through to it on in-memory misses, buffering computed
deltas until ``flush()``;  :class:`repro.analysis.engine.BatchAnalyzer`
and the sharded suite runner (:mod:`repro.workloads.suite`) accept a
:class:`CacheConfig`; the CLI exposes ``--cache-dir`` / ``--cache-backend``
/ ``--cache-policy`` plus the ``repro cache stats|clear`` subcommand.
"""

from .backend import (
    BACKENDS,
    DEFAULT_STORE_CAPACITY,
    CacheBackend,
    CacheConfig,
    open_backend,
)
from .codec import (
    CODEC_VERSION,
    CacheDecodeError,
    canonical_matrix,
    canonical_statement,
    decode_entry,
    encode_entry,
    transfer_key,
)
from .disk import STORE_FILENAME, DiskBackend
from .memory import MemoryBackend, reset_memory_backends, shared_memory_backend
from .policy import POLICIES, PolicyCache

__all__ = [
    "BACKENDS",
    "CODEC_VERSION",
    "DEFAULT_STORE_CAPACITY",
    "POLICIES",
    "STORE_FILENAME",
    "CacheBackend",
    "CacheConfig",
    "CacheDecodeError",
    "DiskBackend",
    "MemoryBackend",
    "PolicyCache",
    "canonical_matrix",
    "canonical_statement",
    "decode_entry",
    "encode_entry",
    "open_backend",
    "reset_memory_backends",
    "shared_memory_backend",
    "transfer_key",
]
