"""The in-memory persistent-cache backend.

Wraps the same bounded :class:`~repro.cache.policy.PolicyCache` the
per-run transfer LRU uses, but stores *canonical payload strings* (see
:mod:`repro.cache.codec`) instead of live objects — so every lookup served
from it exercises the exact encode/decode path the disk store uses.  That
makes it two things at once:

* a **process-wide warm-start tier**: successive
  :class:`~repro.analysis.engine.BatchAnalyzer` runs in one process (bench
  reruns, notebook sessions) share transfers even though each run builds a
  private in-memory ``TransferCache``;
* the **reference implementation** of the backend protocol — cheap enough
  for tests to hammer, byte-compatible with :class:`~repro.cache.disk.
  DiskBackend`.

Stores live in a module-level registry keyed by namespace, so two configs
naming the same namespace share one store.  The registry is per process:
under the sharded runner each worker gets its own copy (a fork inherits a
snapshot; a spawn starts empty) and flushed deltas die with the worker —
cross-process and cross-run persistence is what the disk backend is for.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..faults import fault_fire
from .backend import DEFAULT_STORE_CAPACITY
from .policy import PolicyCache


class MemoryBackend:
    """A process-local, policy-bounded store of canonical payloads."""

    kind = "memory"

    def __init__(self, policy: str = "lru", capacity: int = DEFAULT_STORE_CAPACITY):
        self._store = PolicyCache(capacity, policy)
        self.policy = policy
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalidations = 0
        #: key -> statement label, for :meth:`invalidate` (keys evicted from
        #: the store keep a dangling label here; the sweep drops both).
        self._labels: Dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: str) -> Optional[str]:
        # The same fault-injection sites the disk backend compiles in, so
        # the transfer layer's error tolerance is testable backend-agnostic
        # (MemoryBackend has no retry tier — nothing here is transient).
        rule = fault_fire("cache.get", key)
        if rule is not None and rule.kind == "io_error":
            raise OSError(f"injected cache I/O error (cache.get, key={key!r})")
        payload = self._store.get(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload  # type: ignore[return-value]

    def write(
        self, pending: Mapping[str, str], labels: Optional[Mapping[str, str]] = None
    ) -> Tuple[int, int]:
        rule = fault_fire("cache.write", "flush")
        if rule is not None and rule.kind == "io_error":
            raise OSError("injected cache I/O error (cache.write)")
        written = 0
        evictions_before = self._store.evictions
        for key, payload in pending.items():
            if key not in self._store:
                written += 1
            self._store.put(key, payload)
            if labels is not None:
                label = labels.get(key)
                if label is not None:
                    self._labels[key] = label
        self.writes += written
        return written, self._store.evictions - evictions_before

    def invalidate(self, labels) -> int:
        doomed = set(labels)
        if not doomed:
            return 0
        stale = [key for key, label in self._labels.items() if label in doomed]
        dropped = 0
        for key in stale:
            del self._labels[key]
            if self._store.remove(key):
                dropped += 1
        self.invalidations += dropped
        return dropped

    def discard(self, key: str) -> None:
        if self._store.remove(key):
            # The lookup that surfaced the bad payload counted as a hit
            # and refreshed the entry; reclassify it as a miss.
            self.hits -= 1
            self.misses += 1

    def stats(self) -> Dict[str, object]:
        return {
            "backend": self.kind,
            "policy": self.policy,
            "entries": len(self._store),
            "capacity": self._store.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self._store.evictions,
            "invalidations": self.invalidations,
        }

    def clear(self) -> int:
        dropped = len(self._store)
        self._store.clear()
        self._labels.clear()
        self.hits = self.misses = self.writes = self.invalidations = 0
        self._store.evictions = 0
        return dropped

    def close(self) -> None:
        """Nothing to release; the store stays registered for later opens."""


#: Namespace -> shared store (process-wide).
_STORES: Dict[str, MemoryBackend] = {}


def shared_memory_backend(
    namespace: str = "default",
    policy: str = "lru",
    capacity: int = DEFAULT_STORE_CAPACITY,
) -> MemoryBackend:
    """The process-wide store for ``namespace``, created on first open.

    The first open fixes the policy and capacity; later opens with a
    different policy raise rather than silently re-ranking the store.
    """
    store = _STORES.get(namespace)
    if store is None:
        store = MemoryBackend(policy=policy, capacity=capacity)
        _STORES[namespace] = store
    elif store.policy != policy:
        raise ValueError(
            f"memory cache namespace {namespace!r} is already open with policy "
            f"{store.policy!r} (requested {policy!r})"
        )
    elif store._store.capacity != capacity:
        raise ValueError(
            f"memory cache namespace {namespace!r} is already open with capacity "
            f"{store._store.capacity} (requested {capacity}); a later open cannot "
            f"re-bound the shared store"
        )
    return store


def reset_memory_backends() -> None:
    """Drop every registered store (test isolation)."""
    _STORES.clear()
