"""Canonical, process-independent encoding of transfer-cache entries.

The in-process memoized transfer cache (:class:`repro.analysis.transfer.
TransferCache`) keys on ``(id(stmt), limits, matrix.fingerprint())`` —
object identities and interned domain values that mean nothing outside the
process that built them.  A *persistent* cache entry must instead be keyed
and stored in a form that is byte-identical across processes (and across
``PYTHONHASHSEED`` values):

* the **key** (:func:`transfer_key`) is the SHA-256 of a canonical JSON
  document combining the statement's kind + exact source rendering, the
  :class:`~repro.analysis.limits.AnalysisLimits` the transfer runs under,
  and the input matrix's canonical encoding (handles in insertion order,
  entries sorted, the matrix's own limits).  Two lookups collide exactly
  when the in-memory fingerprints would — same statement content, same
  bounds, same matrix — so a persistent hit returns precisely what
  recomputation would produce.  The statement *kind* is part of the key
  because two different statement kinds can render identically (a scalar
  copy ``x := y`` prints like a handle copy) while having different
  transfer semantics.
* the **payload** (:func:`encode_entry` / :func:`decode_entry`) carries the
  result matrix (handles + entries rendered through the same canonical
  textual form the sharded suite runner ships across processes), the
  structure diagnostics, and the :class:`~repro.analysis.telemetry.
  WideningTally` captured while the transfer was computed — so a hit in a
  fresh process can *replay* the widening counters exactly, keeping the
  telemetry additive across shards and across runs.

Decoding reconstructs paths **without re-normalizing** them: the stored
paths were already canonical under the limits they were computed with, and
re-running :func:`~repro.analysis.paths.make_path` (as the test-oriented
:func:`~repro.analysis.paths.parse_path` does) could re-clamp them under
different default limits — and would fire widening telemetry from inside a
decode, corrupting the replayed counts.  Raw segment construction is exact
and silent.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Dict, List, Tuple

from typing import TYPE_CHECKING

from ..analysis.limits import AnalysisLimits
from ..analysis.matrix import PathMatrix, canonical_document
from ..analysis.paths import Direction, Path, PathSegment
from ..analysis.pathset import PathSet
from ..analysis.structure import Certainty, DiagnosticKind, StructureDiagnostic
from ..analysis.telemetry import WideningTally
from ..obs.trace import span
from ..sil import ast
from ..sil.delta import statement_identity

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at runtime: repro.analysis.transfer imports the policy
    # layer of this package, so a module-level import here would be circular.
    from ..analysis.transfer import TransferResult

#: Bump when the key or payload layout changes; old entries simply miss.
CODEC_VERSION = 1


class CacheDecodeError(ValueError):
    """A persistent payload could not be decoded (corrupt or foreign data)."""


def _canonical_json(document: object) -> str:
    """Minified, key-sorted JSON — the only serialization used for hashing."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# Canonical key
# ---------------------------------------------------------------------------


def canonical_statement(stmt: ast.BasicStmt) -> List[str]:
    """``[kind, rendering]`` — the content identity of a basic statement.

    Delegates to :func:`repro.sil.delta.statement_identity` so the differ's
    change spans and the persistent keys can never disagree about what "the
    same statement" means.
    """
    return list(statement_identity(stmt))


def canonical_limits(limits: AnalysisLimits) -> Dict[str, int]:
    """The analysis bounds only — ``transfer_cache_size`` is a memory knob
    that never changes a transfer result, so runs with different cache
    sizes share persistent entries."""
    return limits.as_dict()


def canonical_matrix(matrix: PathMatrix) -> Dict[str, object]:
    """Handles in insertion order, entries sorted, plus the matrix limits.

    Captures exactly what :meth:`PathMatrix.fingerprint` distinguishes:
    equal fingerprints give equal canonical encodings and vice versa
    (modulo ``transfer_cache_size``, which cannot affect a transfer).
    The ``{handles, entries}`` core comes from the one shared layout
    definition (:func:`repro.analysis.matrix.canonical_document`, cached
    per sealed matrix), so the persistent-key bytes can never drift from
    the sharded bit-identity encodings.
    """
    document = canonical_document(matrix)
    document["limits"] = canonical_limits(matrix.limits)
    return document


def transfer_key(stmt: ast.BasicStmt, limits: AnalysisLimits, matrix: PathMatrix) -> str:
    """The content-addressed persistent key of one transfer application."""
    document = {
        "v": CODEC_VERSION,
        "stmt": canonical_statement(stmt),
        "limits": canonical_limits(limits),
        "matrix": canonical_matrix(matrix),
    }
    return hashlib.sha256(_canonical_json(document).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Payload encode
# ---------------------------------------------------------------------------


def encode_entry(result: "TransferResult", widening: WideningTally) -> str:
    """Serialize a transfer result + its captured widening tally to JSON."""
    with span("codec.encode"):
        return _canonical_json(
            {
                "v": CODEC_VERSION,
                "matrix": canonical_document(result.matrix),
                "diagnostics": [
                    [diag.kind.name, diag.certainty.name, diag.statement, diag.detail]
                    for diag in result.diagnostics
                ],
                "widening": {name: getattr(widening, name) for name in WideningTally.FIELDS},
            }
        )


# ---------------------------------------------------------------------------
# Payload decode (raw — no normalization, no telemetry)
# ---------------------------------------------------------------------------

_SEGMENT_RE = re.compile(r"([LRD])(\d*)(\+?)")


def _decode_path(text: str) -> Path:
    """Rebuild a path from :func:`~repro.analysis.paths.format_path` output.

    Unlike :func:`~repro.analysis.paths.parse_path` this does **not** pass
    through ``make_path`` — the stored segments are reconstructed verbatim,
    so decode is exact under any limits and fires no widening telemetry.
    """
    cleaned = text.strip()
    definite = True
    if cleaned.endswith("?"):
        definite = False
        cleaned = cleaned[:-1]
    if cleaned == "S":
        return Path((), definite)
    segments = []
    position = 0
    while position < len(cleaned):
        match = _SEGMENT_RE.match(cleaned, position)
        if not match:
            raise CacheDecodeError(f"unparseable path expression {text!r}")
        letter, digits, plus = match.groups()
        count = int(digits) if digits else 1
        segments.append(PathSegment(Direction(letter), count, plus == ""))
        position = match.end()
    if not segments:
        raise CacheDecodeError(f"unparseable path expression {text!r}")
    return Path(tuple(segments), definite)


def _decode_path_set(text: str) -> PathSet:
    return PathSet(_decode_path(part) for part in text.split(",") if part.strip())


def decode_entry(
    payload: str, matrix_limits: AnalysisLimits
) -> Tuple["TransferResult", WideningTally]:
    """Rebuild the (sealed) transfer result and widening tally of a payload.

    ``matrix_limits`` must be the limits of the *input* matrix the key was
    derived from: every transfer function builds its result by copying the
    input matrix, so the result matrix always carries the input's limits.
    Raises :class:`CacheDecodeError` on malformed data (callers treat that
    as a miss rather than poisoning the analysis).
    """
    from ..analysis.transfer import TransferResult

    with span("codec.decode"):
        try:
            document = json.loads(payload)
            if document.get("v") != CODEC_VERSION:
                raise CacheDecodeError(f"unknown codec version {document.get('v')!r}")
            encoded = document["matrix"]
            matrix = PathMatrix.from_entries(
                encoded["handles"],
                [
                    (source, target, _decode_path_set(paths))
                    for source, target, paths in encoded["entries"]
                ],
                matrix_limits,
            )
            diagnostics = [
                StructureDiagnostic(
                    kind=DiagnosticKind[kind],
                    certainty=Certainty[certainty],
                    statement=statement,
                    detail=detail,
                )
                for kind, certainty, statement, detail in document["diagnostics"]
            ]
            widening = WideningTally(**{
                name: int(document["widening"].get(name, 0)) for name in WideningTally.FIELDS
            })
        except CacheDecodeError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise CacheDecodeError(f"malformed cache payload: {error}") from error
        # Entries served from the persistent store are shared exactly like
        # freshly-computed cached entries; seal against caller mutation.
        matrix.seal()
        return TransferResult(matrix=matrix, diagnostics=diagnostics), widening
