"""Runtime value representation for SIL.

SIL has two types.  At run time:

* an ``int`` is a Python :class:`int`;
* a ``handle`` is either ``None`` (SIL ``nil``) or a :class:`NodeRef`
  naming a node in the :class:`~repro.runtime.heap.Heap`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class NodeRef:
    """A reference to a heap node (a non-nil handle value)."""

    node_id: int

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"node#{self.node_id}"


#: A SIL runtime value: an integer, nil (None) or a node reference.
Value = Union[int, None, NodeRef]

#: A handle value specifically.
HandleValue = Optional[NodeRef]


def is_handle_value(value: Value) -> bool:
    """True if ``value`` is a legal handle value (nil or a node reference)."""
    return value is None or isinstance(value, NodeRef)


def is_int_value(value: Value) -> bool:
    """True if ``value`` is a legal integer value."""
    return isinstance(value, int) and not isinstance(value, bool)


def format_value(value: Value) -> str:
    """Human-readable rendering of a runtime value."""
    if value is None:
        return "nil"
    if isinstance(value, NodeRef):
        return f"node#{value.node_id}"
    return str(value)
