"""Runtime classification of linked structures as TREE / DAG / CYCLIC.

Section 3.1 of the paper defines:

* a **TREE** is a directed graph in which each node has at most one parent;
* a **DAG** is a directed graph in which some node has more than one parent
  and the graph contains no directed cycle;
* anything containing a directed cycle is neither.

This module implements that classification over the concrete heap.  It is
used (a) as the ground-truth oracle that validates the *static* structure
verification of the analysis, and (b) by the structure-debugging example.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .heap import Heap
from .values import HandleValue, NodeRef


class StructureKind(enum.Enum):
    """The shape classification of Section 3.1."""

    TREE = "tree"
    DAG = "dag"
    CYCLIC = "cyclic"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class StructureReport:
    """Result of classifying the sub-heap reachable from a set of roots."""

    kind: StructureKind
    node_count: int
    #: Nodes with more than one parent (what turns a TREE into a DAG).
    shared_nodes: List[int] = field(default_factory=list)
    #: One representative cycle (list of node ids), if any.
    cycle: Optional[List[int]] = None

    @property
    def is_tree(self) -> bool:
        return self.kind is StructureKind.TREE

    @property
    def is_dag(self) -> bool:
        return self.kind is StructureKind.DAG

    @property
    def is_cyclic(self) -> bool:
        return self.kind is StructureKind.CYCLIC


def classify_structure(heap: Heap, roots: Iterable[HandleValue]) -> StructureReport:
    """Classify the structure reachable from ``roots`` in ``heap``."""
    reachable = heap.reachable_from(roots)
    reachable_ids = {ref.node_id for ref in reachable}

    # Count parents *within the reachable sub-heap*.
    parent_count: Dict[int, int] = {node_id: 0 for node_id in reachable_ids}
    for ref in reachable:
        node = heap.node(ref)
        for child in (node.left, node.right):
            if child is not None and child.node_id in parent_count:
                parent_count[child.node_id] += 1

    shared = sorted(node_id for node_id, count in parent_count.items() if count > 1)

    cycle = _find_cycle(heap, reachable_ids)
    if cycle is not None:
        return StructureReport(
            kind=StructureKind.CYCLIC,
            node_count=len(reachable_ids),
            shared_nodes=shared,
            cycle=cycle,
        )
    if shared:
        return StructureReport(
            kind=StructureKind.DAG, node_count=len(reachable_ids), shared_nodes=shared
        )
    return StructureReport(kind=StructureKind.TREE, node_count=len(reachable_ids))


def _find_cycle(heap: Heap, node_ids: Set[int]) -> Optional[List[int]]:
    """Find one directed cycle among ``node_ids``, iteratively (no recursion)."""
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[int, int] = {node_id: WHITE for node_id in node_ids}

    for start in node_ids:
        if color[start] != WHITE:
            continue
        # Iterative DFS with an explicit stack of (node, child-iterator).
        path: List[int] = []
        stack: List[Tuple[int, List[int]]] = [(start, _children(heap, start, node_ids))]
        color[start] = GREY
        path.append(start)
        while stack:
            node_id, children = stack[-1]
            if children:
                child = children.pop()
                if color[child] == GREY:
                    # Found a back edge: extract the cycle from the path.
                    index = path.index(child)
                    return path[index:] + [child]
                if color[child] == WHITE:
                    color[child] = GREY
                    path.append(child)
                    stack.append((child, _children(heap, child, node_ids)))
            else:
                stack.pop()
                path.pop()
                color[node_id] = BLACK
    return None


def _children(heap: Heap, node_id: int, universe: Set[int]) -> List[int]:
    node = heap.node(NodeRef(node_id))
    result = []
    for child in (node.left, node.right):
        if child is not None and child.node_id in universe:
            result.append(child.node_id)
    return result


def is_tree(heap: Heap, *roots: HandleValue) -> bool:
    """Convenience wrapper: is the structure reachable from ``roots`` a TREE?"""
    return classify_structure(heap, roots).is_tree


def is_dag(heap: Heap, *roots: HandleValue) -> bool:
    """Convenience wrapper: is the structure a DAG (shared nodes, no cycle)?"""
    return classify_structure(heap, roots).is_dag


def subtrees_disjoint(heap: Heap, first: HandleValue, second: HandleValue) -> bool:
    """True if the node sets reachable from ``first`` and ``second`` are disjoint.

    This is the key property the paper exploits: for TREEs, the left and
    right sub-trees share no storage, so computations on them cannot
    interfere.
    """
    first_ids = {ref.node_id for ref in heap.reachable_from([first])}
    second_ids = {ref.node_id for ref in heap.reachable_from([second])}
    return not (first_ids & second_ids)
