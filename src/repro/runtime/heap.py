"""The SIL heap: a store of binary-tree nodes.

Each node has an integer ``value`` field and two link fields ``left`` and
``right`` (Section 3.1 of the paper).  The heap records access statistics
(allocations, field reads, field writes) which feed the execution trace and
the cost model, and provides helpers for building and inspecting linked
structures from Python (used heavily by tests, examples and benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..sil.ast import Field
from ..sil.errors import SilRuntimeError
from .values import HandleValue, NodeRef


@dataclass
class Node:
    """One heap node."""

    node_id: int
    value: int = 0
    left: HandleValue = None
    right: HandleValue = None

    def get_link(self, field_name: Field) -> HandleValue:
        if field_name is Field.LEFT:
            return self.left
        if field_name is Field.RIGHT:
            return self.right
        raise ValueError(f"{field_name} is not a link field")

    def set_link(self, field_name: Field, value: HandleValue) -> None:
        if field_name is Field.LEFT:
            self.left = value
        elif field_name is Field.RIGHT:
            self.right = value
        else:
            raise ValueError(f"{field_name} is not a link field")


#: Nested-tuple description of a tree: ``None`` for nil, an int for a leaf
#: node ``(value, nil, nil)``, or ``(value, left, right)``.
TreeSpec = Union[None, int, Tuple[int, "TreeSpec", "TreeSpec"]]


class Heap:
    """A growable store of :class:`Node` objects."""

    def __init__(self) -> None:
        self._nodes: Dict[int, Node] = {}
        self._next_id = 1
        self.alloc_count = 0
        self.read_count = 0
        self.write_count = 0

    # ------------------------------------------------------------------
    # Allocation and access
    # ------------------------------------------------------------------

    def allocate(self, value: int = 0) -> NodeRef:
        """Allocate a fresh node (SIL ``new()``); fields start as 0/nil."""
        ref = NodeRef(self._next_id)
        self._nodes[self._next_id] = Node(node_id=self._next_id, value=value)
        self._next_id += 1
        self.alloc_count += 1
        return ref

    def node(self, ref: HandleValue) -> Node:
        """The node named by ``ref``; raises on nil or dangling references."""
        if ref is None:
            raise SilRuntimeError("nil handle dereferenced")
        try:
            return self._nodes[ref.node_id]
        except KeyError:
            raise SilRuntimeError(f"dangling handle {ref!r}") from None

    def contains(self, ref: HandleValue) -> bool:
        return ref is not None and ref.node_id in self._nodes

    def read_link(self, ref: HandleValue, field_name: Field) -> HandleValue:
        self.read_count += 1
        return self.node(ref).get_link(field_name)

    def write_link(self, ref: HandleValue, field_name: Field, value: HandleValue) -> None:
        self.write_count += 1
        self.node(ref).set_link(field_name, value)

    def read_value(self, ref: HandleValue) -> int:
        self.read_count += 1
        return self.node(ref).value

    def write_value(self, ref: HandleValue, value: int) -> None:
        self.write_count += 1
        self.node(ref).value = value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def refs(self) -> List[NodeRef]:
        """References to every live node."""
        return [NodeRef(node_id) for node_id in self._nodes]

    def reachable_from(self, roots: Iterable[HandleValue]) -> List[NodeRef]:
        """Every node reachable from ``roots`` following left/right links."""
        seen: Dict[int, NodeRef] = {}
        stack: List[NodeRef] = [r for r in roots if r is not None]
        while stack:
            ref = stack.pop()
            if ref.node_id in seen or ref.node_id not in self._nodes:
                continue
            seen[ref.node_id] = ref
            node = self._nodes[ref.node_id]
            for child in (node.left, node.right):
                if child is not None and child.node_id not in seen:
                    stack.append(child)
        return list(seen.values())

    def parents(self) -> Dict[int, List[int]]:
        """Map from node id to the ids of its parents (nodes linking to it)."""
        result: Dict[int, List[int]] = {node_id: [] for node_id in self._nodes}
        for node in self._nodes.values():
            for child in (node.left, node.right):
                if child is not None and child.node_id in result:
                    result[child.node_id].append(node.node_id)
        return result

    # ------------------------------------------------------------------
    # Construction / extraction helpers
    # ------------------------------------------------------------------

    def build(self, spec: TreeSpec) -> HandleValue:
        """Build a tree from a nested-tuple :data:`TreeSpec` and return its root."""
        if spec is None:
            return None
        if isinstance(spec, int):
            return self.allocate(spec)
        value, left_spec, right_spec = spec
        ref = self.allocate(value)
        node = self.node(ref)
        node.left = self.build(left_spec)
        node.right = self.build(right_spec)
        return ref

    def extract(self, ref: HandleValue, max_nodes: int = 100_000) -> TreeSpec:
        """Extract the tree rooted at ``ref`` back into a nested-tuple spec.

        Raises :class:`SilRuntimeError` if the structure is cyclic (cycle
        detection via the visiting stack) or larger than ``max_nodes``.
        """
        count = 0

        def go(current: HandleValue, on_stack: frozenset) -> TreeSpec:
            nonlocal count
            if current is None:
                return None
            if current.node_id in on_stack:
                raise SilRuntimeError("cannot extract a cyclic structure")
            count += 1
            if count > max_nodes:
                raise SilRuntimeError(f"structure larger than {max_nodes} nodes")
            node = self.node(current)
            new_stack = on_stack | {current.node_id}
            left = go(node.left, new_stack)
            right = go(node.right, new_stack)
            if left is None and right is None:
                return node.value
            return (node.value, left, right)

        return go(ref, frozenset())

    def build_full_tree(
        self, depth: int, value_fn: Optional[Callable[[int], int]] = None
    ) -> HandleValue:
        """Build a complete binary tree of the given depth.

        ``depth=0`` gives ``nil``; ``depth=1`` a single node.  ``value_fn``
        maps a pre-order index to the node's value (default: the index).
        """
        counter = [0]

        def go(d: int) -> HandleValue:
            if d <= 0:
                return None
            index = counter[0]
            counter[0] += 1
            ref = self.allocate(value_fn(index) if value_fn is not None else index)
            node = self.node(ref)
            node.left = go(d - 1)
            node.right = go(d - 1)
            return ref

        return go(depth)

    def build_list(self, values: Sequence[int]) -> HandleValue:
        """Build a right-skewed 'linked list' (left children all nil)."""
        root: HandleValue = None
        for value in reversed(values):
            ref = self.allocate(value)
            self.node(ref).right = root
            root = ref
        return root

    def values_inorder(self, ref: HandleValue) -> List[int]:
        """In-order traversal of the values of the tree rooted at ``ref``."""
        result: List[int] = []

        def go(current: HandleValue, on_stack: frozenset) -> None:
            if current is None:
                return
            if current.node_id in on_stack:
                raise SilRuntimeError("cannot traverse a cyclic structure")
            node = self.node(current)
            new_stack = on_stack | {current.node_id}
            go(node.left, new_stack)
            result.append(node.value)
            go(node.right, new_stack)

        go(ref, frozenset())
        return result

    def values_preorder(self, ref: HandleValue) -> List[int]:
        """Pre-order traversal of the values of the tree rooted at ``ref``."""
        result: List[int] = []

        def go(current: HandleValue, on_stack: frozenset) -> None:
            if current is None:
                return
            if current.node_id in on_stack:
                raise SilRuntimeError("cannot traverse a cyclic structure")
            node = self.node(current)
            result.append(node.value)
            new_stack = on_stack | {current.node_id}
            go(node.left, new_stack)
            go(node.right, new_stack)

        go(ref, frozenset())
        return result

    def height(self, ref: HandleValue) -> int:
        """Height of the tree rooted at ``ref`` (nil has height 0)."""

        def go(current: HandleValue, on_stack: frozenset) -> int:
            if current is None:
                return 0
            if current.node_id in on_stack:
                raise SilRuntimeError("cannot measure a cyclic structure")
            node = self.node(current)
            new_stack = on_stack | {current.node_id}
            return 1 + max(go(node.left, new_stack), go(node.right, new_stack))

        return go(ref, frozenset())
